"""Contraction hierarchies: preprocessing and the upward query search.

Preprocessing contracts nodes one at a time in *importance* order.
Removing a node must not change any remaining shortest distance, so for
every pair of live neighbors ``(u, w)`` whose best path runs through
the contracted node ``v`` a **shortcut** edge ``u—w`` of weight
``d(u,v) + d(v,w)`` is inserted — unless a bounded *witness search*
finds an equally short path avoiding ``v``, in which case the shortcut
is redundant.  (The witness search is capped; a missed witness only
inserts a redundant shortcut, never a wrong distance.)

Importance is the classic lazy **edge difference + deleted neighbors**
heuristic: nodes whose contraction adds few shortcuts relative to the
edges it removes go first, and nodes whose neighborhoods were already
thinned are deferred — this keeps the hierarchy shallow and the upward
degrees small.  Priorities go stale as the graph shrinks, so the queue
is lazy: a popped node is re-evaluated and re-queued unless it is still
minimal.  All ties break on node id, making the order (and therefore
every downstream counter) deterministic.

A query then runs **bidirectional upward Dijkstra**: both endpoints
relax only edges leading to higher-ranked nodes.  Every shortest path
has a "peak" decomposition into an upward and a downward segment, so
the two cones meet at the peak and the minimum meeting sum is the exact
distance (``inf`` when the cones never meet — disconnected pair).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Callable

from repro.network.graph import RoadNetwork

INFINITY = math.inf

DEFAULT_WITNESS_SETTLE_LIMIT = 64
"""Nodes a witness search may settle before giving up (redundant
shortcuts are correct, so the cap trades index size for build time)."""


@dataclass
class ContractionHierarchy:
    """The preprocessed artifact: contraction order plus upward edges."""

    order: list[int] = field(default_factory=list)
    """Node ids in contraction order (``order[0]`` contracted first)."""

    rank: dict[int, int] = field(default_factory=dict)
    """Node id -> position in ``order`` (higher = more important)."""

    upward: dict[int, list[tuple[int, float]]] = field(default_factory=dict)
    """Per node, its ``(neighbor, weight)`` edges toward higher ranks.

    Snapshot of the node's live neighborhood (original edges collapsed
    to minimum weight, plus shortcuts) at the moment it was contracted;
    every remaining neighbor is contracted later, hence ranked higher.
    """

    shortcut_count: int = 0
    """Shortcut edges inserted during construction."""


def _collapsed_adjacency(network: RoadNetwork) -> dict[int, dict[int, float]]:
    """Simple-graph view: parallel edges collapse to their minimum."""
    adjacency: dict[int, dict[int, float]] = {
        node: {} for node in network.node_ids()
    }
    for edge in network.edges():
        best = adjacency[edge.u].get(edge.v)
        if best is None or edge.length < best:
            adjacency[edge.u][edge.v] = edge.length
            adjacency[edge.v][edge.u] = edge.length
    return adjacency


def _witness_distances(
    adjacency: dict[int, dict[int, float]],
    source: int,
    excluded: int,
    limit: float,
    settle_limit: int,
) -> dict[int, float]:
    """Bounded Dijkstra from ``source`` avoiding ``excluded``.

    Returns exact distances for every settled node; stops once the
    frontier passes ``limit`` or ``settle_limit`` nodes are settled.
    """
    settled: dict[int, float] = {}
    best: dict[int, float] = {source: 0.0}
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap and len(settled) < settle_limit:
        dist, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled[node] = dist
        if dist > limit:
            break
        for neighbor, weight in adjacency[node].items():
            if neighbor == excluded or neighbor in settled:
                continue
            candidate = dist + weight
            if candidate <= limit and candidate < best.get(neighbor, INFINITY):
                best[neighbor] = candidate
                heapq.heappush(heap, (candidate, neighbor))
    return settled


def build_contraction_hierarchy(
    network: RoadNetwork,
    witness_settle_limit: int = DEFAULT_WITNESS_SETTLE_LIMIT,
) -> ContractionHierarchy:
    """Contract every node, returning the finished hierarchy."""
    adjacency = _collapsed_adjacency(network)
    deleted_neighbors = {node: 0 for node in adjacency}
    ch = ContractionHierarchy()

    def plan_contraction(node: int) -> list[tuple[int, int, float]]:
        """Shortcuts contracting ``node`` would need right now."""
        neighbors = sorted(adjacency[node].items())
        shortcuts: list[tuple[int, int, float]] = []
        for position, (u, to_node) in enumerate(neighbors):
            targets = neighbors[position + 1 :]
            if not targets:
                continue
            limit = max(to_node + onward for _, onward in targets)
            witnesses = _witness_distances(
                adjacency, u, node, limit, witness_settle_limit
            )
            for w, onward in targets:
                through = to_node + onward
                if witnesses.get(w, INFINITY) > through:
                    shortcuts.append((u, w, through))
        return shortcuts

    def priority_of(node: int, shortcuts: list) -> float:
        return len(shortcuts) - len(adjacency[node]) + deleted_neighbors[node]

    queue: list[tuple[float, int]] = []
    for node in sorted(adjacency):
        shortcuts = plan_contraction(node)
        heapq.heappush(queue, (priority_of(node, shortcuts), node))

    while queue:
        _, node = heapq.heappop(queue)
        if node in ch.rank:
            continue
        # Lazy re-evaluation: the stored priority may predate neighbor
        # contractions; re-queue unless the node is still minimal.
        shortcuts = plan_contraction(node)
        priority = priority_of(node, shortcuts)
        if queue and priority > queue[0][0]:
            heapq.heappush(queue, (priority, node))
            continue

        ch.rank[node] = len(ch.order)
        ch.order.append(node)
        ch.upward[node] = sorted(adjacency[node].items())
        for u, w, through in shortcuts:
            existing = adjacency[u].get(w)
            if existing is None or through < existing:
                adjacency[u][w] = through
                adjacency[w][u] = through
                if existing is None:
                    ch.shortcut_count += 1
        for neighbor in adjacency[node]:
            del adjacency[neighbor][node]
            deleted_neighbors[neighbor] += 1
        del adjacency[node]

    return ch


def upward_search_space(
    upward: dict[int, list[tuple[int, float]]], source: int
) -> dict[int, float]:
    """Exhaustive upward Dijkstra: node -> distance within the cone.

    The label of ``source`` before pruning (see
    :mod:`repro.oracle.hublabel`); distances are exact *within the
    upward graph* and may exceed the true network distance — the
    bidirectional meeting step is what restores exactness.
    """
    settled: dict[int, float] = {}
    best: dict[int, float] = {source: 0.0}
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        dist, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled[node] = dist
        for neighbor, weight in upward[node]:
            if neighbor in settled:
                continue
            candidate = dist + weight
            if candidate < best.get(neighbor, INFINITY):
                best[neighbor] = candidate
                heapq.heappush(heap, (candidate, neighbor))
    return settled


def ch_node_distance(
    upward: dict[int, list[tuple[int, float]]],
    source: int,
    target: int,
    on_settle: Callable[[int], None] | None = None,
) -> float:
    """Bidirectional upward search: exact d(source, target), inf apart.

    ``on_settle`` fires once per settled node (both directions) so the
    caller can charge page accounting and the ``oracle_nodes_settled``
    counter without this module importing :mod:`repro.obs`.
    """
    if source == target:
        return 0.0
    best = INFINITY
    dist = ({source: 0.0}, {target: 0.0})
    settled: tuple[dict[int, float], dict[int, float]] = ({}, {})
    heaps: list[list[tuple[float, int]]] = [[(0.0, source)], [(0.0, target)]]
    while heaps[0] or heaps[1]:
        # Advance the direction with the nearer frontier; a frontier at
        # or past the best meeting sum can no longer improve it.
        if not heaps[1] or (heaps[0] and heaps[0][0][0] <= heaps[1][0][0]):
            side = 0
        else:
            side = 1
        d, node = heapq.heappop(heaps[side])
        if node in settled[side]:
            continue
        if d >= best:
            heaps[side].clear()
            continue
        settled[side][node] = d
        if on_settle is not None:
            on_settle(node)
        other = dist[1 - side].get(node)
        if other is not None and d + other < best:
            best = d + other
        for neighbor, weight in upward[node]:
            if neighbor in settled[side]:
                continue
            candidate = d + weight
            if candidate < dist[side].get(neighbor, INFINITY):
                dist[side][neighbor] = candidate
                heapq.heappush(heaps[side], (candidate, neighbor))
    return best
