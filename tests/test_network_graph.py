"""Unit tests for the road-network graph model."""


import pytest

from repro.geometry import Point, Polyline
from repro.network import NetworkLocation, RoadNetwork

from conftest import build_random_network


class TestNodesAndEdges:
    def test_add_node_and_lookup(self):
        net = RoadNetwork()
        net.add_node(1, Point(0.5, 0.5))
        assert net.has_node(1)
        assert net.node_point(1) == Point(0.5, 0.5)
        assert net.node_count == 1

    def test_re_adding_same_node_is_noop(self):
        net = RoadNetwork()
        net.add_node(1, Point(0, 0))
        net.add_node(1, Point(0, 0))
        assert net.node_count == 1

    def test_re_adding_node_with_new_point_raises(self):
        net = RoadNetwork()
        net.add_node(1, Point(0, 0))
        with pytest.raises(ValueError):
            net.add_node(1, Point(1, 1))

    def test_add_edge_defaults_to_chord_length(self):
        net = RoadNetwork()
        net.add_node(0, Point(0, 0))
        net.add_node(1, Point(3, 4))
        edge = net.add_edge(0, 1)
        assert edge.length == 5.0

    def test_edge_shorter_than_chord_rejected(self):
        net = RoadNetwork()
        net.add_node(0, Point(0, 0))
        net.add_node(1, Point(3, 4))
        with pytest.raises(ValueError):
            net.add_edge(0, 1, length=4.9)

    def test_edge_longer_than_chord_allowed(self):
        net = RoadNetwork()
        net.add_node(0, Point(0, 0))
        net.add_node(1, Point(1, 0))
        edge = net.add_edge(0, 1, length=2.5)
        assert edge.length == 2.5

    def test_edge_to_missing_node_raises(self):
        net = RoadNetwork()
        net.add_node(0, Point(0, 0))
        with pytest.raises(KeyError):
            net.add_edge(0, 99)

    def test_self_loop_rejected(self):
        net = RoadNetwork()
        net.add_node(0, Point(0, 0))
        with pytest.raises(ValueError):
            net.add_edge(0, 0)

    def test_parallel_edges_allowed(self):
        net = RoadNetwork()
        net.add_node(0, Point(0, 0))
        net.add_node(1, Point(1, 0))
        net.add_edge(0, 1, length=1.0)
        net.add_edge(0, 1, length=1.5)
        assert net.edge_count == 2
        assert len(net.neighbors(0)) == 2

    def test_duplicate_edge_id_rejected(self):
        net = RoadNetwork()
        net.add_node(0, Point(0, 0))
        net.add_node(1, Point(1, 0))
        net.add_edge(0, 1, edge_id=7)
        with pytest.raises(ValueError):
            net.add_edge(0, 1, edge_id=7)

    def test_polyline_geometry_sets_length(self):
        net = RoadNetwork()
        net.add_node(0, Point(0, 0))
        net.add_node(1, Point(3, 4))
        bend = Polyline((Point(0, 0), Point(3, 0), Point(3, 4)))
        edge = net.add_edge(0, 1, geometry=bend)
        assert edge.length == 7.0

    def test_polyline_endpoint_mismatch_rejected(self):
        net = RoadNetwork()
        net.add_node(0, Point(0, 0))
        net.add_node(1, Point(3, 4))
        wrong = Polyline((Point(0, 0), Point(1, 1)))
        with pytest.raises(ValueError):
            net.add_edge(0, 1, geometry=wrong)

    def test_other_end_and_incidence(self, tiny_network):
        edge = next(iter(tiny_network.edges()))
        assert edge.other_end(edge.u) == edge.v
        assert edge.is_incident_to(edge.u)
        with pytest.raises(ValueError):
            edge.other_end(9999)

    def test_degree_and_total_length(self, tiny_network):
        assert tiny_network.degree(1) == 3  # edges to 0, 2, 4
        assert tiny_network.total_length() == pytest.approx(3.5)

    def test_mbr(self, tiny_network):
        box = tiny_network.mbr()
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (0, 0, 1, 0.5)


class TestLocations:
    def test_node_location(self, tiny_network):
        loc = tiny_network.location_at_node(4)
        assert loc.is_node
        assert loc.node_id == 4
        assert loc.point == Point(0.5, 0.5)

    def test_on_edge_location(self, tiny_network):
        edge = next(e for e in tiny_network.edges() if (e.u, e.v) == (0, 1))
        loc = tiny_network.location_on_edge(edge.edge_id, 0.2)
        assert not loc.is_node
        assert loc.offset == pytest.approx(0.2)
        assert loc.point == Point(0.2, 0.0)

    def test_zero_offset_degrades_to_node(self, tiny_network):
        edge = next(iter(tiny_network.edges()))
        loc = tiny_network.location_on_edge(edge.edge_id, 0.0)
        assert loc.node_id == edge.u

    def test_full_offset_degrades_to_node(self, tiny_network):
        edge = next(iter(tiny_network.edges()))
        loc = tiny_network.location_on_edge(edge.edge_id, edge.length)
        assert loc.node_id == edge.v

    def test_offset_out_of_range_raises(self, tiny_network):
        edge = next(iter(tiny_network.edges()))
        with pytest.raises(ValueError):
            tiny_network.location_on_edge(edge.edge_id, edge.length + 0.1)

    def test_location_requires_exactly_one_anchor(self):
        with pytest.raises(ValueError):
            NetworkLocation(point=Point(0, 0))
        with pytest.raises(ValueError):
            NetworkLocation(point=Point(0, 0), node_id=1, edge_id=2)

    def test_point_on_detour_edge_interpolates_by_fraction(self):
        net = RoadNetwork()
        net.add_node(0, Point(0, 0))
        net.add_node(1, Point(1, 0))
        edge = net.add_edge(0, 1, length=2.0)  # detour factor 2
        # Halfway along the 2.0-long road is halfway along the chord.
        assert net.point_on_edge(edge.edge_id, 1.0) == Point(0.5, 0)

    def test_seed_frontier_node(self, tiny_network):
        loc = tiny_network.location_at_node(2)
        assert tiny_network.seed_frontier(loc) == [(2, 0.0)]

    def test_seed_frontier_edge(self, tiny_network):
        edge = next(e for e in tiny_network.edges() if (e.u, e.v) == (0, 1))
        loc = tiny_network.location_on_edge(edge.edge_id, 0.2)
        seeds = dict(tiny_network.seed_frontier(loc))
        assert seeds[0] == pytest.approx(0.2)
        assert seeds[1] == pytest.approx(0.3)

    def test_direct_edge_distance_same_edge(self, tiny_network):
        edge = next(iter(tiny_network.edges()))
        a = tiny_network.location_on_edge(edge.edge_id, 0.1)
        b = tiny_network.location_on_edge(edge.edge_id, 0.4)
        assert tiny_network.direct_edge_distance(a, b) == pytest.approx(0.3)

    def test_direct_edge_distance_different_edges(self, tiny_network):
        edges = list(tiny_network.edges())
        a = tiny_network.location_on_edge(edges[0].edge_id, 0.1)
        b = tiny_network.location_on_edge(edges[1].edge_id, 0.1)
        assert tiny_network.direct_edge_distance(a, b) is None


class TestAnalysis:
    def test_connected_components_single(self, tiny_network):
        assert tiny_network.is_connected()
        assert len(tiny_network.connected_components()) == 1

    def test_connected_components_split(self):
        net = RoadNetwork()
        for i, (x, y) in enumerate([(0, 0), (1, 0), (5, 5), (6, 5)]):
            net.add_node(i, Point(x, y))
        net.add_edge(0, 1)
        net.add_edge(2, 3)
        components = net.connected_components()
        assert sorted(sorted(c) for c in components) == [[0, 1], [2, 3]]
        assert not net.is_connected()

    def test_largest_component_subnetwork(self):
        net = RoadNetwork()
        for i, (x, y) in enumerate([(0, 0), (1, 0), (2, 0), (5, 5), (6, 5)]):
            net.add_node(i, Point(x, y))
        net.add_edge(0, 1)
        net.add_edge(1, 2)
        net.add_edge(3, 4)
        sub = net.largest_component_subnetwork()
        assert sorted(sub.node_ids()) == [0, 1, 2]
        assert sub.edge_count == 2
        sub.validate()

    def test_average_detour_factor(self):
        net = RoadNetwork()
        net.add_node(0, Point(0, 0))
        net.add_node(1, Point(1, 0))
        net.add_edge(0, 1, length=1.5)
        assert net.average_detour_factor() == pytest.approx(1.5)

    def test_validate_passes_on_random_network(self):
        net = build_random_network(50, 30, seed=5, detour_max=0.5)
        net.validate()

    def test_edge_mbr(self, tiny_network):
        edge = next(e for e in tiny_network.edges() if (e.u, e.v) == (2, 5))
        box = tiny_network.edge_mbr(edge.edge_id)
        assert box.min_x == box.max_x == 1.0
        assert (box.min_y, box.max_y) == (0.0, 0.5)
