"""Synthetic road-network generators.

The paper evaluates on three DCW road networks (California, Australia,
North America) that are not redistributable here; these generators
produce networks with the structural properties the experiments
actually exercise:

* everything is unified into a **1 km x 1 km region** (as the paper
  does) so "network density" means edges per fixed area;
* the **edge/node ratio** matches the real datasets (~1.19-1.30);
* **sparser networks have larger δ** (the network/Euclidean distance
  ratio): with few alternative routes, paths detour.  This emerges
  naturally from thinning a Delaunay triangulation down to the target
  edge count — no artificial length inflation is needed, though a mild
  per-edge detour factor is supported to model curved roads.

Two families:

* :func:`grid_network` — regular grids with perturbation; predictable,
  ideal for unit tests;
* :func:`delaunay_road_network` — the experiment workhorse: random
  sites, Delaunay triangulation, MST-plus-shortest-extras thinning,
  optional multi-patch site distribution (the paper's NA dataset is
  "merged from multiple originally separated road networks").
"""

from __future__ import annotations

import math
import random
from array import array
from pathlib import Path
from typing import Sequence

from repro.datasets.io import ColumnFileWriter
from repro.geometry.point import Point
from repro.network.graph import RoadNetwork

REGION_SIDE = 1.0
"""All generated networks live in a unit (1 km x 1 km) region."""


def grid_network(
    rows: int,
    cols: int,
    jitter: float = 0.0,
    detour: float = 1.0,
    drop_fraction: float = 0.0,
    seed: int = 0,
    region_side: float = REGION_SIDE,
) -> RoadNetwork:
    """A rows x cols grid with optional jitter, detours and edge drops.

    ``jitter`` displaces nodes by up to that fraction of the cell size;
    ``detour`` multiplies every edge length (>= 1); ``drop_fraction``
    removes that share of edges, skipping removals that would
    disconnect the grid (checked cheaply by keeping a spanning set).
    """
    if rows < 2 or cols < 2:
        raise ValueError("grid needs at least 2x2 nodes")
    if detour < 1.0:
        raise ValueError(f"detour factor must be >= 1, got {detour}")
    rng = random.Random(seed)
    network = RoadNetwork()
    dx = region_side / (cols - 1)
    dy = region_side / (rows - 1)

    def node_id(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            jx = rng.uniform(-jitter, jitter) * dx if jitter else 0.0
            jy = rng.uniform(-jitter, jitter) * dy if jitter else 0.0
            network.add_node(node_id(r, c), Point(c * dx + jx, r * dy + jy))

    candidate_edges: list[tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                candidate_edges.append((node_id(r, c), node_id(r, c + 1)))
            if r + 1 < rows:
                candidate_edges.append((node_id(r, c), node_id(r + 1, c)))

    keep: list[tuple[int, int]] = candidate_edges
    if drop_fraction > 0.0:
        keep = _drop_edges_keeping_connected(
            candidate_edges, rows * cols, drop_fraction, rng
        )
    for u, v in keep:
        chord = network.node_point(u).distance_to(network.node_point(v))
        network.add_edge(u, v, length=chord * detour)
    return network


def delaunay_road_network(
    node_count: int,
    edge_node_ratio: float = 1.2,
    seed: int = 0,
    patches: int = 1,
    patch_spread: float = 0.18,
    detour_jitter: tuple[float, float] = (1.0, 1.08),
    short_extra_share: float = 0.5,
    region_side: float = REGION_SIDE,
) -> RoadNetwork:
    """The main road-network generator (see module docstring).

    ``patches > 1`` draws most sites from that many Gaussian clusters
    (merged sub-networks).  ``edge_node_ratio`` sets |E|/|V|: a minimum
    spanning tree is kept, then extra Delaunay edges are added up to
    the target.  ``short_extra_share`` splits those extras between the
    *shortest* remaining edges (purely local shortcuts — poor long-range
    routing, large δ) and a *random* mix over all length scales
    (highway-like links — good routing, small δ).  This is the knob the
    presets use to reproduce the paper's δ-falls-with-density effect.
    """
    if node_count < 4:
        raise ValueError("need at least 4 nodes for a triangulation")
    if edge_node_ratio < 1.0:
        raise ValueError(f"edge/node ratio must be >= 1, got {edge_node_ratio}")
    lo, hi = detour_jitter
    if not 1.0 <= lo <= hi:
        raise ValueError(
            f"detour_jitter must satisfy 1 <= lo <= hi, got {detour_jitter}"
        )
    if not 0.0 <= short_extra_share <= 1.0:
        raise ValueError(
            f"short_extra_share must be in [0, 1], got {short_extra_share}"
        )

    rng = random.Random(seed)
    sites = _generate_sites(node_count, patches, patch_spread, rng, region_side)

    import numpy as np
    from scipy.spatial import Delaunay

    array = np.array([(p.x, p.y) for p in sites])
    triangulation = Delaunay(array)
    edge_set: set[tuple[int, int]] = set()
    for simplex in triangulation.simplices:
        a, b, c = int(simplex[0]), int(simplex[1]), int(simplex[2])
        edge_set.add((min(a, b), max(a, b)))
        edge_set.add((min(b, c), max(b, c)))
        edge_set.add((min(a, c), max(a, c)))

    def chord(edge: tuple[int, int]) -> float:
        return sites[edge[0]].distance_to(sites[edge[1]])

    by_length = sorted(edge_set, key=lambda e: (chord(e), e))

    # Kruskal: the MST keeps the network connected with n-1 edges.
    parent = list(range(node_count))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    mst: list[tuple[int, int]] = []
    extras: list[tuple[int, int]] = []
    for edge in by_length:
        ra, rb = find(edge[0]), find(edge[1])
        if ra != rb:
            parent[ra] = rb
            mst.append(edge)
        else:
            extras.append(edge)

    target_edges = max(node_count - 1, int(round(node_count * edge_node_ratio)))
    need = max(0, target_edges - len(mst))
    short_count = min(len(extras), int(round(need * short_extra_share)))
    chosen_extras = extras[:short_count]
    remaining = extras[short_count:]
    rng.shuffle(remaining)
    chosen_extras += remaining[: need - short_count]
    chosen = mst + chosen_extras

    network = RoadNetwork()
    for i, p in enumerate(sites):
        network.add_node(i, p)
    # Assign edge ids in spatial (Hilbert midpoint) order, as real road
    # data files are tiled geographically.  The middle layer's B+-tree
    # is keyed by edge id, so this gives wavefront-local probes the
    # page locality they would have on DCW data.
    from repro.network.storage import hilbert_index

    order = 10
    side = (1 << order) - 1

    def hilbert_of(edge: tuple[int, int]) -> int:
        mid = sites[edge[0]].midpoint(sites[edge[1]])
        gx = min(side, max(0, int(mid.x / region_side * side)))
        gy = min(side, max(0, int(mid.y / region_side * side)))
        return hilbert_index(gx, gy, order)

    chosen.sort(key=lambda e: (hilbert_of(e), e))
    for u, v in chosen:
        factor = rng.uniform(lo, hi)
        network.add_edge(u, v, length=chord((u, v)) * factor)
    return network


def _generate_sites(
    node_count: int,
    patches: int,
    patch_spread: float,
    rng: random.Random,
    region_side: float,
) -> list[Point]:
    """Uniform sites, or a mixture of clusters plus uniform background."""
    sites: list[Point] = []
    if patches <= 1:
        for _ in range(node_count):
            sites.append(
                Point(rng.random() * region_side, rng.random() * region_side)
            )
        return sites
    centers = [
        Point(
            region_side * (0.2 + 0.6 * rng.random()),
            region_side * (0.2 + 0.6 * rng.random()),
        )
        for _ in range(patches)
    ]
    background = max(1, node_count // 10)
    clustered = node_count - background
    for i in range(clustered):
        center = centers[i % patches]
        x = min(max(rng.gauss(center.x, patch_spread * region_side), 0.0), region_side)
        y = min(max(rng.gauss(center.y, patch_spread * region_side), 0.0), region_side)
        sites.append(Point(x, y))
    for _ in range(background):
        sites.append(Point(rng.random() * region_side, rng.random() * region_side))
    return sites


def _drop_edges_keeping_connected(
    edges: Sequence[tuple[int, int]],
    node_count: int,
    drop_fraction: float,
    rng: random.Random,
) -> list[tuple[int, int]]:
    """Remove ~drop_fraction of edges without disconnecting the graph.

    A randomly grown spanning set is protected; only non-protected
    edges are eligible for removal.
    """
    if not 0.0 <= drop_fraction < 1.0:
        raise ValueError(f"drop_fraction must be in [0, 1), got {drop_fraction}")
    shuffled = list(edges)
    rng.shuffle(shuffled)
    parent = list(range(node_count))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    protected: set[tuple[int, int]] = set()
    removable: list[tuple[int, int]] = []
    for edge in shuffled:
        ra, rb = find(edge[0]), find(edge[1])
        if ra != rb:
            parent[ra] = rb
            protected.add(edge)
        else:
            removable.append(edge)
    to_drop = min(len(removable), int(round(drop_fraction * len(edges))))
    dropped = set(removable[:to_drop])
    return [e for e in edges if e not in dropped]


def network_density(network: RoadNetwork, region_side: float = REGION_SIDE) -> float:
    """Total road length per unit area — the paper's density notion."""
    return network.total_length() / (region_side * region_side)


def estimate_delta(
    network: RoadNetwork,
    sources: int = 8,
    targets_per_source: int = 40,
    seed: int = 0,
) -> float:
    """Sampled average δ = dN / dE over random connected node pairs.

    The statistic Section 5 reasons about: large in sparse networks,
    approaching 1 as density grows.  One full Dijkstra per sampled
    source covers all of that source's target samples; wavefronts come
    from a throwaway :class:`~repro.engine.DistanceEngine` so this
    module respects the construction discipline (and repeated sources,
    if sampled, reuse their expansion).
    """
    from repro.engine import DistanceEngine

    rng = random.Random(seed)
    node_ids = list(network.node_ids())
    if len(node_ids) < 2:
        return 1.0
    engine = DistanceEngine(network)
    total = 0.0
    count = 0
    for source in rng.sample(node_ids, min(sources, len(node_ids))):
        expander = engine.expander(network.location_at_node(source))
        while expander.expand_next() is not None:
            pass
        reachable = [v for v in expander.settled if v != source]
        if not reachable:
            continue
        sample = rng.sample(reachable, min(targets_per_source, len(reachable)))
        source_point = network.node_point(source)
        for target in sample:
            euclid = source_point.distance_to(network.node_point(target))
            dist = expander.settled[target]
            if euclid > 0.0 and math.isfinite(dist):
                total += dist / euclid
                count += 1
    return total / count if count else 1.0


def stream_object_columns(
    path,
    count: int,
    attribute_count: int = 0,
    seed: int = 0,
    chunk_size: int = 8192,
    region_side: float = REGION_SIDE,
) -> Path:
    """Write a uniform object column file without materialising it.

    Columns ``x``/``y`` (uniform over the region) plus ``a0..a{k-1}``
    (uniform in ``[0, 1)``, matching the non-negative attribute
    convention) stream to ``path`` in ``chunk_size`` rows at a time —
    peak memory is a handful of reused chunk buffers regardless of
    ``count``, which is what lets the ``xl`` benchmark tier build
    million-object datasets.  Deterministic in ``seed``.
    """
    if count < 0:
        raise ValueError(f"negative object count {count}")
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    columns = ["x", "y"] + [f"a{j}" for j in range(attribute_count)]
    rng = random.Random(seed)
    buffers = {
        name: array("d", bytes(8 * min(chunk_size, count) or 8))
        for name in columns
    }
    with ColumnFileWriter(path, columns, count) as writer:
        remaining = count
        while remaining > 0:
            size = min(chunk_size, remaining)
            if size != len(buffers["x"]):
                buffers = {
                    name: array("d", bytes(8 * size)) for name in columns
                }
            xs = buffers["x"]
            ys = buffers["y"]
            for i in range(size):
                xs[i] = rng.random() * region_side
                ys[i] = rng.random() * region_side
            for j in range(attribute_count):
                column = buffers[f"a{j}"]
                for i in range(size):
                    column[i] = rng.random()
            for name in columns:
                writer.write(name, buffers[name])
            remaining -= size
    return Path(path)
