"""Minimum bounding rectangles (MBRs).

MBRs are the workhorse of the R-tree (:mod:`repro.index.rtree`): every
index entry carries one, and the skyline algorithms prune whole subtrees
by reasoning about the minimum possible distance from a query point to an
MBR (``mindist``, Roussopoulos et al.'s bound, used by the paper's BBS
variant and by LBC's constrained nearest-neighbour search).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.geometry.point import Point


@dataclass(frozen=True, slots=True)
class MBR:
    """An axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(
                f"degenerate MBR: ({self.min_x}, {self.min_y}) .. "
                f"({self.max_x}, {self.max_y})"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_point(cls, p: Point) -> "MBR":
        """A zero-area MBR covering a single point."""
        return cls(p.x, p.y, p.x, p.y)

    @classmethod
    def from_points(cls, points: Iterable[Point]) -> "MBR":
        """The tightest MBR covering a non-empty iterable of points."""
        it = iter(points)
        try:
            first = next(it)
        except StopIteration:
            raise ValueError("MBR.from_points() of an empty iterable") from None
        min_x = max_x = first.x
        min_y = max_y = first.y
        for p in it:
            if p.x < min_x:
                min_x = p.x
            if p.x > max_x:
                max_x = p.x
            if p.y < min_y:
                min_y = p.y
            if p.y > max_y:
                max_y = p.y
        return cls(min_x, min_y, max_x, max_y)

    @classmethod
    def union_all(cls, rects: Iterable["MBR"]) -> "MBR":
        """The tightest MBR covering a non-empty iterable of MBRs."""
        it = iter(rects)
        try:
            first = next(it)
        except StopIteration:
            raise ValueError("MBR.union_all() of an empty iterable") from None
        min_x, min_y = first.min_x, first.min_y
        max_x, max_y = first.max_x, first.max_y
        for r in it:
            if r.min_x < min_x:
                min_x = r.min_x
            if r.min_y < min_y:
                min_y = r.min_y
            if r.max_x > max_x:
                max_x = r.max_x
            if r.max_y > max_y:
                max_y = r.max_y
        return cls(min_x, min_y, max_x, max_y)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def perimeter(self) -> float:
        return 2.0 * (self.width + self.height)

    @property
    def center(self) -> Point:
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains_point(self, p: Point) -> bool:
        """True if ``p`` lies inside or on the boundary."""
        return self.min_x <= p.x <= self.max_x and self.min_y <= p.y <= self.max_y

    def contains(self, other: "MBR") -> bool:
        """True if ``other`` lies entirely inside (or equals) this MBR."""
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
        )

    def intersects(self, other: "MBR") -> bool:
        """True if the two rectangles share at least a boundary point."""
        return not (
            self.max_x < other.min_x
            or other.max_x < self.min_x
            or self.max_y < other.min_y
            or other.max_y < self.min_y
        )

    # ------------------------------------------------------------------
    # Combination and metrics
    # ------------------------------------------------------------------
    def union(self, other: "MBR") -> "MBR":
        """The tightest MBR covering both rectangles."""
        return MBR(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def extended_to(self, p: Point) -> "MBR":
        """The tightest MBR covering this rectangle and ``p``."""
        return MBR(
            min(self.min_x, p.x),
            min(self.min_y, p.y),
            max(self.max_x, p.x),
            max(self.max_y, p.y),
        )

    def enlargement(self, other: "MBR") -> float:
        """Extra area needed for this MBR to also cover ``other``.

        This is the classic Guttman insertion heuristic: the child whose
        MBR needs the least enlargement receives the new entry.
        """
        return self.union(other).area - self.area

    def mindist(self, p: Point) -> float:
        """Minimum Euclidean distance from ``p`` to any point of the MBR.

        Zero when ``p`` is inside.  This is the lower bound used for
        best-first R-tree traversal: no object inside the MBR can be
        closer to ``p`` than ``mindist``.
        """
        dx = 0.0
        if p.x < self.min_x:
            dx = self.min_x - p.x
        elif p.x > self.max_x:
            dx = p.x - self.max_x
        dy = 0.0
        if p.y < self.min_y:
            dy = self.min_y - p.y
        elif p.y > self.max_y:
            dy = p.y - self.max_y
        return (dx * dx + dy * dy) ** 0.5

    def maxdist(self, p: Point) -> float:
        """Maximum Euclidean distance from ``p`` to any point of the MBR."""
        dx = max(abs(p.x - self.min_x), abs(p.x - self.max_x))
        dy = max(abs(p.y - self.min_y), abs(p.y - self.max_y))
        return (dx * dx + dy * dy) ** 0.5
