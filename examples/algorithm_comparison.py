"""Compare CE, EDC and LBC on the paper's workload, side by side.

Reproduces in miniature what Section 6 measures: the same multi-source
skyline query answered by all three algorithms (plus the exhaustive
baseline), with candidate counts, network node expansions, simulated
disk pages and response times.  LBC should win on network access —
Theorem 1 says it cannot lose.

Run with::

    python examples/algorithm_comparison.py [network]  (CA, AU or NA)
"""

import sys

from repro import CE, EDC, LBC, NaiveSkyline, Workspace, build_preset, extract_objects
from repro.datasets import estimate_delta, select_query_points


def main() -> None:
    preset = sys.argv[1].upper() if len(sys.argv) > 1 else "AU"
    network = build_preset(preset)
    delta = estimate_delta(network, sources=4, targets_per_source=30)
    print(
        f"network {preset}: {network.node_count} junctions, "
        f"{network.edge_count} edges, delta (dN/dE) = {delta:.2f}"
    )

    objects = extract_objects(network, omega=0.50, seed=1)
    workspace = Workspace.build(network, objects, buffer_bytes=256 * 1024)
    queries = select_query_points(network, 4, region_fraction=0.10, seed=5)
    print(f"objects: {len(objects)}, query points: {len(queries)}\n")

    rows = []
    reference = None
    for algorithm in (NaiveSkyline(), CE(), EDC(), LBC()):
        workspace.reset_io(cold=True)
        result = algorithm.run(workspace, queries)
        if reference is None:
            reference = result
        else:
            assert result.same_answer(reference), (
                f"{algorithm.name} disagrees with the baseline"
            )
        rows.append(result.stats)

    print(
        f"{'algorithm':>10s} {'skyline':>8s} {'|C|':>6s} {'nodes':>8s} "
        f"{'net pages':>10s} {'total s':>9s} {'first s':>9s}"
    )
    for s in rows:
        print(
            f"{s.algorithm:>10s} {s.skyline_count:8d} {s.candidate_count:6d} "
            f"{s.nodes_settled:8d} {s.network_pages:10d} "
            f"{s.total_response_s:9.3f} {s.initial_response_s:9.3f}"
        )

    lbc = rows[-1]
    ce = rows[1]
    if ce.network_pages > 0 and lbc.network_pages > 0:
        print(
            f"\nLBC touches {ce.network_pages / lbc.network_pages:.1f}x fewer "
            "network pages than CE on this instance"
        )


if __name__ == "__main__":
    main()
