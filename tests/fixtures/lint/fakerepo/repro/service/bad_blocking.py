"""Seeded blocking-call-under-lock violation."""

import threading
import time


class BadServer:
    def __init__(self):
        self._lock = threading.Lock()

    def tick(self, engine, sources, targets):
        with self._lock:
            time.sleep(0.5)  # EXPECT: REPRO-LOCK03
            return engine.matrix(sources, targets)  # EXPECT: REPRO-LOCK03
