"""Seeded page-accounting violations in an algorithm layer."""

from repro.network.dijkstra import DijkstraExpander


def walk(network, node):
    frontier = network.neighbors(node)  # EXPECT: REPRO-PAGE01
    adj = network._adjacency  # EXPECT: REPRO-PAGE01
    return frontier, adj


def adhoc(network, store, source):
    return DijkstraExpander(network, store, source)  # EXPECT: REPRO-PAGE03
