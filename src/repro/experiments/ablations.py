"""Ablation runners: the design-choice comparisons DESIGN.md calls out.

Each runner reuses the figure harness (same workloads, cold buffers,
trial averaging) but compares *variants of one algorithm* instead of
the paper's three algorithms:

* :func:`run_ablation_plb` — LBC with vs without path-distance lower
  bounds (Section 4.3's second idea, isolated);
* :func:`run_ablation_lazy` — eager vs lazily-bounded source dimension
  (our LBC-lazy extension), across network densities;
* :func:`run_ablation_heuristic` — Euclidean vs landmark (ALT) lower
  bounds on the sparse network;
* :func:`run_ablation_ce_strategy` — CE wavefront alternation policies;
* :func:`run_ablation_buffer` — CE's page misses across buffer sizes
  (the thrashing behind Figure 6(a)'s superlinearity);
* :func:`run_ablation_backend` — the distance engine's pluggable
  backends (plain A* vs landmark-guided) under the same algorithm.

``python -m repro.experiments --ablations`` prints them all.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.ce import CollaborativeExpansion
from repro.core.lbc import LowerBoundConstraint, LowerBoundConstraintLazy
from repro.datasets.presets import DENSITY_ORDER
from repro.experiments.figures import FigureSeries
from repro.experiments.harness import (
    ExperimentConfig,
    WorkloadCache,
    run_experiment,
)


def run_ablation_plb(
    base: ExperimentConfig | None = None,
    cache: WorkloadCache | None = None,
) -> FigureSeries:
    """LBC's partial distance computation, on vs off, across densities."""
    base = base or ExperimentConfig()
    series = FigureSeries(
        figure="Abl-plb",
        title="LBC with vs without path-distance lower bounds",
        x_label="network",
        y_label="nodes settled",
    )
    algorithms = [
        LowerBoundConstraint(),
        LowerBoundConstraint(use_lower_bounds=False),
    ]
    for name in DENSITY_ORDER:
        out = run_experiment(base.with_(network=name), algorithms, cache=cache)
        series.add_point(name, out, "nodes_settled")
    return series


def run_ablation_lazy(
    base: ExperimentConfig | None = None,
    cache: WorkloadCache | None = None,
) -> FigureSeries:
    """Eager vs lazy source-distance bounding across densities."""
    base = base or ExperimentConfig()
    series = FigureSeries(
        figure="Abl-lazy",
        title="LBC vs LBC-lazy (lazily-bounded source dimension)",
        x_label="network",
        y_label="nodes settled",
    )
    algorithms = [LowerBoundConstraint(), LowerBoundConstraintLazy()]
    for name in DENSITY_ORDER:
        out = run_experiment(base.with_(network=name), algorithms, cache=cache)
        series.add_point(name, out, "nodes_settled")
    return series


def run_ablation_heuristic(
    base: ExperimentConfig | None = None,
    cache: WorkloadCache | None = None,
    landmark_count: int = 8,
) -> FigureSeries:
    """Euclidean vs landmark (ALT) heuristic on the sparse CA network."""
    from repro.network.landmarks import LandmarkHeuristic

    base = (base or ExperimentConfig()).with_(network="CA")
    if cache is None:
        cache = WorkloadCache()
    workspace = cache.workspace(base)
    guide = LandmarkHeuristic(workspace.network, count=landmark_count, seed=1)

    euclid = LowerBoundConstraint()
    landmark = LowerBoundConstraint(heuristic=guide)
    landmark.name = "LBC-landmarks"

    series = FigureSeries(
        figure="Abl-alt",
        title="LBC heuristic: Euclidean vs landmarks (ALT)",
        x_label="network",
        y_label="nodes settled",
    )
    out = run_experiment(base, [euclid, landmark], cache=cache)
    series.add_point("CA", out, "nodes_settled")
    return series


def run_ablation_ce_strategy(
    base: ExperimentConfig | None = None,
    cache: WorkloadCache | None = None,
) -> FigureSeries:
    """CE wavefront alternation policies across densities."""
    base = base or ExperimentConfig()
    series = FigureSeries(
        figure="Abl-ce",
        title="CE alternation: round-robin vs min-radius",
        x_label="network",
        y_label="network pages",
    )
    algorithms = [
        CollaborativeExpansion(),
        CollaborativeExpansion(strategy="min_radius"),
    ]
    for name in DENSITY_ORDER:
        out = run_experiment(base.with_(network=name), algorithms, cache=cache)
        series.add_point(name, out, "network_pages")
    return series


def run_ablation_buffer(
    base: ExperimentConfig | None = None,
    buffer_kib: Sequence[int] = (64, 128, 256, 1024),
    cache: WorkloadCache | None = None,
) -> FigureSeries:
    """CE's page misses as the buffer shrinks (NA workload)."""
    base = base or ExperimentConfig()
    series = FigureSeries(
        figure="Abl-buf",
        title="CE network pages vs buffer size (NA)",
        x_label="buffer KiB",
        y_label="network pages",
    )
    for kib in buffer_kib:
        config = base.with_(buffer_bytes=kib * 1024)
        out = run_experiment(config, [CollaborativeExpansion()], cache=cache)
        series.add_point(kib, out, "network_pages")
    return series


def run_ablation_backend(
    base: ExperimentConfig | None = None,
    cache: WorkloadCache | None = None,
) -> FigureSeries:
    """Distance-engine backends compared under one algorithm (LBC).

    ``"dijkstra"`` (the workspace default — goal-directed algorithms
    then fall back to plain Euclidean A*) vs ``"astar+landmarks"``
    (ALT bounds supplied by the engine, no per-algorithm wiring).
    Answers are identical; the backend only changes search effort.
    """
    base = base or ExperimentConfig()
    series = FigureSeries(
        figure="Abl-backend",
        title="Engine backend: euclidean A* vs astar+landmarks",
        x_label="network",
        y_label="nodes settled",
    )
    for name in DENSITY_ORDER:
        merged = {}
        for backend in ("dijkstra", "astar+landmarks"):
            algorithm = LowerBoundConstraint()
            algorithm.name = f"LBC[{backend}]"
            out = run_experiment(
                base.with_(network=name, distance_backend=backend),
                [algorithm],
                cache=cache,
            )
            merged.update(out)
        series.add_point(name, merged, "nodes_settled")
    return series


def run_all_ablations(
    base: ExperimentConfig | None = None,
    cache: WorkloadCache | None = None,
) -> list[FigureSeries]:
    """Every ablation, sharing one workload cache."""
    if cache is None:
        cache = WorkloadCache()
    return [
        run_ablation_plb(base, cache),
        run_ablation_lazy(base, cache),
        run_ablation_heuristic(base, cache),
        run_ablation_ce_strategy(base, cache),
        run_ablation_buffer(base, cache=cache),
        run_ablation_backend(base, cache),
    ]
