"""The experiment harness: configuration, workload cache, trial runner.

One :class:`ExperimentConfig` pins every knob of a measurement point
(network preset, scale, ω, |Q|, trials, buffer size); the harness
builds/caches the workspace, draws ``trials`` independent query-point
sets, runs each algorithm cold-buffered, and averages the stats —
mirroring Section 6.1 ("the performance data reported ... are the
average of ten tests").

Defaults follow the paper where they can and document the substitution
where they cannot:

* page size 4 KiB, query region 10 %, ω = 50 %, |Q| = 4, network NA;
* ``scale`` defaults to 0.1 of the paper's node counts (pure-Python
  substrate), and ``buffer_bytes`` defaults to 256 KiB — the paper's
  1 MiB buffer holds roughly a third of its NA adjacency pages, and
  64 frames against our ~160-page NA store reproduces that pressure
  ratio (a full 1 MiB would cache the scaled-down networks entirely
  and hide the eviction behaviour Figures 5-6 measure).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from repro.core.base import SkylineAlgorithm
from repro.core.query import Workspace
from repro.core.stats import QueryStats
from repro.datasets.objects import extract_objects
from repro.datasets.presets import DEFAULT_SCALE, build_preset
from repro.datasets.queries import select_query_points

DEFAULT_BUFFER_BYTES = 256 * 1024
DEFAULT_TRIALS = 5


@dataclass(frozen=True)
class ExperimentConfig:
    """All knobs of one measurement point."""

    network: str = "NA"
    scale: float = DEFAULT_SCALE
    omega: float = 0.50
    query_count: int = 4
    trials: int = DEFAULT_TRIALS
    region_fraction: float = 0.10
    buffer_bytes: int = DEFAULT_BUFFER_BYTES
    network_seed: int = 7
    workload_seed: int = 1
    query_seed: int = 100
    distance_backend: str = "dijkstra"

    def with_(self, **changes) -> "ExperimentConfig":
        """A copy with some knobs changed (sweep convenience)."""
        return replace(self, **changes)


@dataclass
class AggregateStats:
    """Per-algorithm averages over an experiment's trials."""

    algorithm: str
    trials: int
    candidate_ratio: float
    candidate_count: float
    skyline_count: float
    nodes_settled: float
    network_pages: float
    index_pages: float
    middle_pages: float
    distance_computations: float
    initial_response_s: float
    total_response_s: float
    modeled_initial_s: float
    modeled_total_s: float
    engine_hits: float = 0.0
    engine_misses: float = 0.0
    engine_evictions: float = 0.0

    @classmethod
    def from_stats(cls, runs: Sequence[QueryStats]) -> "AggregateStats":
        if not runs:
            raise ValueError("cannot aggregate zero runs")

        def mean(values: Iterable[float]) -> float:
            values = list(values)
            return sum(values) / len(values)

        return cls(
            algorithm=runs[0].algorithm,
            trials=len(runs),
            candidate_ratio=mean(r.candidate_ratio for r in runs),
            candidate_count=mean(r.candidate_count for r in runs),
            skyline_count=mean(r.skyline_count for r in runs),
            nodes_settled=mean(r.nodes_settled for r in runs),
            network_pages=mean(r.network_pages for r in runs),
            index_pages=mean(r.index_pages for r in runs),
            middle_pages=mean(r.middle_pages for r in runs),
            distance_computations=mean(r.distance_computations for r in runs),
            initial_response_s=mean(r.initial_response_s for r in runs),
            total_response_s=mean(r.total_response_s for r in runs),
            modeled_initial_s=mean(r.modeled_initial_s for r in runs),
            modeled_total_s=mean(r.modeled_total_s for r in runs),
            engine_hits=mean(r.engine_hits for r in runs),
            engine_misses=mean(r.engine_misses for r in runs),
            engine_evictions=mean(r.engine_evictions for r in runs),
        )

    def metric(self, name: str) -> float:
        """Look up a metric by the figure runner's name for it."""
        return getattr(self, name)


class WorkloadCache:
    """Caches built workspaces across the points of a parameter sweep.

    Building NA and extracting thousands of objects takes longer than a
    query; sweeps over |Q| or trials reuse the same workspace, exactly
    as the paper's experiments reuse their datasets.
    """

    def __init__(self) -> None:
        self._networks: dict[tuple, object] = {}
        self._workspaces: dict[tuple, Workspace] = {}

    def network(self, config: ExperimentConfig):
        key = (config.network, config.scale, config.network_seed)
        if key not in self._networks:
            self._networks[key] = build_preset(
                config.network, scale=config.scale, seed=config.network_seed
            )
        return self._networks[key]

    def workspace(self, config: ExperimentConfig) -> Workspace:
        key = (
            config.network,
            config.scale,
            config.network_seed,
            config.omega,
            config.workload_seed,
            config.buffer_bytes,
            config.distance_backend,
        )
        if key not in self._workspaces:
            network = self.network(config)
            objects = extract_objects(
                network, config.omega, seed=config.workload_seed
            )
            self._workspaces[key] = Workspace.build(
                network,
                objects,
                paged=True,
                buffer_bytes=config.buffer_bytes,
                distance_backend=config.distance_backend,
            )
        return self._workspaces[key]

    def clear(self) -> None:
        self._networks.clear()
        self._workspaces.clear()


_shared_cache = WorkloadCache()


def shared_cache() -> WorkloadCache:
    """The process-wide cache used by figure runners and benchmarks."""
    return _shared_cache


def run_experiment(
    config: ExperimentConfig,
    algorithms: Sequence[SkylineAlgorithm],
    cache: WorkloadCache | None = None,
    tracer=None,
) -> dict[str, AggregateStats]:
    """Run every algorithm over ``config.trials`` query draws.

    Each (trial, algorithm) run starts with a cold buffer; all
    algorithms of a trial see the same query points.  Returns averages
    keyed by algorithm name.  Pass a :class:`repro.obs.Tracer` to
    retain every measured run's span tree (e.g. to export slow trials
    alongside the figure data).
    """
    if cache is None:
        cache = shared_cache()
    workspace = cache.workspace(config)
    network = workspace.network

    collected: dict[str, list[QueryStats]] = {a.name: [] for a in algorithms}
    for trial in range(config.trials):
        queries = select_query_points(
            network,
            config.query_count,
            region_fraction=config.region_fraction,
            seed=config.query_seed + trial,
        )
        reference_ids: list[int] | None = None
        for algorithm in algorithms:
            workspace.reset_io(cold=True)
            result = algorithm.run(workspace, queries)
            collected[algorithm.name].append(result.stats)
            if tracer is not None and result.trace is not None:
                result.trace.attributes["trial"] = trial
                tracer.finish(result.trace)
            # All algorithms must agree — a free correctness check on
            # every measured point.
            ids = result.object_ids()
            if reference_ids is None:
                reference_ids = ids
            elif ids != reference_ids:
                raise AssertionError(
                    f"algorithm disagreement on {config}: "
                    f"{algorithm.name} returned {len(ids)} points, "
                    f"expected {len(reference_ids)}"
                )
    return {
        name: AggregateStats.from_stats(runs) for name, runs in collected.items()
    }
