"""Explaining skyline answers.

"Why is my hotel not in the result?" is the first question a skyline
user asks.  :func:`explain_object` answers it with the witnesses: the
skyline members that dominate the object, with the per-dimension
margins.  :func:`explain_result` summarises an entire answer.

The explanation re-derives the object's vector exactly the way the
algorithms do (network distances to every query point plus static
attributes), so it is also a handy debugging probe.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.query import Workspace
from repro.core.result import SkylineResult
from repro.network.graph import NetworkLocation
from repro.skyline.dominance import dominates


@dataclass(frozen=True)
class DominanceWitness:
    """One skyline member dominating the explained object."""

    dominator_id: int
    dominator_vector: tuple[float, ...]
    margins: tuple[float, ...]
    """Per-dimension ``explained - dominator`` gaps (all >= 0)."""

    @property
    def worst_margin(self) -> float:
        return max(self.margins)


@dataclass(frozen=True)
class ObjectExplanation:
    """The verdict for one object against a skyline result."""

    object_id: int
    vector: tuple[float, ...]
    on_skyline: bool
    witnesses: tuple[DominanceWitness, ...]

    def summary(self) -> str:
        """A one-paragraph human-readable verdict."""
        if self.on_skyline:
            return (
                f"object {self.object_id} is on the skyline: no other "
                "object is at least as good in every dimension"
            )
        best = min(self.witnesses, key=lambda w: w.worst_margin)
        dims = ", ".join(f"{m:+.4f}" for m in best.margins)
        return (
            f"object {self.object_id} is dominated by "
            f"{len(self.witnesses)} skyline member(s); the closest is "
            f"object {best.dominator_id} (per-dimension gaps: {dims})"
        )


def object_vector(
    workspace: Workspace, queries: list[NetworkLocation], object_id: int
) -> tuple[float, ...]:
    """The evaluation vector of one object.

    Routed through the workspace's distance engine: page reads are
    charged to the buffer pool, wavefronts from earlier queries (or the
    skyline run being explained) are reused, and memoised distances —
    e.g. ones the algorithms recorded while answering — come back
    without touching the network at all.
    """
    obj = workspace.objects.get(object_id)
    return workspace.engine.vector(queries, obj)


def explain_object(
    workspace: Workspace,
    queries: list[NetworkLocation],
    result: SkylineResult,
    object_id: int,
) -> ObjectExplanation:
    """Why ``object_id`` is (not) part of ``result``."""
    vector = object_vector(workspace, queries, object_id)
    members = result.vectors_by_id()
    if object_id in members:
        return ObjectExplanation(
            object_id=object_id, vector=vector, on_skyline=True, witnesses=()
        )
    witnesses = []
    for member_id, member_vector in sorted(members.items()):
        if dominates(member_vector, vector):
            margins = tuple(
                v - m for v, m in zip(vector, member_vector)
            )
            witnesses.append(
                DominanceWitness(
                    dominator_id=member_id,
                    dominator_vector=member_vector,
                    margins=margins,
                )
            )
    if not witnesses:
        raise ValueError(
            f"object {object_id} is neither in the result nor dominated by "
            "it — the result does not belong to this workspace/query pair"
        )
    return ObjectExplanation(
        object_id=object_id,
        vector=vector,
        on_skyline=False,
        witnesses=tuple(witnesses),
    )


def explain_result(
    workspace: Workspace,
    queries: list[NetworkLocation],
    result: SkylineResult,
) -> str:
    """A text report: every skyline member with its best dimension."""
    lines = [
        f"{len(result)} skyline points over {len(workspace.objects)} objects, "
        f"|Q|={len(queries)}"
    ]
    dimension_names = [f"d(q{i})" for i in range(len(queries))] + [
        f"attr{j}" for j in range(workspace.attribute_count)
    ]
    for point in result:
        best_dim = min(
            range(len(point.vector)), key=lambda i: point.vector[i]
        )
        lines.append(
            f"  object {point.object_id}: best at {dimension_names[best_dim]}"
            f" = {point.vector[best_dim]:.4f}"
        )
    return "\n".join(lines)
