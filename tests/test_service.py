"""Unit tests for the serving layer: planner, admission, deadlines.

Concurrent mutation/query interleaving lives in
``test_service_concurrency.py``; the HTTP transport in
``test_service_http.py``.
"""

from __future__ import annotations

import time

import pytest

from conftest import build_random_network, place_random_objects
from repro.core import LBC, Workspace
from repro.service import (
    BadRequest,
    BatchPlanner,
    DeadlineExceeded,
    LatencyRecorder,
    Overloaded,
    QueryService,
    ReadWriteLock,
    SERVICE_ALGORITHMS,
    ServiceClosed,
    ServiceRequest,
    execute_plan,
)


@pytest.fixture(scope="module")
def dataset():
    network = build_random_network(150, 110, seed=21, detour_max=0.6)
    objects = place_random_objects(network, 50, seed=22, attribute_count=2)
    return network, objects


@pytest.fixture
def workspace(dataset):
    network, objects = dataset
    return Workspace.build(network, objects, distance_backend="astar")


def locations(network, *nodes):
    return [network.location_at_node(n) for n in nodes]


# ----------------------------------------------------------------------
# BatchPlanner
# ----------------------------------------------------------------------
class TestBatchPlanner:
    def test_disjoint_requests_get_separate_plans(self, dataset):
        network, _ = dataset
        requests = [
            ServiceRequest(1, "LBC", locations(network, 1, 2)),
            ServiceRequest(2, "LBC", locations(network, 30, 31)),
        ]
        plans = BatchPlanner().plan(requests)
        assert len(plans) == 2
        assert not plans[0].key_union() & plans[1].key_union()

    def test_overlap_is_transitive(self, dataset):
        """A-B share q2, B-C share q3 → one batch of three."""
        network, _ = dataset
        requests = [
            ServiceRequest(1, "LBC", locations(network, 1, 2)),
            ServiceRequest(2, "LBC", locations(network, 2, 3)),
            ServiceRequest(3, "LBC", locations(network, 3, 4)),
        ]
        plans = BatchPlanner().plan(requests)
        assert len(plans) == 1
        assert len(plans[0].units) == 3
        # Query point 2 and 3 each appear in two units.
        shared = plans[0].shared_sources()
        assert len(shared) == 2

    def test_identical_requests_dedupe_into_one_unit(self, dataset):
        network, _ = dataset
        same = locations(network, 5, 6, 7)
        permuted = locations(network, 7, 5, 6)
        requests = [
            ServiceRequest(1, "LBC", same),
            ServiceRequest(2, "LBC", list(same)),
            ServiceRequest(3, "LBC", permuted),
            ServiceRequest(4, "EDC", list(same)),  # different algorithm
        ]
        plans = BatchPlanner().plan(requests)
        assert len(plans) == 1
        units = plans[0].units
        assert len(units) == 2  # LBC×3 deduped, EDC separate
        sizes = sorted(len(u.requests) for u in units)
        assert sizes == [1, 3]

    def test_execute_plan_answers_match_direct_runs(self, workspace):
        network = workspace.network
        requests = [
            ServiceRequest(1, "LBC", locations(network, 1, 2, 3)),
            ServiceRequest(2, "EDC", locations(network, 2, 3, 9)),
        ]
        plans = BatchPlanner().plan(requests)
        assert len(plans) == 1
        outcomes = execute_plan(workspace, plans[0], SERVICE_ALGORITHMS)
        for request in requests:
            direct = SERVICE_ALGORITHMS[request.algorithm]().run(
                workspace, request.queries
            )
            assert outcomes[request.request_id].same_answer(direct)

    def test_follower_vectors_are_permuted_not_copied(self, workspace):
        network = workspace.network
        canonical = ServiceRequest(1, "LBC", locations(network, 4, 11, 17))
        follower = ServiceRequest(2, "LBC", locations(network, 17, 4, 11))
        plans = BatchPlanner().plan([canonical, follower])
        outcomes = execute_plan(workspace, plans[0], SERVICE_ALGORITHMS)
        a, b = outcomes[1], outcomes[2]
        assert a.object_ids() == b.object_ids()
        attrs = workspace.attribute_count
        for object_id, vector in a.vectors_by_id().items():
            other = b.vectors_by_id()[object_id]
            # order (4, 11, 17) → (17, 4, 11): distance columns rotate.
            assert other[0] == pytest.approx(vector[2])
            assert other[1] == pytest.approx(vector[0])
            assert other[2] == pytest.approx(vector[1])
            assert other[3:] == vector[3:]  # attributes unchanged
            assert len(vector) == 3 + attrs

    def test_unit_failure_does_not_sink_the_batch(self, workspace):
        network = workspace.network

        class Exploding:
            name = "explode"

            def run(self, workspace, queries):
                raise RuntimeError("boom")

        registry = dict(SERVICE_ALGORITHMS)
        registry["explode"] = Exploding
        requests = [
            ServiceRequest(1, "explode", locations(network, 1, 2)),
            ServiceRequest(2, "LBC", locations(network, 2, 3)),
        ]
        plans = BatchPlanner().plan(requests)
        outcomes = execute_plan(workspace, plans[0], registry)
        assert isinstance(outcomes[1], RuntimeError)
        direct = LBC().run(workspace, requests[1].queries)
        assert outcomes[2].same_answer(direct)


# ----------------------------------------------------------------------
# QueryService
# ----------------------------------------------------------------------
class TestQueryService:
    def test_blocking_query_matches_direct_run(self, workspace):
        network = workspace.network
        queries = locations(network, 3, 40, 77)
        direct = LBC().run(workspace, queries)
        with QueryService(workspace, workers=2) as service:
            result = service.query("LBC", queries)
            assert result.same_answer(direct)

    def test_unknown_algorithm_and_empty_queries_rejected(self, workspace):
        with QueryService(workspace, workers=1) as service:
            with pytest.raises(BadRequest):
                service.submit("nope", locations(workspace.network, 1))
            with pytest.raises(BadRequest):
                service.submit("LBC", [])

    def test_admission_control_sheds_when_queue_full(self, workspace):
        network = workspace.network
        queries = locations(network, 1, 2)
        with QueryService(workspace, workers=1, queue_limit=3) as service:
            service.pause()
            for _ in range(3):
                service.submit("LBC", queries)
            with pytest.raises(Overloaded) as exc_info:
                service.submit("LBC", queries)
            assert exc_info.value.queue_limit == 3
            assert service.stats_dict()["queue"]["shed"] == 1
            service.resume()

    def test_deadline_exceeded_for_stale_requests(self, workspace):
        network = workspace.network
        with QueryService(workspace, workers=1) as service:
            service.pause()
            pending = service.submit(
                "LBC", locations(network, 1, 2), timeout_s=0.01
            )
            time.sleep(0.08)
            service.resume()
            with pytest.raises(DeadlineExceeded):
                pending.result(timeout=10)
            assert service.stats_dict()["requests"]["timed_out"] == 1

    def test_dedupe_counted_and_consistent(self, workspace):
        network = workspace.network
        queries = locations(network, 8, 9, 10)
        with QueryService(workspace, workers=1, max_batch=8) as service:
            service.pause()
            pendings = [service.submit("LBC", queries) for _ in range(4)]
            service.resume()
            results = [p.result(timeout=30) for p in pendings]
            for other in results[1:]:
                assert other.same_answer(results[0])
            assert service.stats_dict()["requests"]["deduped"] == 3

    def test_closed_service_rejects_submissions(self, workspace):
        service = QueryService(workspace, workers=1)
        service.close()
        with pytest.raises(ServiceClosed):
            service.submit("LBC", locations(workspace.network, 1))

    def test_close_drains_queued_requests(self, workspace):
        network = workspace.network
        service = QueryService(workspace, workers=2)
        pendings = [
            service.submit("LBC", locations(network, n, n + 1))
            for n in range(1, 9, 2)
        ]
        service.close()
        direct = {}
        for pending in pendings:
            result = pending.result(timeout=30)
            key = tuple(q.node_id for q in pending.request.queries)
            direct[key] = result
        for key, result in direct.items():
            reference = LBC().run(
                workspace, locations(network, *key)
            )
            assert result.same_answer(reference)

    def test_mutations_tracked_and_visible(self, workspace):
        network = workspace.network
        queries = locations(network, 3, 40)
        with QueryService(workspace, workers=2) as service:
            before = service.query("LBC", queries)
            edge_id = sorted(network.edge_ids())[0]
            old_length = network.edge(edge_id).length
            service.update_edge_length(edge_id, old_length * 3.0)
            after = service.query("LBC", queries)
            stats = service.stats_dict()
            assert stats["requests"]["mutations"] == 1
            assert stats["workspace_version"] == 1
            # The post-mutation answer matches a fresh direct run.
            assert after.same_answer(LBC().run(workspace, queries))
            del before  # answers may or may not differ; no torn state


# ----------------------------------------------------------------------
# Building blocks
# ----------------------------------------------------------------------
class TestReadWriteLock:
    def test_reentrant_writer_and_reader_passthrough(self):
        lock = ReadWriteLock()
        with lock.write_locked():
            with lock.write_locked():  # reentrant
                assert lock.write_held
            with lock.read_locked():  # owner may read
                pass
        assert not lock.write_held

    def test_release_write_by_stranger_raises(self):
        lock = ReadWriteLock()
        with pytest.raises(RuntimeError):
            lock.release_write()


class TestLatencyRecorder:
    def test_percentiles_nearest_rank(self):
        recorder = LatencyRecorder(window=100)
        for value in [0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09, 0.10]:
            recorder.record(value)
        assert recorder.percentile(50) == pytest.approx(0.05)
        assert recorder.percentile(95) == pytest.approx(0.10)
        assert recorder.percentile(99) == pytest.approx(0.10)
        assert recorder.count == 10
        summary = recorder.summary()
        assert set(summary) == {"count", "mean_s", "p50_s", "p95_s", "p99_s"}

    def test_empty_recorder_reports_zero(self):
        recorder = LatencyRecorder()
        assert recorder.percentile(50) == 0.0
        assert recorder.mean() == 0.0


class TestWorkspaceSnapshotHooks:
    def test_version_bumps_once_per_logical_mutation(self, dataset):
        network, objects = dataset
        workspace = Workspace.build(network, objects)
        assert workspace.version == 0
        moved = next(iter(workspace.objects))
        workspace.move_object(
            moved.object_id, network.location_at_node(1)
        )
        # remove + add nested inside move still count as one mutation.
        assert workspace.version == 1

    def test_compound_mutation_invalidates_engine_once(self, dataset):
        network, objects = dataset
        workspace = Workspace.build(network, objects)
        engine = workspace.engine
        # Prime a cache entry so invalidation has something to count.
        engine.distance(
            network.location_at_node(1), network.location_at_node(2)
        )
        before = engine.counters.invalidations
        obj = next(iter(workspace.objects))
        workspace.move_object(obj.object_id, network.location_at_node(3))
        assert engine.counters.invalidations == before + 1
