"""Tests for the landmark (ALT) heuristic and its use in A*/LBC."""

import math

import pytest

from repro.core import LBC, NaiveSkyline, Workspace
from repro.network import (
    AStarExpander,
    DijkstraExpander,
    LandmarkHeuristic,
)

from conftest import build_random_network, place_random_objects, random_locations


@pytest.fixture(scope="module")
def detour_network():
    return build_random_network(70, 40, seed=201, detour_max=1.5)


@pytest.fixture(scope="module")
def landmarks(detour_network):
    return LandmarkHeuristic(detour_network, count=5, seed=202)


class TestConstruction:
    def test_landmark_count(self, detour_network):
        lm = LandmarkHeuristic(detour_network, count=4, seed=1)
        assert len(lm.landmarks) == 4
        assert len(set(lm.landmarks)) == 4

    def test_count_clamped_to_node_count(self):
        net = build_random_network(5, 2, seed=3)
        lm = LandmarkHeuristic(net, count=50, seed=4)
        assert len(lm.landmarks) <= 5

    def test_bad_parameters(self, detour_network):
        with pytest.raises(ValueError):
            LandmarkHeuristic(detour_network, count=0)
        with pytest.raises(ValueError):
            LandmarkHeuristic(detour_network, strategy="kmeans")

    def test_random_strategy(self, detour_network):
        lm = LandmarkHeuristic(detour_network, count=3, seed=5, strategy="random")
        assert len(lm.landmarks) == 3

    def test_empty_network_rejected(self):
        from repro.network import RoadNetwork

        with pytest.raises(ValueError):
            LandmarkHeuristic(RoadNetwork())

    def test_farthest_spreads_landmarks(self, detour_network):
        """Farthest-point landmarks should be pairwise farther apart (by
        network distance) than a random draw, on average."""
        far = LandmarkHeuristic(detour_network, count=4, seed=7)
        rnd = LandmarkHeuristic(detour_network, count=4, seed=7, strategy="random")

        def mean_pairwise(lm):
            total = count = 0
            for i, a in enumerate(lm.landmarks):
                expander = DijkstraExpander(
                    detour_network, detour_network.location_at_node(a)
                )
                for b in lm.landmarks[i + 1 :]:
                    d = expander.distance_to_node(b)
                    if math.isfinite(d):
                        total += d
                        count += 1
            return total / max(count, 1)

        assert mean_pairwise(far) >= mean_pairwise(rnd) * 0.8


class TestBoundValidity:
    def test_node_bound_never_exceeds_truth(self, detour_network, landmarks):
        import random

        rng = random.Random(9)
        nodes = sorted(detour_network.node_ids())
        for _ in range(30):
            a, b = rng.sample(nodes, 2)
            truth = DijkstraExpander(
                detour_network, detour_network.location_at_node(a)
            ).distance_to_node(b)
            assert landmarks.node_to_node(a, b) <= truth + 1e-9

    def test_location_bound_never_exceeds_truth(self, detour_network, landmarks):
        for target in random_locations(detour_network, 10, seed=11):
            for node in list(detour_network.node_ids())[:10]:
                truth = DijkstraExpander(
                    detour_network, detour_network.location_at_node(node)
                ).distance_to(target)
                assert landmarks(node, target) <= truth + 1e-9

    def test_bound_to_self_is_zero(self, detour_network, landmarks):
        for node in list(detour_network.node_ids())[:5]:
            assert landmarks.node_to_node(node, node) == 0.0

    def test_consistency_along_edges(self, detour_network, landmarks):
        """h(x) <= w(x,y) + h(y) for every edge and sampled target."""
        targets = random_locations(detour_network, 3, seed=13)
        for target in targets:
            for edge in detour_network.edges():
                hx = landmarks(edge.u, target)
                hy = landmarks(edge.v, target)
                assert hx <= edge.length + hy + 1e-9
                assert hy <= edge.length + hx + 1e-9

    def test_tighter_than_euclidean_on_detour_network(self, detour_network):
        lm = LandmarkHeuristic(detour_network, count=6, seed=15)
        euclid, landmark = lm.tightness_sample(pairs=25, seed=16)
        assert landmark > euclid


class TestSearchIntegration:
    def test_astar_with_landmarks_is_exact(self, detour_network, landmarks):
        source = random_locations(detour_network, 1, seed=17)[0]
        plain = AStarExpander(detour_network, source)
        guided = AStarExpander(detour_network, source, heuristic=landmarks)
        for target in random_locations(detour_network, 8, seed=18):
            assert guided.distance_to(target) == pytest.approx(
                plain.distance_to(target)
            )

    def test_astar_with_landmarks_settles_fewer_nodes(self, detour_network, landmarks):
        source = detour_network.location_at_node(0)
        targets = random_locations(detour_network, 10, seed=19)
        plain = AStarExpander(detour_network, source)
        guided = AStarExpander(detour_network, source, heuristic=landmarks)
        for target in targets:
            plain.distance_to(target)
            guided.distance_to(target)
        assert guided.nodes_settled <= plain.nodes_settled

    def test_plb_still_monotone_with_landmarks(self, detour_network, landmarks):
        source = detour_network.location_at_node(1)
        expander = AStarExpander(detour_network, source, heuristic=landmarks)
        for target in random_locations(detour_network, 4, seed=21):
            search = expander.search_toward(target)
            previous = search.plb
            while not search.done:
                current = search.expand_step()
                assert current >= previous - 1e-12
                previous = current
            truth = DijkstraExpander(detour_network, source).distance_to(target)
            assert search.distance == pytest.approx(truth)

    def test_lbc_with_landmarks_matches_oracle(self, detour_network, landmarks):
        objects = place_random_objects(detour_network, 35, seed=23)
        workspace = Workspace.build(detour_network, objects, paged=False)
        queries = random_locations(detour_network, 3, seed=24)
        reference = NaiveSkyline().run(workspace, queries)
        result = LBC(heuristic=landmarks).run(workspace, queries)
        assert result.same_answer(reference)

    def test_lbc_with_landmarks_cheaper_on_sparse_preset(self):
        from repro.datasets import build_preset, extract_objects, select_query_points

        network = build_preset("CA", scale=0.3)
        objects = extract_objects(network, omega=0.5, seed=1)
        workspace = Workspace.build(network, objects, paged=False)
        queries = select_query_points(network, 4, seed=5)
        lm = LandmarkHeuristic(network, count=8, seed=1)
        plain = LBC().run(workspace, queries)
        guided = LBC(heuristic=lm).run(workspace, queries)
        assert guided.same_answer(plain)
        assert guided.stats.nodes_settled <= plain.stats.nodes_settled
