"""Planar geometry primitives shared by the indexes and the road network.

Public surface:

* :class:`~repro.geometry.point.Point` — immutable 2-D point.
* :class:`~repro.geometry.segment.Segment` — line segment with projection.
* :class:`~repro.geometry.polyline.Polyline` — multi-segment edge geometry.
* :class:`~repro.geometry.mbr.MBR` — axis-aligned rectangle with the
  ``mindist`` bound used throughout the R-tree-based algorithms.
"""

from repro.geometry.mbr import MBR
from repro.geometry.point import (
    ORIGIN,
    Point,
    bounding_coordinates,
    centroid,
    euclidean,
    total_path_length,
)
from repro.geometry.polyline import Polyline
from repro.geometry.segment import Segment

__all__ = [
    "MBR",
    "ORIGIN",
    "Point",
    "Polyline",
    "Segment",
    "bounding_coordinates",
    "centroid",
    "euclidean",
    "total_path_length",
]
