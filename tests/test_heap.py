"""Unit and property tests for the addressable min-heap."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.index import AddressableHeap


class TestHeapBasics:
    def test_push_pop_single(self):
        heap = AddressableHeap()
        heap.push("a", 3.0)
        assert heap.pop() == ("a", 3.0)
        assert len(heap) == 0

    def test_pop_order(self):
        heap = AddressableHeap()
        for item, priority in [("c", 3), ("a", 1), ("b", 2)]:
            heap.push(item, priority)
        assert [heap.pop()[0] for _ in range(3)] == ["a", "b", "c"]

    def test_ties_pop_in_insertion_order(self):
        heap = AddressableHeap()
        heap.push("first", 1.0)
        heap.push("second", 1.0)
        assert heap.pop()[0] == "first"
        assert heap.pop()[0] == "second"

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            AddressableHeap().pop()

    def test_peek_does_not_remove(self):
        heap = AddressableHeap()
        heap.push("a", 1.0)
        assert heap.peek() == ("a", 1.0)
        assert len(heap) == 1

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            AddressableHeap().peek()

    def test_min_priority(self):
        heap = AddressableHeap()
        heap.push("a", 5.0)
        heap.push("b", 2.0)
        assert heap.min_priority() == 2.0

    def test_contains_and_priority_of(self):
        heap = AddressableHeap()
        heap.push("a", 1.5)
        assert "a" in heap
        assert "b" not in heap
        assert heap.priority_of("a") == 1.5

    def test_duplicate_push_raises(self):
        heap = AddressableHeap()
        heap.push("a", 1.0)
        with pytest.raises(KeyError):
            heap.push("a", 2.0)

    def test_clear(self):
        heap = AddressableHeap()
        heap.push("a", 1.0)
        heap.clear()
        assert not heap
        assert "a" not in heap


class TestHeapUpdates:
    def test_decrease_key_reorders(self):
        heap = AddressableHeap()
        heap.push("a", 5.0)
        heap.push("b", 3.0)
        heap.decrease_key("a", 1.0)
        assert heap.pop() == ("a", 1.0)

    def test_decrease_key_refuses_increase(self):
        heap = AddressableHeap()
        heap.push("a", 1.0)
        with pytest.raises(ValueError):
            heap.decrease_key("a", 2.0)

    def test_update_can_increase(self):
        heap = AddressableHeap()
        heap.push("a", 1.0)
        heap.push("b", 2.0)
        heap.update("a", 3.0)
        assert heap.pop()[0] == "b"

    def test_update_inserts_missing(self):
        heap = AddressableHeap()
        heap.update("a", 1.0)
        assert heap.pop() == ("a", 1.0)

    def test_push_or_decrease_semantics(self):
        heap = AddressableHeap()
        assert heap.push_or_decrease("a", 5.0)
        assert heap.push_or_decrease("a", 3.0)
        assert not heap.push_or_decrease("a", 4.0)  # worse: ignored
        assert heap.priority_of("a") == 3.0

    def test_remove_arbitrary(self):
        heap = AddressableHeap()
        for item, priority in [("a", 1), ("b", 2), ("c", 3)]:
            heap.push(item, priority)
        assert heap.remove("b") == 2
        assert "b" not in heap
        assert [heap.pop()[0] for _ in range(2)] == ["a", "c"]

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            AddressableHeap().remove("x")

    def test_items_iterates_everything(self):
        heap = AddressableHeap()
        heap.push("a", 1.0)
        heap.push("b", 2.0)
        assert dict(heap.items()) == {"a": 1.0, "b": 2.0}


class TestFromItems:
    def test_heapify_matches_pushes(self):
        rng = random.Random(3)
        pairs = [(i, rng.random()) for i in range(200)]
        heap = AddressableHeap.from_items(pairs)
        heap.validate()
        reference = AddressableHeap()
        for item, priority in pairs:
            reference.push(item, priority)
        got = [heap.pop() for _ in range(len(pairs))]
        expected = [reference.pop() for _ in range(len(pairs))]
        assert [g[1] for g in got] == [e[1] for e in expected]

    def test_duplicate_items_rejected(self):
        with pytest.raises(KeyError):
            AddressableHeap.from_items([("a", 1.0), ("a", 2.0)])

    def test_empty(self):
        heap = AddressableHeap.from_items([])
        assert not heap


@st.composite
def operation_sequences(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    ops = []
    for _ in range(n):
        ops.append(
            draw(
                st.tuples(
                    st.sampled_from(["push", "pop", "update", "remove"]),
                    st.integers(min_value=0, max_value=10),
                    st.floats(min_value=-100, max_value=100, allow_nan=False),
                )
            )
        )
    return ops


class TestHeapProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)))
    def test_heapsort_matches_sorted(self, values):
        heap = AddressableHeap()
        for i, value in enumerate(values):
            heap.push(i, value)
        drained = [heap.pop()[1] for _ in range(len(values))]
        assert drained == sorted(values)

    @given(operation_sequences())
    def test_random_operations_keep_invariants(self, ops):
        heap = AddressableHeap()
        model = {}
        for op, key, value in ops:
            if op == "push" and key not in model:
                heap.push(key, value)
                model[key] = value
            elif op == "update":
                heap.update(key, value)
                model[key] = value
            elif op == "remove" and key in model:
                heap.remove(key)
                del model[key]
            elif op == "pop" and model:
                item, priority = heap.pop()
                assert priority == min(model.values())
                assert model[item] == priority
                del model[item]
            heap.validate()
        assert len(heap) == len(model)
