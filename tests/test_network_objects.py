"""Unit tests for ObjectSet / SpatialObject and the middle layer."""

import pytest

from repro.network import (
    InMemoryPlacements,
    MiddleLayer,
    ObjectSet,
    SpatialObject,
)
from repro.storage import NodePager

from conftest import build_random_network, place_random_objects


def object_on(network, edge_index, fraction, object_id=0, attributes=()):
    edge = list(network.edges())[edge_index]
    location = network.location_on_edge(edge.edge_id, edge.length * fraction)
    return SpatialObject(object_id, location, attributes)


class TestObjectSet:
    def test_build_and_lookup(self, tiny_network):
        obj = object_on(tiny_network, 0, 0.5)
        objects = ObjectSet.build(tiny_network, [obj])
        assert len(objects) == 1
        assert objects.get(0) is obj
        assert 0 in objects
        assert 1 not in objects

    def test_duplicate_ids_rejected(self, tiny_network):
        a = object_on(tiny_network, 0, 0.3, object_id=1)
        b = object_on(tiny_network, 1, 0.3, object_id=1)
        with pytest.raises(ValueError):
            ObjectSet.build(tiny_network, [a, b])

    def test_negative_attribute_rejected(self, tiny_network):
        obj = object_on(tiny_network, 0, 0.5, attributes=(-1.0,))
        with pytest.raises(ValueError):
            ObjectSet.build(tiny_network, [obj])

    def test_on_edge_index(self, tiny_network):
        a = object_on(tiny_network, 0, 0.3, object_id=0)
        b = object_on(tiny_network, 0, 0.7, object_id=1)
        c = object_on(tiny_network, 2, 0.5, object_id=2)
        objects = ObjectSet.build(tiny_network, [a, b, c])
        edge0 = list(tiny_network.edges())[0].edge_id
        assert {o.object_id for o in objects.on_edge(edge0)} == {0, 1}
        assert objects.on_edge(99999) == []

    def test_node_resident_objects(self, tiny_network):
        loc = tiny_network.location_at_node(4)
        objects = ObjectSet.build(tiny_network, [SpatialObject(0, loc)])
        assert [o.object_id for o in objects.at_node(4)] == [0]
        assert objects.at_node(0) == []

    def test_attribute_count(self, tiny_network):
        obj = object_on(tiny_network, 0, 0.5, attributes=(1.0, 2.0))
        objects = ObjectSet.build(tiny_network, [obj])
        assert objects.attribute_count == 2
        assert ObjectSet.build(tiny_network, []).attribute_count == 0

    def test_inconsistent_attributes_detected(self, tiny_network):
        a = object_on(tiny_network, 0, 0.3, object_id=0, attributes=(1.0,))
        b = object_on(tiny_network, 1, 0.3, object_id=1)
        objects = ObjectSet.build(tiny_network, [a, b])
        with pytest.raises(ValueError):
            objects.validate_uniform_attributes()

    def test_rtree_contains_all_objects(self):
        network = build_random_network(40, 20, seed=9)
        objects = place_random_objects(network, 30, seed=10)
        tree = objects.build_rtree(max_entries=4)
        tree.validate()
        ids = sorted(o.object_id for _, o in tree.all_entries())
        assert ids == list(range(30))

    def test_point_property(self, tiny_network):
        obj = object_on(tiny_network, 0, 0.5)
        assert obj.point == obj.location.point


class TestMiddleLayer:
    def test_placements_for_edge_objects(self, tiny_network):
        obj = object_on(tiny_network, 0, 0.4)
        objects = ObjectSet.build(tiny_network, [obj])
        layer = MiddleLayer.build(objects)
        edge = list(tiny_network.edges())[0]
        placements = layer.objects_on(edge.edge_id)
        assert len(placements) == 1
        placement = placements[0]
        assert placement.dist_from_u == pytest.approx(edge.length * 0.4)
        assert placement.dist_from_v == pytest.approx(edge.length * 0.6)
        assert (
            placement.dist_from_u + placement.dist_from_v
            == pytest.approx(edge.length)
        )

    def test_distance_from_either_end(self, tiny_network):
        obj = object_on(tiny_network, 0, 0.25)
        objects = ObjectSet.build(tiny_network, [obj])
        layer = MiddleLayer.build(objects)
        edge = list(tiny_network.edges())[0]
        placement = layer.objects_on(edge.edge_id)[0]
        assert placement.distance_from(edge.u, tiny_network) == pytest.approx(
            edge.length * 0.25
        )
        assert placement.distance_from(edge.v, tiny_network) == pytest.approx(
            edge.length * 0.75
        )
        with pytest.raises(ValueError):
            placement.distance_from(9999, tiny_network)

    def test_node_object_attached_to_every_incident_edge(self, tiny_network):
        loc = tiny_network.location_at_node(1)  # degree 3
        objects = ObjectSet.build(tiny_network, [SpatialObject(0, loc)])
        layer = MiddleLayer.build(objects)
        attached = 0
        for edge in tiny_network.edges():
            for placement in layer.objects_on(edge.edge_id):
                attached += 1
                assert placement.distance_from(1, tiny_network) == 0.0
        assert attached == 3
        assert layer.placement_count == 3

    def test_empty_edge_returns_nothing(self, tiny_network):
        objects = ObjectSet.build(tiny_network, [])
        layer = MiddleLayer.build(objects)
        assert layer.objects_on(list(tiny_network.edges())[0].edge_id) == []
        assert not layer.has_objects(list(tiny_network.edges())[0].edge_id)

    def test_probe_counting(self, tiny_network):
        objects = ObjectSet.build(tiny_network, [object_on(tiny_network, 0, 0.5)])
        layer = MiddleLayer.build(objects)
        edge_id = list(tiny_network.edges())[0].edge_id
        layer.objects_on(edge_id)
        layer.has_objects(edge_id)
        assert layer.probe_count == 2

    def test_paged_layer_charges_io(self):
        network = build_random_network(60, 30, seed=11)
        objects = place_random_objects(network, 100, seed=12)
        pager = NodePager()
        layer = MiddleLayer.build(objects, order=8, pager=pager)
        pager.pool.reset_stats()
        for edge_id in list(network.edge_ids())[:20]:
            layer.objects_on(edge_id)
        assert pager.stats.logical_reads > 0
        assert layer.stats is pager.stats

    def test_in_memory_placements_match_middle_layer(self):
        network = build_random_network(50, 25, seed=13)
        objects = place_random_objects(network, 60, seed=14)
        layer = MiddleLayer.build(objects)
        memory = InMemoryPlacements(objects)
        for edge_id in network.edge_ids():
            from_layer = sorted(
                (p.obj.object_id, round(p.dist_from_u, 9))
                for p in layer.objects_on(edge_id)
            )
            from_memory = sorted(
                (p.obj.object_id, round(p.dist_from_u, 9))
                for p in memory.objects_on(edge_id)
            )
            assert from_layer == from_memory
