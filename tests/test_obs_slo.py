"""SLO burn-rate monitor: deterministic burn math under a fake clock,
histogram bridging, and the service-level /sloz flip under an injected
latency regression."""

from __future__ import annotations

import threading
import time

import pytest

from conftest import build_random_network, place_random_objects
from repro.core import Workspace
from repro.core.result import SkylineResult
from repro.core.stats import QueryStats
from repro.obs import tracing
from repro.obs.metrics import Histogram
from repro.obs.slo import (
    DEFAULT_WINDOWS,
    BurnWindow,
    Objective,
    SLOMonitor,
    histogram_good_total,
)
from repro.service import QueryService, ServiceHTTPServer
from repro.service.service import SERVICE_ALGORITHMS


class TestObjective:
    def test_error_budget(self):
        objective = Objective("latency", target=0.99, threshold_s=0.25)
        assert objective.error_budget == pytest.approx(0.01)
        assert objective.to_dict()["threshold_s"] == 0.25

    @pytest.mark.parametrize("target", [0.0, 1.0, -1.0, 2.0])
    def test_target_must_be_a_fraction(self, target):
        with pytest.raises(ValueError):
            Objective("latency", target=target)

    def test_default_windows_are_long_short_pairs(self):
        for window in DEFAULT_WINDOWS:
            assert window.long_s > window.short_s
            assert window.max_burn > 1.0


class FakeSource:
    """Cumulative (good, total) counters the tests drive by hand."""

    def __init__(self):
        self.good = 0.0
        self.total = 0.0

    def arrive(self, good: float, bad: float = 0.0) -> None:
        self.good += good
        self.total += good + bad

    def __call__(self):
        return self.good, self.total


def make_monitor(windows=(BurnWindow(100.0, 10.0, 2.0),), target=0.9):
    clock = [0.0]
    source = FakeSource()
    monitor = SLOMonitor(windows=windows, clock=lambda: clock[0])
    monitor.add_objective(Objective("latency", target=target), source)
    return monitor, source, clock


class TestBurnMath:
    def test_no_traffic_is_not_an_outage(self):
        monitor, _, clock = make_monitor()
        clock[0] = 50.0
        report = monitor.report()
        assert report["violating"] is False
        assert monitor.burn_rate("latency", 100.0) == 0.0

    def test_healthy_traffic_has_zero_burn(self):
        monitor, source, clock = make_monitor()
        clock[0] = 5.0
        source.arrive(good=100)
        monitor.observe()
        clock[0] = 6.0
        report = monitor.report()
        (objective,) = report["objectives"]
        assert objective["compliance"] == 1.0
        assert objective["violating"] is False
        for window in objective["windows"]:
            assert window["long_burn"] == 0.0
            assert window["short_burn"] == 0.0

    def test_regression_flips_both_windows(self):
        monitor, source, clock = make_monitor()
        clock[0] = 5.0
        source.arrive(good=100)
        monitor.observe()
        clock[0] = 10.0
        source.arrive(good=0, bad=100)  # 50% of all traffic now bad
        monitor.observe()
        clock[0] = 11.0
        report = monitor.report()
        (objective,) = report["objectives"]
        (window,) = objective["windows"]
        # error budget is 0.1; half the traffic bad => burn 5.0 >= 2.0
        assert window["long_burn"] == pytest.approx(5.0)
        assert window["short_burn"] >= 2.0
        assert window["violating"] is True
        assert report["violating"] is True

    def test_short_window_resets_after_recovery(self):
        monitor, source, clock = make_monitor()
        clock[0] = 5.0
        source.arrive(good=100)
        monitor.observe()
        clock[0] = 10.0
        source.arrive(good=0, bad=100)
        monitor.observe()
        clock[0] = 30.0
        source.arrive(good=200)  # regression over: fresh traffic is good
        monitor.observe()
        clock[0] = 31.0
        report = monitor.report()
        (objective,) = report["objectives"]
        (window,) = objective["windows"]
        # Long window still remembers the incident...
        assert window["long_burn"] >= 2.0
        # ...but the short window proves it stopped, so no violation.
        assert window["short_burn"] < 2.0
        assert window["violating"] is False
        assert report["violating"] is False

    def test_history_is_trimmed_to_the_longest_window(self):
        monitor, source, clock = make_monitor()
        for step in range(1, 300):
            clock[0] = float(step)
            source.arrive(good=1)
            monitor.observe()
        tracked = monitor._tracked["latency"]
        # One baseline older than the 100s horizon, plus the window.
        assert len(tracked.history) < 120
        assert tracked.history[0].at <= clock[0] - 100.0

    def test_duplicate_objective_rejected(self):
        monitor, source, _ = make_monitor()
        with pytest.raises(ValueError):
            monitor.add_objective(Objective("latency", target=0.5), source)


class TestHistogramBridge:
    def test_good_is_the_cumulative_count_at_the_threshold_bucket(self):
        histogram = Histogram(buckets=(0.1, 0.25, 1.0))
        for value in (0.05, 0.2, 0.5, 3.0):
            histogram.observe(value)
        good, total = histogram_good_total(histogram, 0.25)
        assert (good, total) == (2.0, 4.0)
        good, total = histogram_good_total(histogram, 0.1)
        assert (good, total) == (1.0, 4.0)

    def test_threshold_between_buckets_rounds_up(self):
        histogram = Histogram(buckets=(0.1, 0.25, 1.0))
        histogram.observe(0.2)
        good, _ = histogram_good_total(histogram, 0.15)  # uses the 0.25 bucket
        assert good == 1.0

    def test_threshold_beyond_all_buckets_counts_everything(self):
        histogram = Histogram(buckets=(0.1,))
        histogram.observe(5.0)
        assert histogram_good_total(histogram, 99.0) == (1.0, 1.0)


class MolassesAlgorithm:
    """Injected latency regression: every query takes ~0.4s."""

    name = "molasses"

    def run(self, workspace, queries):
        with tracing.span("query.molasses") as root:
            time.sleep(0.4)
        stats = QueryStats(algorithm=self.name, trace_id=root.trace_id)
        return SkylineResult(points=[], stats=stats, trace=root)


@pytest.fixture
def slo_service():
    network = build_random_network(80, 40, seed=31)
    objects = place_random_objects(network, 15, seed=32)
    workspace = Workspace.build(network, objects, distance_backend="astar")
    # One cumulative window (longer than the test) so the verdict is
    # deterministic: burn is computed over everything that happened.
    service = QueryService(
        workspace,
        workers=2,
        batch_window_s=0.0,
        algorithms={**SERVICE_ALGORITHMS, "molasses": MolassesAlgorithm},
        slo_windows=(BurnWindow(3600.0, 3600.0, 1.0),),
        slo_latency_target=0.5,
        slo_latency_threshold_s=0.25,
    )
    try:
        yield service
    finally:
        service.close()


class TestServiceSLOFlip:
    def test_latency_regression_flips_sloz_to_violating(self, slo_service):
        service = slo_service
        network = service.workspace.network
        nodes = sorted(network.node_ids())
        locations = [network.location_at_node(n) for n in nodes[:2]]

        for _ in range(4):
            service.query("LBC", locations)
        report = service.slo_report()
        latency = next(
            o for o in report["objectives"] if o["name"] == "latency"
        )
        assert latency["violating"] is False
        assert report["violating"] is False

        # Inject the regression: most traffic now blows the threshold.
        for _ in range(6):
            service.query("molasses", locations)
        report = service.slo_report()
        latency = next(
            o for o in report["objectives"] if o["name"] == "latency"
        )
        (window,) = latency["windows"]
        # 6 of 10 queries bad, error budget 0.5 => burn 1.2 >= 1.0.
        assert latency["total"] == 10.0
        assert window["long_burn"] >= 1.0
        assert latency["violating"] is True
        assert report["violating"] is True
        # The availability objective is unaffected by slowness.
        availability = next(
            o for o in report["objectives"] if o["name"] == "availability"
        )
        assert availability["violating"] is False

    def test_sloz_endpoint_serves_the_same_verdict(self, slo_service):
        import json
        import urllib.request

        service = slo_service
        network = service.workspace.network
        locations = [
            network.location_at_node(sorted(network.node_ids())[0])
        ]
        for _ in range(2):
            service.query("molasses", locations)
        http_server = ServiceHTTPServer(("127.0.0.1", 0), service)
        thread = threading.Thread(
            target=http_server.serve_forever, daemon=True
        )
        thread.start()
        try:
            with urllib.request.urlopen(
                http_server.url + "/sloz", timeout=30
            ) as response:
                payload = json.loads(response.read())
        finally:
            http_server.shutdown()
            http_server.server_close()
            thread.join(timeout=10)
        assert payload["violating"] is True
        latency = next(
            o for o in payload["objectives"] if o["name"] == "latency"
        )
        assert latency["windows"][0]["long_burn"] >= 1.0
