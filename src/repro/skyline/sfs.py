"""Sort-Filter-Skyline (Chomicki, Godfrey, Gryz, Liang; ICDE 2003).

SFS improves BNL by pre-sorting tuples with a monotone preference
function (here: the sum of the vector's components, any monotone score
works).  After sorting, a tuple can only be dominated by tuples *before*
it, so one pass comparing against the confirmed skyline suffices and
results stream progressively in score order.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from repro.columnar import kernels
from repro.columnar.store import VectorTable
from repro.obs import tracing
from repro.skyline.dominance import Vector, dominates


def sfs_skyline(
    vectors: Sequence[Vector],
    score: Callable[[Vector], float] | None = None,
) -> list[int]:
    """Indices of skyline members, computed with SFS.

    ``score`` must be strictly monotone in dominance: ``a`` dominating
    ``b`` implies ``score(a) < score(b)``.  The default — component sum
    — has that property, and that path is a thin view over the columnar
    block kernel (:func:`sfs_skyline_block`); a custom score keeps the
    scalar generator.
    """
    if score is not None:
        return list(sfs_skyline_progressive(vectors, score))
    if not vectors:
        return []
    if len(vectors[0]) == 0:
        return list(sfs_skyline_progressive(vectors, None))
    return sfs_skyline_block(VectorTable.from_vectors(vectors))


def sfs_skyline_block(table: VectorTable) -> list[int]:
    """Block SFS: skyline row indices of a column block, in preference
    (component-sum) order — the order the scalar SFS confirms them in."""
    with tracing.span("columnar.skyline"):
        return kernels.block_skyline(table.data, len(table), table.width)


def sfs_skyline_progressive(
    vectors: Sequence[Vector],
    score: Callable[[Vector], float] | None = None,
) -> Iterator[int]:
    """SFS as a generator, yielding indices in preference order."""
    if score is None:
        score = _component_sum
    order = sorted(range(len(vectors)), key=lambda i: (score(vectors[i]), i))
    skyline: list[int] = []
    for i in order:
        candidate = vectors[i]
        if not any(dominates(vectors[j], candidate) for j in skyline):
            skyline.append(i)
            yield i


def _component_sum(vector: Vector) -> float:
    return sum(vector)
