"""Concurrency correctness: snapshot isolation and locked shared state.

The headline property: N reader threads issuing skyline queries while
a writer mutates edge weights must never observe a *torn* snapshot —
every answer equals the ground truth of either the pre-mutation or the
post-mutation network, never a mixture.  Plus targeted stress for the
two locked structures (engine memo/pool, buffer pool hit/miss
accounting) whose unguarded versions lose updates.
"""

from __future__ import annotations

import threading

import pytest

from conftest import build_random_network, place_random_objects
from repro.core import LBC, Workspace
from repro.service import QueryService
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager


def build_workspace(seed_offset: int = 0, edge_scale: float | None = None):
    network = build_random_network(120, 90, seed=31, detour_max=0.6)
    objects = place_random_objects(network, 40, seed=32, attribute_count=2)
    workspace = Workspace.build(network, objects, distance_backend="astar")
    if edge_scale is not None:
        edge_id = sorted(network.edge_ids())[5]
        workspace.update_edge_length(
            edge_id, network.edge(edge_id).length * edge_scale
        )
    return workspace


class TestMutationQueryInterleaving:
    """Satellite: readers under a concurrent writer see no torn state."""

    EDGE_SCALE = 4.0  # mutation: stretch one edge to 4x its length
    QUERY_NODES = (3, 40, 77)
    READERS = 4
    QUERIES_PER_READER = 6

    def test_answers_match_pre_or_post_mutation_ground_truth(self):
        # Ground truths from two fresh, identical workspaces.
        reference_before = None
        reference_after = None
        for scale, bucket in ((None, "before"), (self.EDGE_SCALE, "after")):
            workspace = build_workspace(edge_scale=scale)
            queries = [
                workspace.network.location_at_node(n)
                for n in self.QUERY_NODES
            ]
            result = LBC().run(workspace, queries)
            if bucket == "before":
                reference_before = result
            else:
                reference_after = result
        # The mutation must actually change the answer vectors,
        # otherwise this test cannot detect a torn snapshot.
        assert not reference_before.same_answer(reference_after)

        workspace = build_workspace()
        network = workspace.network
        queries = [network.location_at_node(n) for n in self.QUERY_NODES]
        edge_id = sorted(network.edge_ids())[5]
        new_length = network.edge(edge_id).length * self.EDGE_SCALE

        outcomes: list = []
        errors: list = []
        start = threading.Barrier(self.READERS + 1)

        with QueryService(workspace, workers=self.READERS) as service:

            def reader():
                start.wait()
                for i in range(self.QUERIES_PER_READER):
                    try:
                        algorithm = ("LBC", "EDC", "CE")[i % 3]
                        outcomes.append(
                            service.query(algorithm, queries, timeout_s=60)
                        )
                    except Exception as exc:  # fail the test, not the thread
                        errors.append(exc)

            def writer():
                start.wait()
                # Mutate midway through the read storm.
                service.update_edge_length(edge_id, new_length)

            threads = [
                threading.Thread(target=reader)
                for _ in range(self.READERS)
            ]
            threads.append(threading.Thread(target=writer))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
                assert not thread.is_alive(), "worker wedged"

        assert not errors, errors
        assert len(outcomes) == self.READERS * self.QUERIES_PER_READER
        matched_before = matched_after = 0
        for result in outcomes:
            if result.same_answer(reference_before):
                matched_before += 1
            elif result.same_answer(reference_after):
                matched_after += 1
            else:
                pytest.fail(
                    "torn snapshot: answer matches neither pre- nor "
                    f"post-mutation ground truth: {result.object_ids()}"
                )
        # The mutation happened once, so at least one side was observed.
        assert matched_before + matched_after == len(outcomes)
        assert matched_after >= 1  # queries after the mutation see it


class TestEngineThreadSafety:
    """Satellite: the memo LRU and expander pool survive concurrency."""

    def test_concurrent_distinct_source_distances_are_exact(self):
        workspace = build_workspace()
        network = workspace.network
        engine = workspace.engine
        node_ids = sorted(network.node_ids())
        sources = node_ids[:16]
        targets = node_ids[40:56]

        # Sequential ground truth on a fresh workspace.
        reference = {}
        fresh = build_workspace()
        for s in sources:
            for t in targets:
                reference[(s, t)] = fresh.engine.distance(
                    fresh.network.location_at_node(s),
                    fresh.network.location_at_node(t),
                )

        results: dict = {}
        errors: list = []
        lock = threading.Lock()

        def hammer(source_slice):
            try:
                for s in source_slice:
                    for t in targets:
                        d = engine.distance(
                            network.location_at_node(s),
                            network.location_at_node(t),
                        )
                        with lock:
                            results[(s, t)] = d
            except Exception as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(sources[i::4],))
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors
        for key, expected in reference.items():
            assert results[key] == pytest.approx(expected)

    def test_memo_lru_structure_survives_hammering(self):
        """Tiny capacity forces constant eviction under contention."""
        from repro.engine.cache import DistanceMemo

        memo = DistanceMemo(capacity=8)
        errors: list = []

        def churn(offset):
            try:
                for i in range(2000):
                    key = ((offset + i) % 32,)
                    memo.put(key, float(i))
                    memo.get(((offset + i + 1) % 32,))
            except Exception as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=churn, args=(i * 7,)) for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        assert len(memo) <= 8
        counters = memo.counters
        assert counters.hits + counters.misses == 6 * 2000


class TestBufferPoolThreadSafety:
    """Satellite: hit/miss accounting loses no updates under threads."""

    THREADS = 6
    FETCHES_PER_THREAD = 3000

    def test_logical_reads_are_exact_under_concurrency(self):
        disk = DiskManager(page_size=128)
        pages = [disk.allocate().page_id for _ in range(64)]
        pool = BufferPool(disk, capacity_bytes=128 * 16)  # 16 frames
        errors: list = []

        def churn(seed):
            try:
                state = seed
                for _ in range(self.FETCHES_PER_THREAD):
                    state = (state * 1103515245 + 12345) & 0x7FFFFFFF
                    pool.fetch(pages[state % len(pages)])
            except Exception as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=churn, args=(i + 1,))
            for i in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors
        # The lost-update bug makes this undercount; the lock makes it
        # exact: every fetch is one logical read, hits + misses.
        assert pool.stats.logical_reads == self.THREADS * self.FETCHES_PER_THREAD
        assert pool.stats.physical_reads >= len(pages) - 16
        assert pool.resident_count <= 16
