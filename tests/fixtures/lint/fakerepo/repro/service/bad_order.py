"""Seeded two-lock ordering cycle: one() takes a then b, two() takes
b then a — interleaved threads deadlock."""

import threading


class BadOrdering:
    def __init__(self):
        self._alock = threading.Lock()
        self._block = threading.Lock()

    def one(self):
        with self._alock:
            with self._block:  # EXPECT: REPRO-ORDER01
                return 1

    def two(self):
        with self._block:
            with self._alock:  # EXPECT: REPRO-ORDER01
                return 2
