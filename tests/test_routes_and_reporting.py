"""Tests for route retrieval and figure CSV export."""

import pytest

from repro.experiments.figures import FigureSeries
from repro.experiments.reporting import (
    format_series,
    series_to_csv,
    winner_summary,
    write_series_csv,
)
from repro.geometry import Point
from repro.network import RoadNetwork, network_distance, route_to

from conftest import random_locations


class TestRouteTo:
    def test_route_endpoints(self, medium_network):
        a = medium_network.location_at_node(0)
        b = medium_network.location_at_node(30)
        distance, route = route_to(medium_network, a, b)
        assert route[0] == a
        assert route[-1].node_id == 30
        assert distance == pytest.approx(network_distance(medium_network, a, b))

    def test_route_length_matches_distance(self, medium_network):
        """Summing the legs along the route reproduces the distance."""
        a = medium_network.location_at_node(5)
        b = medium_network.location_at_node(40)
        distance, route = route_to(medium_network, a, b)
        total = 0.0
        for u, v in zip(route, route[1:]):
            total += network_distance(medium_network, u, v)
        assert total == pytest.approx(distance)

    def test_consecutive_route_nodes_adjacent(self, medium_network):
        a = medium_network.location_at_node(2)
        b = medium_network.location_at_node(33)
        _, route = route_to(medium_network, a, b)
        junctions = [loc.node_id for loc in route if loc.node_id is not None]
        for u, v in zip(junctions, junctions[1:]):
            assert any(nbr == v for nbr, _ in medium_network.neighbors(u))

    def test_on_edge_destination(self, medium_network):
        a = medium_network.location_at_node(0)
        b = random_locations(medium_network, 1, seed=500)[0]
        distance, route = route_to(medium_network, a, b)
        assert route[-1] == b
        assert distance == pytest.approx(network_distance(medium_network, a, b))

    def test_same_edge_shortcut_route(self, tiny_network):
        edge = next(iter(tiny_network.edges()))
        a = tiny_network.location_on_edge(edge.edge_id, 0.1)
        b = tiny_network.location_on_edge(edge.edge_id, 0.4)
        distance, route = route_to(tiny_network, a, b)
        assert distance == pytest.approx(0.3)
        assert route == [a, b]

    def test_unreachable_raises(self):
        net = RoadNetwork()
        net.add_node(0, Point(0, 0))
        net.add_node(1, Point(1, 1))
        with pytest.raises(ValueError):
            route_to(net, net.location_at_node(0), net.location_at_node(1))

    def test_route_to_self(self, medium_network):
        a = medium_network.location_at_node(7)
        distance, route = route_to(medium_network, a, a)
        assert distance == 0.0
        assert route[0] == a


class TestCSVExport:
    def _series(self):
        return FigureSeries(
            figure="Fig5a",
            title="pages vs density",
            x_label="network",
            y_label="pages",
            x_values=["CA", "NA"],
            series={"CE": [4.5, 131.0], "LBC": [4.0, 30.0]},
        )

    def test_csv_shape(self):
        text = series_to_csv(self._series())
        lines = text.strip().split("\n")
        assert lines[0] == "network,CE,LBC"
        assert lines[1].startswith("CA,")
        assert len(lines) == 3

    def test_csv_values_parse_back(self):
        text = series_to_csv(self._series())
        row = text.strip().split("\n")[2].split(",")
        assert row[0] == "NA"
        assert float(row[1]) == 131.0
        assert float(row[2]) == 30.0

    def test_write_csv(self, tmp_path):
        path = tmp_path / "fig.csv"
        write_series_csv(self._series(), path)
        assert path.read_text().startswith("network,CE,LBC")

    def test_format_series_includes_values(self):
        text = format_series(self._series())
        assert "131" in text
        assert "CA" in text

    def test_winner_summary_counts_minima(self):
        assert winner_summary(self._series()) == {"CE": 0, "LBC": 2}
