"""Paper-scale fidelity check: the CA stand-in at its REAL size.

The paper's smallest dataset (California: 3 044 nodes, 3 607 edges) is
within pure-Python reach, so this test runs the full pipeline at
``scale=1.0`` — the one setting where our workload matches the paper's
dataset dimensions exactly — and asserts both correctness (all
algorithms agree) and the evaluation's CA-specific findings.

Marked ``slow``; runs in roughly half a minute.  Deselect with
``pytest -m "not slow"``.
"""

import pytest

from repro.core import CE, EDC, LBC, NaiveSkyline, Workspace
from repro.datasets import (
    build_preset,
    estimate_delta,
    extract_objects,
    select_query_points,
)

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def full_ca():
    network = build_preset("CA", scale=1.0, seed=7)
    objects = extract_objects(network, omega=0.5, seed=1)
    workspace = Workspace.build(network, objects, buffer_bytes=1024 * 1024)
    return network, workspace


class TestPaperScaleCA:
    def test_dimensions_match_paper(self, full_ca):
        network, _ = full_ca
        assert network.node_count == 3044
        assert network.edge_count == pytest.approx(3607, abs=5)

    def test_network_is_usable(self, full_ca):
        network, workspace = full_ca
        assert network.is_connected()
        assert len(workspace.objects) == pytest.approx(0.5 * network.edge_count, abs=2)

    def test_delta_is_large_on_sparse_network(self, full_ca):
        network, _ = full_ca
        delta = estimate_delta(network, sources=4, targets_per_source=25)
        assert delta > 1.5  # the sparse/high-δ regime the paper describes

    def test_all_algorithms_agree_at_paper_scale(self, full_ca):
        network, workspace = full_ca
        queries = select_query_points(network, 4, seed=11)
        reference = NaiveSkyline().run(workspace, queries)
        for algorithm in (CE(), EDC(), LBC()):
            workspace.reset_io(cold=True)
            result = algorithm.run(workspace, queries)
            assert result.same_answer(reference), algorithm.name

    def test_lbc_network_access_comparable_on_sparse_network(self, full_ca):
        """On the sparse, high-δ CA network LBC's Euclidean-guided
        candidate enumeration loses its edge (the paper's own Section 6
        finding: "with CA, LBC loses some efficiency due to the same
        reason as EDC") — step 1.2 computes the full source distance for
        every Euclidean NN pulled, and δ inflates how many that is.  We
        assert near-parity here; the strict N(LBC) <= N(CE) relation is
        asserted on denser networks in test_integration.py."""
        network, workspace = full_ca
        queries = select_query_points(network, 4, seed=13)
        costs = {}
        for algorithm in (CE(), LBC()):
            workspace.reset_io(cold=True)
            costs[algorithm.name] = algorithm.run(workspace, queries).stats
        assert (
            costs["LBC"].nodes_settled
            <= max(3 * costs["CE"].nodes_settled, network.node_count)
        )

    def test_lbc_initial_response_immediate(self, full_ca):
        network, workspace = full_ca
        queries = select_query_points(network, 4, seed=17)
        workspace.reset_io(cold=True)
        stats = LBC().run(workspace, queries).stats
        assert stats.initial_response_s < stats.total_response_s / 2


class TestLazyLBCAtPaperScale:
    """Our LBC-lazy extension repairs the sparse-network regression."""

    def test_lazy_beats_plain_lbc_on_sparse_network(self, full_ca):
        from repro.core import LBCLazy

        network, workspace = full_ca
        wins = 0
        for seed in (13, 17, 19):
            queries = select_query_points(network, 4, seed=seed)
            workspace.reset_io(cold=True)
            plain = LBC().run(workspace, queries)
            workspace.reset_io(cold=True)
            lazy = LBCLazy().run(workspace, queries)
            assert lazy.same_answer(plain)
            if lazy.stats.nodes_settled <= plain.stats.nodes_settled:
                wins += 1
        assert wins == 3

    def test_lazy_beats_ce_on_sparse_network(self, full_ca):
        from repro.core import LBCLazy

        network, workspace = full_ca
        wins = 0
        for seed in (13, 17, 19):
            queries = select_query_points(network, 4, seed=seed)
            workspace.reset_io(cold=True)
            ce = CE().run(workspace, queries)
            workspace.reset_io(cold=True)
            lazy = LBCLazy().run(workspace, queries)
            assert lazy.same_answer(ce)
            if lazy.stats.nodes_settled <= ce.stats.nodes_settled:
                wins += 1
        assert wins >= 2
