"""Seeded layering violation: storage reaching up into service."""

from repro.service import QueryService  # EXPECT: REPRO-ARCH01


def make_service(store):
    return QueryService(store)
