"""An R-tree built from scratch (Guttman insertion, STR bulk load).

The paper indexes both the data-object set and the network-edge MBRs
with R-trees.  Three traversal styles are needed:

* plain window queries (EDC step 3's hypercube-region retrieval);
* best-first incremental search with an arbitrary priority key — this
  yields single-point NN, the *aggregate* NN used by the Euclidean
  multi-source skyline (heap ordered by the sum of distances to all
  query points, Section 4.2), and LBC's constrained NN of the source
  query point (Section 4.3, step 1.1);
* the same best-first search with a caller-supplied *pruning* predicate,
  which is how dominance pruning against known skyline points skips
  whole subtrees.

All three are provided by one generic :meth:`RTree.best_first`; the
convenience wrappers (:meth:`nearest`, :meth:`aggregate_nearest`) build
on it.  An optional :class:`~repro.storage.binding.NodePager` charges a
page access per node visited.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.columnar.curve import hilbert_sort_indices
from repro.columnar.store import CoordinateColumns
from repro.geometry.mbr import MBR
from repro.geometry.point import Point
from repro.obs import tracing
from repro.storage.binding import NodePager

DEFAULT_MAX_ENTRIES = 32
"""Default node fanout; ~32 (MBR, pointer) entries fit a 4 KiB page."""


class _RTreeNode:
    """A node: leaf nodes store payload entries, internal nodes children."""

    __slots__ = ("entries", "is_leaf")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        # Leaf: list of (MBR, payload).  Internal: list of (MBR, _RTreeNode).
        self.entries: list[tuple[MBR, Any]] = []

    def mbr(self) -> MBR:
        return MBR.union_all(rect for rect, _ in self.entries)


class RTree:
    """A dynamic R-tree over ``(MBR, payload)`` entries."""

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        min_entries: int | None = None,
        pager: NodePager | None = None,
    ) -> None:
        if max_entries < 4:
            raise ValueError(f"max_entries must be >= 4, got {max_entries}")
        if min_entries is None:
            min_entries = max(2, max_entries * 2 // 5)
        if not 2 <= min_entries <= max_entries // 2:
            raise ValueError(
                f"min_entries must be in [2, {max_entries // 2}], got {min_entries}"
            )
        self._max = max_entries
        self._min = min_entries
        self._pager = pager
        self._root = _RTreeNode(is_leaf=True)
        self._size = 0
        if pager is not None:
            pager.register(id(self._root))

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def root_mbr(self) -> MBR | None:
        """Bounding box of everything indexed, None when empty."""
        if not self._root.entries:
            return None
        return self._root.mbr()

    def insert(self, mbr: MBR, payload: Any) -> None:
        """Insert one entry (Guttman: least-enlargement descent)."""
        split = self._insert_into(self._root, mbr, payload, self._leaf_level())
        if split is not None:
            left, right = split
            new_root = _RTreeNode(is_leaf=False)
            new_root.entries = [(left.mbr(), left), (right.mbr(), right)]
            self._root = new_root
            if self._pager is not None:
                self._pager.register(id(new_root))
        self._size += 1

    def insert_point(self, point: Point, payload: Any) -> None:
        """Insert a point entry (zero-area MBR)."""
        self.insert(MBR.from_point(point), payload)

    def _leaf_level(self) -> int:
        level = 0
        node = self._root
        while not node.is_leaf:
            node = node.entries[0][1]
            level += 1
        return level

    def _insert_into(
        self, node: _RTreeNode, mbr: MBR, payload: Any, levels_left: int
    ) -> tuple[_RTreeNode, _RTreeNode] | None:
        self._touch(node)
        if levels_left == 0:
            if not node.is_leaf:
                raise AssertionError("descended past the leaf level")
            node.entries.append((mbr, payload))
            if len(node.entries) > self._max:
                return self._split(node)
            return None

        best_index = self._choose_subtree(node, mbr)
        child = node.entries[best_index][1]
        split = self._insert_into(child, mbr, payload, levels_left - 1)
        if split is None:
            node.entries[best_index] = (
                node.entries[best_index][0].union(mbr),
                child,
            )
            return None
        left, right = split
        node.entries[best_index] = (left.mbr(), left)
        node.entries.append((right.mbr(), right))
        if len(node.entries) > self._max:
            return self._split(node)
        return None

    def _choose_subtree(self, node: _RTreeNode, mbr: MBR) -> int:
        best_index = 0
        best_enlargement = float("inf")
        best_area = float("inf")
        for i, (rect, _) in enumerate(node.entries):
            enlargement = rect.enlargement(mbr)
            area = rect.area
            if enlargement < best_enlargement or (
                enlargement == best_enlargement and area < best_area
            ):
                best_index = i
                best_enlargement = enlargement
                best_area = area
        return best_index

    def _split(self, node: _RTreeNode) -> tuple[_RTreeNode, _RTreeNode]:
        """Guttman's quadratic split."""
        entries = node.entries
        seed_a, seed_b = self._pick_seeds(entries)
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        mbr_a = entries[seed_a][0]
        mbr_b = entries[seed_b][0]
        remaining = [e for i, e in enumerate(entries) if i not in (seed_a, seed_b)]

        while remaining:
            # Force assignment when a group must take all leftovers to
            # reach the minimum fill.
            if len(group_a) + len(remaining) == self._min:
                for entry in remaining:
                    group_a.append(entry)
                    mbr_a = mbr_a.union(entry[0])
                remaining = []
                break
            if len(group_b) + len(remaining) == self._min:
                for entry in remaining:
                    group_b.append(entry)
                    mbr_b = mbr_b.union(entry[0])
                remaining = []
                break
            index, prefer_a = self._pick_next(remaining, mbr_a, mbr_b)
            entry = remaining.pop(index)
            if prefer_a:
                group_a.append(entry)
                mbr_a = mbr_a.union(entry[0])
            else:
                group_b.append(entry)
                mbr_b = mbr_b.union(entry[0])

        node.entries = group_a
        sibling = _RTreeNode(is_leaf=node.is_leaf)
        sibling.entries = group_b
        if self._pager is not None:
            self._pager.register(id(sibling))
        return (node, sibling)

    @staticmethod
    def _pick_seeds(entries: list[tuple[MBR, Any]]) -> tuple[int, int]:
        worst_pair = (0, 1)
        worst_waste = float("-inf")
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                combined = entries[i][0].union(entries[j][0])
                waste = combined.area - entries[i][0].area - entries[j][0].area
                if waste > worst_waste:
                    worst_waste = waste
                    worst_pair = (i, j)
        return worst_pair

    @staticmethod
    def _pick_next(
        remaining: list[tuple[MBR, Any]], mbr_a: MBR, mbr_b: MBR
    ) -> tuple[int, bool]:
        best_index = 0
        best_diff = float("-inf")
        prefer_a = True
        for i, (rect, _) in enumerate(remaining):
            cost_a = mbr_a.union(rect).area - mbr_a.area
            cost_b = mbr_b.union(rect).area - mbr_b.area
            diff = abs(cost_a - cost_b)
            if diff > best_diff:
                best_diff = diff
                best_index = i
                prefer_a = cost_a < cost_b
        return (best_index, prefer_a)

    # ------------------------------------------------------------------
    # Deletion (Guttman: find leaf, condense tree, reinsert orphans)
    # ------------------------------------------------------------------
    def delete(self, mbr: MBR, payload: Any) -> bool:
        """Remove the entry matching ``(mbr, payload)``; True if found.

        Under-full nodes along the path are dissolved and their leaf
        entries reinserted (the standard CondenseTree simplification:
        orphaned subtrees reinsert at leaf granularity).
        """
        path: list[tuple[_RTreeNode, int]] = []

        def find(node: _RTreeNode) -> bool:
            self._touch(node)
            if node.is_leaf:
                for i, (rect, item) in enumerate(node.entries):
                    if item == payload and rect == mbr:
                        path.append((node, i))
                        return True
                return False
            for i, (rect, child) in enumerate(node.entries):
                if rect.contains(mbr):
                    path.append((node, i))
                    if find(child):
                        return True
                    path.pop()
            return False

        if not self._root.entries or not find(self._root):
            return False

        leaf, entry_index = path[-1]
        del leaf.entries[entry_index]
        self._size -= 1

        # Condense: dissolve under-full non-root nodes bottom-up,
        # collecting the leaf entries beneath them for reinsertion.
        orphans: list[tuple[MBR, Any]] = []
        for depth in range(len(path) - 2, -1, -1):
            parent, child_index = path[depth]
            child = parent.entries[child_index][1]
            if len(child.entries) < self._min:
                del parent.entries[child_index]
                orphans.extend(self._collect_leaf_entries(child))
                if self._pager is not None:
                    self._pager.forget(id(child))
            else:
                parent.entries[child_index] = (child.mbr(), child)

        # Shrink a root that degenerated to a single internal child.
        while (
            not self._root.is_leaf
            and len(self._root.entries) == 1
        ):
            old_root = self._root
            self._root = self._root.entries[0][1]
            if self._pager is not None:
                self._pager.forget(id(old_root))

        self._size -= len(orphans)
        for orphan_mbr, orphan_payload in orphans:
            self.insert(orphan_mbr, orphan_payload)
        return True

    def delete_point(self, point: Point, payload: Any) -> bool:
        """Remove a point entry inserted with :meth:`insert_point`."""
        return self.delete(MBR.from_point(point), payload)

    def _collect_leaf_entries(self, node: _RTreeNode) -> list[tuple[MBR, Any]]:
        if node.is_leaf:
            return list(node.entries)
        collected: list[tuple[MBR, Any]] = []
        for _, child in node.entries:
            collected.extend(self._collect_leaf_entries(child))
            if self._pager is not None:
                self._pager.forget(id(child))
        return collected

    # ------------------------------------------------------------------
    # Bulk load (Sort-Tile-Recursive)
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(
        cls,
        items: Iterable[tuple[MBR, Any]],
        max_entries: int = DEFAULT_MAX_ENTRIES,
        pager: NodePager | None = None,
    ) -> "RTree":
        """Build a packed tree with the STR algorithm.

        STR yields near-square leaf MBRs with full occupancy — the right
        construction for the static object sets and edge sets of the
        experiments.
        """
        tree = cls(max_entries=max_entries, pager=pager)
        entries = list(items)
        if not entries:
            return tree
        fill = max(2, max_entries * 3 // 4)

        def pack(level: list[tuple[MBR, Any]], is_leaf: bool) -> list[tuple[MBR, Any]]:
            import math

            count = len(level)
            slice_count = max(1, math.ceil(math.sqrt(math.ceil(count / fill))))
            per_slice = math.ceil(count / slice_count)
            level.sort(key=lambda e: (e[0].center.x, e[0].center.y))
            parents: list[tuple[MBR, Any]] = []
            for s in range(0, count, per_slice):
                tile = level[s : s + per_slice]
                tile.sort(key=lambda e: (e[0].center.y, e[0].center.x))
                groups = [tile[t : t + fill] for t in range(0, len(tile), fill)]
                # Rebalance a short trailing group so every non-root node
                # meets the minimum fill required by validate().
                if len(groups) >= 2 and len(groups[-1]) < tree._min:
                    deficit = tree._min - len(groups[-1])
                    groups[-1] = groups[-2][-deficit:] + groups[-1]
                    groups[-2] = groups[-2][:-deficit]
                for group in groups:
                    node = _RTreeNode(is_leaf=is_leaf)
                    node.entries = group
                    if pager is not None:
                        pager.register(id(node))
                    parents.append((node.mbr(), node))
            return parents

        level = pack(entries, is_leaf=True)
        while len(level) > 1:
            level = pack(level, is_leaf=False)
        root = level[0][1]
        assert isinstance(root, _RTreeNode)
        tree._root = root
        tree._size = len(entries)
        return tree

    @classmethod
    def bulk_load_columns(
        cls,
        coords: CoordinateColumns,
        payloads: Sequence[Any],
        max_entries: int = DEFAULT_MAX_ENTRIES,
        pager: NodePager | None = None,
        order: int = 10,
    ) -> "RTree":
        """Build a packed tree from a coordinate column store.

        Points are sorted along a Hilbert curve of ``2^order`` cells per
        side and packed into full leaves in that order; upper levels
        pack linearly over the already-curve-ordered children, so
        spatially close objects share nodes without the per-entry
        tuple sorting STR does.  ``payloads[i]`` belongs to the point
        ``(coords.xs[i], coords.ys[i])``.
        """
        count = len(coords)
        if count != len(payloads):
            raise ValueError(
                f"column/payload length mismatch: {count} vs {len(payloads)}"
            )
        tree = cls(max_entries=max_entries, pager=pager)
        if count == 0:
            return tree
        fill = max(2, max_entries * 3 // 4)
        ordered = hilbert_sort_indices(coords.xs, coords.ys, count, order=order)
        entries: list[tuple[MBR, Any]] = [
            (
                MBR.from_point(Point(coords.xs[i], coords.ys[i])),
                payloads[i],
            )
            for i in ordered
        ]

        def pack_linear(
            level: list[tuple[MBR, Any]], is_leaf: bool
        ) -> list[tuple[MBR, Any]]:
            groups = [level[t : t + fill] for t in range(0, len(level), fill)]
            # Rebalance a short trailing group so every non-root node
            # meets the minimum fill required by validate().
            if len(groups) >= 2 and len(groups[-1]) < tree._min:
                deficit = tree._min - len(groups[-1])
                groups[-1] = groups[-2][-deficit:] + groups[-1]
                groups[-2] = groups[-2][:-deficit]
            parents: list[tuple[MBR, Any]] = []
            for group in groups:
                node = _RTreeNode(is_leaf=is_leaf)
                node.entries = group
                if pager is not None:
                    pager.register(id(node))
                parents.append((node.mbr(), node))
            return parents

        level = pack_linear(entries, is_leaf=True)
        while len(level) > 1:
            level = pack_linear(level, is_leaf=False)
        root = level[0][1]
        assert isinstance(root, _RTreeNode)
        tree._root = root
        tree._size = count
        return tree

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _touch(self, node: _RTreeNode) -> None:
        if self._pager is not None:
            tracing.record("rtree_nodes")
            self._pager.touch(id(node))

    def search(self, region: MBR) -> Iterator[tuple[MBR, Any]]:
        """All leaf entries whose MBR intersects ``region``."""
        if not self._root.entries:
            return
        stack = [self._root]
        while stack:
            node = stack.pop()
            self._touch(node)
            for rect, child in node.entries:
                if not rect.intersects(region):
                    continue
                if node.is_leaf:
                    yield (rect, child)
                else:
                    stack.append(child)

    def traverse(
        self, descend: Callable[[MBR, Any | None], bool]
    ) -> Iterator[tuple[MBR, Any]]:
        """Pruned depth-first traversal.

        ``descend(mbr, payload)`` decides whether an entry is worth
        visiting (``payload`` is None for internal entries); leaf
        entries that pass are yielded.  Used for non-rectangular region
        queries such as EDC's union-of-hypercubes fetch, where the
        region lives in distance space rather than coordinate space.
        """
        if not self._root.entries:
            return
        stack = [self._root]
        while stack:
            node = stack.pop()
            self._touch(node)
            for rect, child in node.entries:
                if node.is_leaf:
                    if descend(rect, child):
                        yield (rect, child)
                elif descend(rect, None):
                    stack.append(child)

    def all_entries(self) -> Iterator[tuple[MBR, Any]]:
        """Every leaf entry (full scan)."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            self._touch(node)
            if node.is_leaf:
                yield from node.entries
            else:
                for _, child in node.entries:
                    stack.append(child)

    def best_first(
        self,
        key: Callable[[MBR, Any | None], float],
        prune: Callable[[MBR, Any | None], bool] | None = None,
    ) -> Iterator[tuple[float, MBR, Any]]:
        """Generic best-first traversal.

        ``key(mbr, payload)`` must be a *lower bound* that never
        decreases from parent to child (``payload`` is None for internal
        entries); results then stream in non-decreasing key order.
        ``prune(mbr, payload)`` may discard any entry (and with it the
        subtree below); it is evaluated lazily at pop time, so pruning
        predicates that grow stronger over time (e.g. dominance against
        an expanding skyline set) take full effect.

        Yields ``(key_value, mbr, payload)`` for leaf entries only.
        """
        if not self._root.entries:
            return
        counter = 0
        root_mbr = self._root.mbr()
        heap: list[tuple[float, int, MBR, Any, bool]] = []
        heapq.heappush(
            heap, (key(root_mbr, None), counter, root_mbr, self._root, False)
        )
        while heap:
            value, _, mbr, item, is_data = heapq.heappop(heap)
            if prune is not None and prune(mbr, item if is_data else None):
                continue
            if is_data:
                yield (value, mbr, item)
                continue
            node: _RTreeNode = item
            self._touch(node)
            for rect, child in node.entries:
                child_is_data = node.is_leaf
                child_value = key(rect, child if child_is_data else None)
                if prune is not None and prune(rect, child if child_is_data else None):
                    continue
                counter += 1
                heapq.heappush(heap, (child_value, counter, rect, child, child_is_data))

    def nearest(
        self,
        point: Point,
        prune: Callable[[MBR, Any | None], bool] | None = None,
    ) -> Iterator[tuple[float, MBR, Any]]:
        """Incremental nearest-neighbour stream ordered by ``mindist``."""
        return self.best_first(lambda mbr, _payload: mbr.mindist(point), prune)

    def aggregate_nearest(
        self,
        points: list[Point],
        prune: Callable[[MBR, Any | None], bool] | None = None,
    ) -> Iterator[tuple[float, MBR, Any]]:
        """Incremental *aggregate* NN: ordered by sum of mindists.

        This is the heap order of the paper's Euclidean multi-source
        skyline algorithm (Section 4.2): the mindist of an object is the
        sum of its Euclidean distances to all query points, and the
        mindist of an intermediate entry sums the per-query-point
        minimum distances to its MBR.
        """
        return self.best_first(
            lambda mbr, _payload: sum(mbr.mindist(q) for q in points), prune
        )

    # ------------------------------------------------------------------
    # Invariant checking (used by property tests)
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Assert structural invariants, raising AssertionError on breach."""
        leaf_depths: set[int] = set()
        seen = 0

        def recurse(node: _RTreeNode, depth: int) -> None:
            nonlocal seen
            entry_count = len(node.entries)
            if node is not self._root and not self._min <= entry_count <= self._max:
                raise AssertionError(
                    f"node fill {len(node.entries)} outside "
                    f"[{self._min}, {self._max}]"
                )
            if node is self._root and len(node.entries) > self._max:
                raise AssertionError("root overflow escaped splitting")
            if node.is_leaf:
                leaf_depths.add(depth)
                seen += len(node.entries)
                return
            for rect, child in node.entries:
                if not isinstance(child, _RTreeNode):
                    raise AssertionError("internal entry without child node")
                if not rect.contains(child.mbr()):
                    raise AssertionError(
                        f"parent MBR {rect} does not contain child {child.mbr()}"
                    )
                recurse(child, depth + 1)

        recurse(self._root, 0)
        if len(leaf_depths) > 1:
            raise AssertionError(f"leaves at different depths: {leaf_depths}")
        if seen != self._size:
            raise AssertionError(f"entry count {seen} != recorded size {self._size}")
