"""Other half of the seeded import cycle."""

import repro.network.loop_a  # EXPECT: REPRO-ARCH02

VALUE_B = 2


def read_a():
    return repro.network.loop_a.VALUE_A
