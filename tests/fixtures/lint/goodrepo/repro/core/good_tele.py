"""Telemetry calls drawn from the registered vocabulary."""

from repro.obs import tracing


def run(name):
    tracing.record("nodes_settled")
    with tracing.span("ce.filter"):
        pass
    # Extension spans minted in obs/names.py are vocabulary too.
    with tracing.span("ann.ce"):
        tracing.record("distance_computations")
    with tracing.span("experiment.run"):
        pass
    with tracing.span(f"query.{name}"):
        return None


def register(registry):
    registry.counter("repro_service_requests_total", "requests")
