"""The exhaustive baseline: full distance matrix, then BNL.

Not one of the paper's algorithms — it is the correctness oracle every
property test compares against, and the cost straw man: every object's
distance to every query point is computed through the workspace's
distance engine (one pooled wavefront per query point, reused across
the whole object sweep), then one blocked-nested-loops scan reports
the skyline.
"""

from __future__ import annotations

from repro.core.base import SkylineAlgorithm, _ResponseTimer
from repro.core.query import Workspace
from repro.core.result import SkylinePoint
from repro.core.stats import QueryStats
from repro.network.graph import NetworkLocation
from repro.obs import tracing
from repro.skyline.bnl import bnl_skyline


class NaiveSkyline(SkylineAlgorithm):
    """Compute every network distance, then scan for the skyline."""

    name = "naive"

    def _execute(
        self,
        workspace: Workspace,
        queries: list[NetworkLocation],
        stats: QueryStats,
        timer: _ResponseTimer,
    ) -> list[SkylinePoint]:
        engine = workspace.engine
        objects = list(workspace.objects)
        stats.candidate_count = len(objects)

        full_vectors = engine.vectors(queries, objects)
        tracing.record("distance_computations", len(queries) * len(objects))

        winners = bnl_skyline(full_vectors)
        points = [
            SkylinePoint(obj=objects[i], vector=full_vectors[i]) for i in winners
        ]
        if points:
            timer.mark_first_result()
        return points
