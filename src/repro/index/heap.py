"""An addressable binary min-heap with decrease-key.

Both Dijkstra's algorithm and A* maintain a wavefront where a node's
tentative distance can improve while it is already enqueued.  The
standard-library ``heapq`` forces lazy deletion for that; this heap
supports true ``decrease_key`` (and ``remove``) by tracking item
positions, which keeps the wavefront state compact — important because
the resumable searches in :mod:`repro.network` keep their heaps alive
across many calls.

Keys are compared as ``(priority, tiebreak)`` where the tiebreak is a
monotone insertion counter, making iteration order deterministic for
equal priorities (experiments must be reproducible).
"""

from __future__ import annotations

from typing import Generic, Hashable, Iterator, TypeVar

T = TypeVar("T", bound=Hashable)


class AddressableHeap(Generic[T]):
    """Binary min-heap over hashable items with updatable priorities."""

    __slots__ = ("_counter", "_entries", "_position")

    def __init__(self) -> None:
        self._entries: list[tuple[float, int, T]] = []
        self._position: dict[T, int] = {}
        self._counter = 0

    @classmethod
    def from_items(cls, items: "list[tuple[T, float]]") -> "AddressableHeap[T]":
        """Build a heap from ``(item, priority)`` pairs in O(n) (heapify).

        Much cheaper than n pushes; used by the resumable A* searches
        that re-key a large frontier for every new destination.
        """
        heap: AddressableHeap[T] = cls()
        entries = heap._entries
        for counter, (item, priority) in enumerate(items):
            if item in heap._position:
                raise KeyError(f"duplicate item {item!r}")
            entries.append((priority, counter, item))
            heap._position[item] = counter
        heap._counter = len(entries)
        for index in range(len(entries) // 2 - 1, -1, -1):
            heap._sift_down(index)
        return heap

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __contains__(self, item: T) -> bool:
        return item in self._position

    def push(self, item: T, priority: float) -> None:
        """Insert a new item; raises if the item is already enqueued."""
        if item in self._position:
            raise KeyError(f"item {item!r} already in heap; use update()")
        entry = (priority, self._counter, item)
        self._counter += 1
        self._entries.append(entry)
        self._position[item] = len(self._entries) - 1
        self._sift_up(len(self._entries) - 1)

    def pop(self) -> tuple[T, float]:
        """Remove and return ``(item, priority)`` with minimal priority."""
        if not self._entries:
            raise IndexError("pop from an empty heap")
        top = self._entries[0]
        last = self._entries.pop()
        del self._position[top[2]]
        if self._entries:
            self._entries[0] = last
            self._position[last[2]] = 0
            self._sift_down(0)
        return (top[2], top[0])

    def peek(self) -> tuple[T, float]:
        """``(item, priority)`` with minimal priority, without removal."""
        if not self._entries:
            raise IndexError("peek at an empty heap")
        priority, _, item = self._entries[0]
        return (item, priority)

    def min_priority(self) -> float:
        """The smallest priority currently enqueued."""
        if not self._entries:
            raise IndexError("min_priority of an empty heap")
        return self._entries[0][0]

    def priority_of(self, item: T) -> float:
        """The current priority of an enqueued item."""
        index = self._position[item]
        return self._entries[index][0]

    def decrease_key(self, item: T, priority: float) -> None:
        """Lower an item's priority; raises if it would increase."""
        index = self._position[item]
        current = self._entries[index][0]
        if priority > current:
            raise ValueError(
                f"decrease_key would raise priority of {item!r}: "
                f"{current} -> {priority}"
            )
        self._entries[index] = (priority, self._entries[index][1], item)
        self._sift_up(index)

    def update(self, item: T, priority: float) -> None:
        """Set an item's priority in either direction, inserting if new."""
        if item not in self._position:
            self.push(item, priority)
            return
        index = self._position[item]
        old = self._entries[index][0]
        self._entries[index] = (priority, self._entries[index][1], item)
        if priority < old:
            self._sift_up(index)
        elif priority > old:
            self._sift_down(index)

    def push_or_decrease(self, item: T, priority: float) -> bool:
        """Insert, or lower an existing priority; ignore worse priorities.

        Returns True when the heap changed.  This is the exact relaxation
        step of Dijkstra/A*: a longer rediscovered path is a no-op.
        """
        if item not in self._position:
            self.push(item, priority)
            return True
        index = self._position[item]
        if priority < self._entries[index][0]:
            self._entries[index] = (priority, self._entries[index][1], item)
            self._sift_up(index)
            return True
        return False

    def remove(self, item: T) -> float:
        """Remove an arbitrary enqueued item, returning its priority."""
        index = self._position.pop(item)
        entry = self._entries[index]
        last = self._entries.pop()
        if index < len(self._entries):
            self._entries[index] = last
            self._position[last[2]] = index
            self._sift_down(index)
            self._sift_up(index)
        return entry[0]

    def items(self) -> Iterator[tuple[T, float]]:
        """All enqueued ``(item, priority)`` pairs in arbitrary order."""
        for priority, _, item in self._entries:
            yield (item, priority)

    def clear(self) -> None:
        self._entries.clear()
        self._position.clear()

    # ------------------------------------------------------------------
    # Sift helpers
    # ------------------------------------------------------------------
    def _sift_up(self, index: int) -> None:
        entries = self._entries
        entry = entries[index]
        key = (entry[0], entry[1])
        while index > 0:
            parent = (index - 1) >> 1
            parent_entry = entries[parent]
            if (parent_entry[0], parent_entry[1]) <= key:
                break
            entries[index] = parent_entry
            self._position[parent_entry[2]] = index
            index = parent
        entries[index] = entry
        self._position[entry[2]] = index

    def _sift_down(self, index: int) -> None:
        entries = self._entries
        size = len(entries)
        entry = entries[index]
        key = (entry[0], entry[1])
        while True:
            child = 2 * index + 1
            if child >= size:
                break
            right = child + 1
            if right < size:
                c, r = entries[child], entries[right]
                if (r[0], r[1]) < (c[0], c[1]):
                    child = right
            child_entry = entries[child]
            if key <= (child_entry[0], child_entry[1]):
                break
            entries[index] = child_entry
            self._position[child_entry[2]] = index
            index = child
        entries[index] = entry
        self._position[entry[2]] = index

    def validate(self) -> None:
        """Assert the heap invariant; used by property tests."""
        for i in range(1, len(self._entries)):
            parent = (i - 1) >> 1
            p, c = self._entries[parent], self._entries[i]
            if (p[0], p[1]) > (c[0], c[1]):
                raise AssertionError(f"heap violated at {i}: {p} > {c}")
        for item, index in self._position.items():
            if self._entries[index][2] != item:
                raise AssertionError(f"position map stale for {item!r}")
