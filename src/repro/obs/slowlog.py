"""Slow-query log: threshold filter + reservoir sampling.

Every request slower than ``threshold_s`` is *counted*; a bounded,
uniformly random sample of them (algorithm R) is *retained* with enough
context to debug later — algorithm, query keys, latency, the dominant
cost counters, and the trace id if tracing was on.  The reservoir keeps
the log O(capacity) memory under sustained overload while remaining an
unbiased sample of the slow population.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class SlowQueryRecord:
    """One retained slow request.

    Two clocks, deliberately kept apart: ``wall_time`` is a
    ``time.time()`` stamp taken when the record is created (for
    correlating with external logs), while ``latency_s`` and
    ``span_duration_s`` are monotonic ``perf_counter``-derived
    durations — ``latency_s`` covers admission to completion (queueing
    included) and ``span_duration_s`` is the request span's own
    execution time.  Comparing a wall stamp against a monotonic
    duration is meaningless; exposing both makes the distinction
    explicit instead of leaving callers to guess.
    """

    request_id: str
    algorithm: str
    latency_s: float
    wall_time: float
    span_duration_s: float = 0.0
    query_nodes: tuple[int, ...] = ()
    trace_id: str | None = None
    counters: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "request_id": self.request_id,
            "algorithm": self.algorithm,
            "latency_s": self.latency_s,
            "wall_time": self.wall_time,
            "span_duration_s": self.span_duration_s,
            "query_nodes": list(self.query_nodes),
            "trace_id": self.trace_id,
            "counters": dict(self.counters),
        }


class SlowQueryLog:
    """Thread-safe threshold + reservoir-sampled slow-request log."""

    def __init__(
        self,
        threshold_s: float = 0.5,
        capacity: int = 64,
        seed: int | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.threshold_s = threshold_s
        self.capacity = capacity
        self._rng = random.Random(seed)
        self._reservoir: list[SlowQueryRecord] = []
        self._seen = 0
        self._lock = threading.Lock()

    def offer(
        self,
        request_id: str,
        algorithm: str,
        latency_s: float,
        query_nodes: tuple[int, ...] = (),
        trace_id: str | None = None,
        counters: dict[str, float] | None = None,
        span_duration_s: float = 0.0,
    ) -> bool:
        """Record a finished request; returns True iff it was slow.

        ``latency_s``/``span_duration_s`` are monotonic durations (the
        caller derives them from ``perf_counter``-based span timings);
        the wall-clock stamp is taken here, once, at record time.
        """
        if latency_s < self.threshold_s:
            return False
        record = SlowQueryRecord(
            request_id=request_id,
            algorithm=algorithm,
            latency_s=latency_s,
            wall_time=time.time(),
            span_duration_s=span_duration_s,
            query_nodes=tuple(query_nodes),
            trace_id=trace_id,
            counters=dict(counters or {}),
        )
        with self._lock:
            self._seen += 1
            if len(self._reservoir) < self.capacity:
                self._reservoir.append(record)
            else:
                # Algorithm R: replace with probability capacity/seen.
                slot = self._rng.randrange(self._seen)
                if slot < self.capacity:
                    self._reservoir[slot] = record
        return True

    @property
    def slow_count(self) -> int:
        """Total slow requests observed (not just retained)."""
        with self._lock:
            return self._seen

    def records(self) -> list[SlowQueryRecord]:
        """Retained sample, slowest first."""
        with self._lock:
            return sorted(self._reservoir, key=lambda r: -r.latency_s)

    def to_dict(self) -> dict[str, Any]:
        return {
            "threshold_s": self.threshold_s,
            "capacity": self.capacity,
            "slow_count": self.slow_count,
            "records": [r.to_dict() for r in self.records()],
        }

    def clear(self) -> None:
        with self._lock:
            self._reservoir.clear()
            self._seen = 0
