"""Planar point primitives and distance kernels.

The road networks in the paper are embedded in a unified ``1 km x 1 km``
region, so all geometry in this package is two-dimensional Euclidean
geometry over ``float`` coordinates.  :class:`Point` is deliberately an
immutable value type: points are used as dictionary keys, stored inside
index pages, and shared freely between algorithm state and statistics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence


@dataclass(frozen=True, slots=True)
class Point:
    """An immutable point in the plane.

    Supports the small amount of vector arithmetic the library needs
    (translation, subtraction, scaling) without pulling in numpy for
    what are single-pair operations on the hot path.
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def squared_distance_to(self, other: "Point") -> float:
        """Squared Euclidean distance (avoids the sqrt for comparisons)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def manhattan_distance_to(self, other: "Point") -> float:
        """L1 distance; used by a few tests as an alternative metric."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def midpoint(self, other: "Point") -> "Point":
        """The midpoint of the segment from ``self`` to ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def translated(self, dx: float, dy: float) -> "Point":
        """A copy of this point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def lerp(self, other: "Point", t: float) -> "Point":
        """Linear interpolation: ``self`` at ``t=0``, ``other`` at ``t=1``."""
        return Point(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )

    def as_tuple(self) -> tuple[float, float]:
        """The point as a plain ``(x, y)`` tuple."""
        return (self.x, self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def __sub__(self, other: "Point") -> tuple[float, float]:
        return (self.x - other.x, self.y - other.y)


ORIGIN = Point(0.0, 0.0)


def euclidean(a: Point, b: Point) -> float:
    """Module-level alias for :meth:`Point.distance_to`.

    The skyline algorithms take a *metric* callable so tests can swap in
    other metrics; this is the default.
    """
    return math.hypot(a.x - b.x, a.y - b.y)


def centroid(points: Sequence[Point]) -> Point:
    """The arithmetic mean of a non-empty sequence of points."""
    if not points:
        raise ValueError("centroid() of an empty sequence")
    sx = sum(p.x for p in points)
    sy = sum(p.y for p in points)
    n = float(len(points))
    return Point(sx / n, sy / n)


def bounding_coordinates(
    points: Iterable[Point],
) -> tuple[float, float, float, float]:
    """``(min_x, min_y, max_x, max_y)`` over a non-empty iterable."""
    it = iter(points)
    try:
        first = next(it)
    except StopIteration:
        raise ValueError("bounding_coordinates() of an empty iterable") from None
    min_x = max_x = first.x
    min_y = max_y = first.y
    for p in it:
        if p.x < min_x:
            min_x = p.x
        elif p.x > max_x:
            max_x = p.x
        if p.y < min_y:
            min_y = p.y
        elif p.y > max_y:
            max_y = p.y
    return (min_x, min_y, max_x, max_y)


def total_path_length(points: Sequence[Point]) -> float:
    """Sum of consecutive segment lengths along a point sequence."""
    return sum(points[i].distance_to(points[i + 1]) for i in range(len(points) - 1))
