"""Two locks always taken in the same order: no cycle."""

import threading


class GoodOrdering:
    def __init__(self):
        self._alock = threading.Lock()
        self._block = threading.Lock()

    def one(self):
        with self._alock:
            with self._block:
                return 1

    def two(self):
        with self._alock:
            with self._block:
                return 2
