"""Common machinery shared by the skyline algorithms.

Every algorithm subclasses :class:`SkylineAlgorithm` and implements
``_execute``; the base class handles query validation, timing, and the
I/O snapshotting that turns buffer-pool counters into per-query stats.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod

from repro.core.query import Workspace
from repro.core.result import SkylinePoint, SkylineResult
from repro.core.stats import QueryStats
from repro.network.graph import NetworkLocation
from repro.skyline.dominance import dominates


class SkylineAlgorithm(ABC):
    """A multi-source network skyline query processor."""

    name: str = "abstract"

    def run(
        self, workspace: Workspace, queries: list[NetworkLocation]
    ) -> SkylineResult:
        """Answer one query, returning points and cost statistics.

        I/O counters are delta-measured, so workspaces can be reused;
        call :meth:`Workspace.reset_io` beforehand for cold-buffer runs.
        """
        workspace.validate_queries(queries)
        stats = QueryStats(
            algorithm=self.name,
            query_count=len(queries),
            object_count=len(workspace.objects),
        )
        net_before = workspace.network_pages_read()
        idx_before = workspace.index_pages_read()
        mid_before = workspace.middle_pages_read()
        engine = workspace.engine
        engine_before = engine.counters if engine is not None else None

        started = time.perf_counter()
        timer = _ResponseTimer(
            started,
            pages_probe=lambda: (
                workspace.network_pages_read() - net_before,
                workspace.index_pages_read()
                + workspace.middle_pages_read()
                - idx_before
                - mid_before,
            ),
        )
        points = self._execute(workspace, list(queries), stats, timer)
        finished = time.perf_counter()

        stats.skyline_count = len(points)
        if engine is not None and engine_before is not None:
            after = engine.counters
            stats.distance_backend = engine.backend_name
            stats.engine_hits = after.hits - engine_before.hits
            stats.engine_misses = after.misses - engine_before.misses
            stats.engine_evictions = after.evictions - engine_before.evictions
        stats.network_pages = workspace.network_pages_read() - net_before
        stats.index_pages = workspace.index_pages_read() - idx_before
        stats.middle_pages = workspace.middle_pages_read() - mid_before
        stats.total_response_s = finished - started
        stats.initial_response_s = timer.first_response(default=stats.total_response_s)
        net_at_first, idx_at_first = timer.pages_at_first(
            default=(stats.network_pages, stats.index_pages + stats.middle_pages)
        )
        stats.initial_network_pages = net_at_first
        stats.initial_index_pages = idx_at_first
        return SkylineResult(points=points, stats=stats)

    @abstractmethod
    def _execute(
        self,
        workspace: Workspace,
        queries: list[NetworkLocation],
        stats: QueryStats,
        timer: "_ResponseTimer",
    ) -> list[SkylinePoint]:
        """Algorithm body: return the skyline points in discovery order."""


class _ResponseTimer:
    """Records when (and at what I/O cost) the first point is confirmed."""

    def __init__(self, started: float, pages_probe=None) -> None:
        self._started = started
        self._first: float | None = None
        self._pages_probe = pages_probe
        self._pages_at_first: tuple[int, int] | None = None

    def mark_first_result(self) -> None:
        """Call when a skyline point is first reported to the user."""
        if self._first is None:
            self._first = time.perf_counter()
            if self._pages_probe is not None:
                self._pages_at_first = self._pages_probe()

    def first_response(self, default: float) -> float:
        if self._first is None:
            return default
        return self._first - self._started

    def pages_at_first(self, default: tuple[int, int]) -> tuple[int, int]:
        if self._pages_at_first is None:
            return default
        return self._pages_at_first


def insert_skyline_point(
    skyline: list[SkylinePoint], new_point: SkylinePoint
) -> None:
    """Add a confirmed point, evicting members it dominates.

    With continuous distances eviction never fires, but exact ties
    (co-located objects, symmetric networks) can confirm a point before
    a later point that dominates it arrives — dominance is transitive,
    so pruning done with the evicted point remains sound, and evicting
    keeps the final answer exactly the skyline.
    """
    new_vector = new_point.vector
    skyline[:] = [p for p in skyline if not dominates(new_vector, p.vector)]
    skyline.append(new_point)
