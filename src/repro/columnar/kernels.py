"""Allocation-free batch kernels over flat float buffers.

Every kernel operates on indexable buffers of doubles — ``array('d')``,
``memoryview('d')`` over an mmap, or any sequence of floats — holding
``count`` vectors of ``width`` components row-major.  Loop bodies avoid
per-element Python object construction (no tuples, lists or dataclass
instances per row); the ``REPRO-PERF01`` lint rule keeps it that way.

Dominance uses the paper's minimisation convention: ``a`` dominates
``b`` when ``a <= b`` in every dimension and ``a < b`` in at least one.
The *lower-bound* variants apply the same arithmetic with different
semantics (see :func:`repro.skyline.dominance.dominates_lower_bounds`):
they are aliases with their own names so call sites state intent.

Exactness of :func:`block_skyline` rests on a monotonicity argument:
IEEE rounding is monotone and addition is monotone in both operands, so
if ``a`` dominates ``b`` pointwise then the left-to-right float sum of
``a`` is **at most** that of ``b`` — never more.  A dominator therefore
sorts into an earlier group or the *same* equal-sum group, and the
equal-sum groups are resolved by exact pairwise checks, so the result
matches the quadratic reference bit for bit even under float ties.

Comparison work is charged to the ``dominance_checks`` counter in bulk
(one :func:`repro.obs.tracing.record` call per block operation, not per
row), so per-query span totals expose how much dominance work each
phase did without per-comparison overhead.
"""

from __future__ import annotations

from array import array
from math import hypot

from repro.obs import tracing


def dominates_flat(a, ao: int, b, bo: int, width: int) -> bool:
    """Does the vector at ``a[ao:ao+width]`` dominate ``b[bo:bo+width]``?

    Also the lower-bound dominance test (same arithmetic; the caller
    supplies bounds in ``b`` and interprets the verdict soundly).
    """
    strict = False
    d = 0
    while d < width:
        av = a[ao + d]
        bv = b[bo + d]
        if av > bv:
            return False
        if av < bv:
            strict = True
        d += 1
    return strict


def is_dominated_by_any_block(
    block, count: int, width: int, vector, offset: int = 0
) -> bool:
    """True when any of the block's ``count`` rows dominates ``vector``.

    ``vector`` is read at ``vector[offset : offset + width]`` so callers
    can test one row of another flat buffer without slicing.  Charges
    the rows scanned to the ``dominance_checks`` counter.
    """
    checks = 0
    found = False
    base = 0
    end = count * width
    while base < end:
        checks += 1
        strict = False
        dominated = True
        i = base
        stop = base + width
        j = offset
        while i < stop:
            rv = block[i]
            vv = vector[j]
            if rv > vv:
                dominated = False
                break
            if rv < vv:
                strict = True
            i += 1
            j += 1
        if dominated and strict:
            found = True
            break
        base += width
    if checks:
        tracing.record("dominance_checks", checks)
    return found


def is_dominated_by_any_block_lb(
    block, count: int, width: int, bounds, offset: int = 0
) -> bool:
    """Lower-bound variant: rows are exact, ``bounds`` are lower bounds.

    Sound in the :func:`repro.skyline.dominance.dominates_lower_bounds`
    sense — True only when some row provably dominates the true vector
    the bounds under-estimate.
    """
    return is_dominated_by_any_block(block, count, width, bounds, offset)


def is_covered_by_any_block(
    block, count: int, width: int, vector, offset: int = 0
) -> bool:
    """True when some row ``r`` satisfies ``vector <= r`` pointwise.

    The hypercube-membership test of EDC's window step: the rows are
    shifted corners and ``vector`` lies inside ``[origin, r]``.
    """
    checks = 0
    found = False
    base = 0
    end = count * width
    while base < end:
        checks += 1
        inside = True
        i = base
        stop = base + width
        j = offset
        while i < stop:
            if vector[j] > block[i]:
                inside = False
                break
            i += 1
            j += 1
        if inside:
            found = True
            break
        base += width
    if checks:
        tracing.record("dominance_checks", checks)
    return found


def dominates_block(
    vector, block, count: int, width: int, out, offset: int = 0
) -> int:
    """Mark rows dominated by ``vector``: ``out[r] = 1`` where it wins.

    ``out`` must hold at least ``count`` slots (e.g. ``array('b')``);
    untouched slots are zeroed.  Returns the number of dominated rows.
    Used for batch eviction sweeps and by the equivalence tests.
    """
    hits = 0
    base = 0
    r = 0
    while r < count:
        strict = False
        dominated = True
        i = base
        stop = base + width
        j = offset
        while i < stop:
            rv = block[i]
            vv = vector[j]
            if vv > rv:
                dominated = False
                break
            if vv < rv:
                strict = True
            i += 1
            j += 1
        if dominated and strict:
            out[r] = 1
            hits += 1
        else:
            out[r] = 0
        r += 1
        base += width
    if count:
        tracing.record("dominance_checks", count)
    return hits


def dominates_block_lb(
    vector, block, count: int, width: int, out, offset: int = 0
) -> int:
    """Lower-bound variant of :func:`dominates_block`.

    Rows hold lower bounds; a marked row is *provably* dominated (the
    strictness requirement carries over to the unknown true values).
    """
    return dominates_block(vector, block, count, width, out, offset)


def block_skyline(block, count: int, width: int) -> list[int]:
    """Row indices of the block's skyline, in SFS preference order.

    Sort-filter-skyline over the flat block: rows are ordered by their
    component sum (ties by row index), each row is compared against the
    confirmed set only, and equal-sum groups get exact pairwise checks
    so float-rounding sum ties cannot admit a dominated row (see the
    module docstring).  Output order equals the scalar SFS order; sort
    ascending for :func:`repro.skyline.dominance.skyline_of` semantics.
    """
    if count <= 0:
        return []
    if width <= 0:
        return list(range(count))

    sums = array("d", bytes(8 * count))
    base = 0
    r = 0
    while r < count:
        total = 0.0
        i = base
        stop = base + width
        while i < stop:
            total += block[i]
            i += 1
        sums[r] = total
        r += 1
        base += width

    order = sorted(range(count), key=sums.__getitem__)

    sky: list[int] = []
    confirmed = array("d")
    checks = 0
    pos = 0
    while pos < count:
        group_end = pos + 1
        group_sum = sums[order[pos]]
        while group_end < count and sums[order[group_end]] == group_sum:
            group_end += 1
        confirmed_rows = len(sky)
        g = pos
        while g < group_end:
            row = order[g]
            row_base = row * width
            dominated = False
            # Against the confirmed set (strictly smaller sums, plus
            # earlier members of this group already copied in — those
            # are re-checked exactly below, so the early rows here only
            # ever reject correctly).
            cbase = 0
            cend = confirmed_rows * width
            while cbase < cend:
                checks += 1
                strict = False
                wins = True
                i = cbase
                stop = cbase + width
                j = row_base
                while i < stop:
                    cv = confirmed[i]
                    rv = block[j]
                    if cv > rv:
                        wins = False
                        break
                    if cv < rv:
                        strict = True
                    i += 1
                    j += 1
                if wins and strict:
                    dominated = True
                    break
                cbase += width
            if not dominated:
                # Exact pairwise pass inside the equal-sum group: under
                # float rounding a dominator can share the rounded sum
                # with its victim.  Any group member may certify the
                # rejection (transitivity keeps this sound even when
                # the certifier is itself dominated).
                h = pos
                while h < group_end:
                    if h != g:
                        checks += 1
                        if dominates_flat(
                            block, order[h] * width, block, row_base, width
                        ):
                            dominated = True
                            break
                    h += 1
            if not dominated:
                sky.append(row)
                i = row_base
                stop = row_base + width
                while i < stop:
                    confirmed.append(block[i])
                    i += 1
            g += 1
        pos = group_end
    if checks:
        tracing.record("dominance_checks", checks)
    return sky


def batch_euclidean(
    xs, ys, count: int, qx: float, qy: float, out, offset: int = 0, stride: int = 1
) -> None:
    """Euclidean distances from ``(qx, qy)`` to ``count`` points.

    Reads ``xs[i]``/``ys[i]`` and writes ``out[offset + i * stride]`` —
    with ``stride`` equal to a row width this fills one *column* of a
    row-major vector table in place.  Uses ``math.hypot`` so each value
    is bit-identical to ``Point.distance_to`` on the scalar path.
    """
    j = offset
    i = 0
    while i < count:
        out[j] = hypot(xs[i] - qx, ys[i] - qy)
        i += 1
        j += stride


def fill_column(
    dst,
    width: int,
    column: int,
    values,
    count: int,
    src_offset: int = 0,
    src_stride: int = 1,
) -> None:
    """Copy ``count`` floats into one column of a row-major table.

    The source is read at ``values[src_offset + i * src_stride]``, so a
    column of another row-major buffer can be copied directly.
    """
    j = column
    i = src_offset
    r = 0
    while r < count:
        dst[j] = values[i]
        r += 1
        i += src_stride
        j += width
