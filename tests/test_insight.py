"""Insight plane: cohort keying, offline analysis, regression gating,
the CLI's exit codes, and live-vs-offline agreement through a real
service."""

from __future__ import annotations

import json
import time

import pytest

from conftest import (
    build_random_network,
    place_random_objects,
    random_locations,
)
from repro.core import Workspace
from repro.core.result import SkylineResult
from repro.core.stats import QueryStats
from repro.insight import (
    EXIT_ERROR,
    EXIT_OK,
    EXIT_REGRESSION,
    InsightHub,
    InsightSummary,
    cohort_key,
    cohort_of_event,
    compare_summaries,
    exact_quantile,
    format_growth,
    is_regression,
    load_summary,
    q_bucket_label,
    relative_increase,
    split_cohort,
    summarize_events,
    top_events,
)
from repro.insight.cli import main as insight_main
from repro.obs import read_events, tracing
from repro.service import QueryService
from repro.service.service import SERVICE_ALGORITHMS


def make_event(
    request_id=1,
    algorithm="EDC",
    backend="dijkstra",
    query_count=5,
    outcome="completed",
    latency_s=0.01,
    nodes_settled=100,
    network_pages=4,
    trace_id=None,
):
    return {
        "event": "query",
        "v": 1,
        "ts": 1.7e9 + request_id,
        "request_id": request_id,
        "algorithm": algorithm,
        "outcome": outcome,
        "trace_id": trace_id or f"trace-{request_id}",
        "batch_id": request_id,
        "engine_backend": backend,
        "latency_s": latency_s,
        "span_duration_s": latency_s * 0.8,
        "query_count": query_count,
        "query_nodes": list(range(query_count)),
        "skyline_count": 3,
        "candidate_count": 9,
        "counters": {
            "nodes_settled": nodes_settled,
            "network_pages": network_pages,
        },
    }


def write_log(path, events):
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event) + "\n")


class TestCohortKeying:
    def test_q_buckets_are_powers_of_two(self):
        assert q_bucket_label(1) == "|Q|[1,2)"
        assert q_bucket_label(2) == "|Q|[2,4)"
        assert q_bucket_label(3) == "|Q|[2,4)"
        assert q_bucket_label(4) == "|Q|[4,8)"
        assert q_bucket_label(7) == "|Q|[4,8)"
        assert q_bucket_label(8) == "|Q|[8,16)"
        assert q_bucket_label(16) == "|Q|[16,inf)"
        assert q_bucket_label(1000) == "|Q|[16,inf)"
        assert q_bucket_label(0) == "|Q|[1,2)"  # clamped

    def test_cohort_key_normalises_empty_parts(self):
        assert cohort_key("EDC", "", 5, "failed") == "EDC/-/|Q|[4,8)/failed"
        assert (
            cohort_key("LBC", "astar", 2, "completed")
            == "LBC/astar/|Q|[2,4)/completed"
        )

    def test_cohort_of_event_matches_cohort_key(self):
        event = make_event(algorithm="CE", backend="astar", query_count=9)
        assert cohort_of_event(event) == cohort_key(
            "CE", "astar", 9, "completed"
        )

    def test_split_round_trips(self):
        key = cohort_key("EDC", "dijkstra", 6, "completed")
        parts = split_cohort(key)
        assert parts["algorithm"] == "EDC"
        assert parts["backend"] == "dijkstra"
        assert parts["q"] == "|Q|[4,8)"
        assert parts["outcome"] == "completed"


class TestGateArithmetic:
    def test_relative_increase(self):
        assert relative_increase(100, 150) == pytest.approx(0.5)
        assert relative_increase(0, 5) == float("inf")
        assert relative_increase(0, 0) == 0.0

    def test_regression_needs_both_legs(self):
        # +62% but +0.5ms absolute: noise, not a regression.
        assert not is_regression(
            0.0008, 0.0013, threshold=0.5, absolute_floor=0.005
        )
        # Same ratio at meaningful magnitude: a finding.
        assert is_regression(
            0.08, 0.13, threshold=0.5, absolute_floor=0.005
        )
        assert not is_regression(100, 100, threshold=0.0)

    def test_format_growth_reads_as_attribution(self):
        assert format_growth(120, 380) == "120 -> 380 (+3.2x)"
        assert "+12.5%" in format_growth(80, 90)

    def test_bench_compare_shares_the_arithmetic(self):
        from repro.bench import compare as bench_compare
        from repro.insight import gate

        assert bench_compare._relative_increase is gate.relative_increase


class TestSummarize:
    def test_cohorts_and_exact_digests(self):
        latencies = [0.001 * i for i in range(1, 21)]
        events = [
            make_event(request_id=i, latency_s=lat, nodes_settled=50 + i)
            for i, lat in enumerate(latencies)
        ]
        events.append(make_event(request_id=99, algorithm="LBC"))
        summary = summarize_events(events)
        assert summary.events == 21
        key = cohort_key("EDC", "dijkstra", 5, "completed")
        assert set(summary.cohorts) == {
            key,
            cohort_key("LBC", "dijkstra", 5, "completed"),
        }
        digest = summary.cohorts[key]
        assert digest.count == 20
        assert digest.latency_s["p50"] == exact_quantile(latencies, 0.5)
        assert digest.latency_s["p99"] == exact_quantile(latencies, 0.99)
        assert digest.latency_s["max"] == max(latencies)
        settled = digest.counters["nodes_settled"]
        assert settled["sum"] == sum(50 + i for i in range(20))
        assert settled["max"] == 69
        assert digest.counters["network_pages"]["mean"] == 4.0

    def test_slow_exemplars_link_trace_ids(self):
        events = [
            make_event(request_id=i, latency_s=0.001 * (i + 1))
            for i in range(10)
        ]
        summary = summarize_events(events, exemplars=3)
        digest = next(iter(summary.cohorts.values()))
        assert [e["trace_id"] for e in digest.slowest] == [
            "trace-9",
            "trace-8",
            "trace-7",
        ]
        assert digest.slowest[0]["latency_s"] == pytest.approx(0.010)

    def test_non_query_events_are_ignored(self):
        events = [make_event(), {"event": "heartbeat", "ts": 0.0}]
        summary = summarize_events(events)
        assert summary.events == 1

    def test_summarize_records_a_registered_span(self):
        with tracing.span("query.test-harness") as root:
            summarize_events([make_event()])
        assert [child.name for child in root.children] == [
            "insight.summarize"
        ]

    def test_report_round_trips_through_json(self):
        summary = summarize_events(
            [make_event(request_id=i) for i in range(5)], source="x"
        )
        payload = json.loads(json.dumps(summary.to_dict()))
        revived = InsightSummary.from_dict(payload)
        assert revived.to_dict() == summary.to_dict()


class TestCompare:
    def _summaries(self, base_events, curr_events):
        return (
            summarize_events(base_events, source="base"),
            summarize_events(curr_events, source="curr"),
        )

    def test_identical_logs_diff_clean_and_deterministically(self):
        events = [make_event(request_id=i) for i in range(10)]
        for _ in range(3):
            base, curr = self._summaries(events, list(events))
            diff = compare_summaries(base, curr)
            assert diff.ok
            assert diff.failures == [] and diff.warnings == []

    def test_doubled_counter_names_cohort_and_counter(self):
        base_events = [
            make_event(request_id=i, nodes_settled=100) for i in range(10)
        ]
        curr_events = [
            make_event(request_id=i, nodes_settled=200) for i in range(10)
        ]
        base, curr = self._summaries(base_events, curr_events)
        diff = compare_summaries(base, curr)
        assert not diff.ok
        assert len(diff.failures) == 1
        message = diff.failures[0]
        assert cohort_key("EDC", "dijkstra", 5, "completed") in message
        assert "nodes_settled" in message
        assert "100 -> 200" in message

    def test_latency_regression_fails_by_default_warns_in_advisory(self):
        base_events = [
            make_event(request_id=i, latency_s=0.01) for i in range(10)
        ]
        curr_events = [
            make_event(request_id=i, latency_s=0.08) for i in range(10)
        ]
        base, curr = self._summaries(base_events, curr_events)
        diff = compare_summaries(base, curr)
        assert not diff.ok
        assert any("latency_s p50" in f for f in diff.failures)
        advisory = compare_summaries(base, curr, advisory_latency=True)
        assert advisory.ok
        assert any("latency_s p50" in w for w in advisory.warnings)

    def test_absolute_floor_suppresses_tiny_noise(self):
        base_events = [
            make_event(request_id=i, latency_s=0.0008) for i in range(10)
        ]
        curr_events = [
            make_event(request_id=i, latency_s=0.0013) for i in range(10)
        ]
        base, curr = self._summaries(base_events, curr_events)
        # +62% relative but +0.5ms absolute: below the default floor.
        assert compare_summaries(base, curr).ok

    def test_min_count_skips_anecdotal_cohorts(self):
        base, curr = self._summaries(
            [make_event(nodes_settled=10)], [make_event(nodes_settled=99)]
        )
        assert compare_summaries(base, curr, min_count=3).ok
        assert not compare_summaries(base, curr, min_count=1).ok

    def test_cohort_coverage_changes_surface(self):
        base, curr = self._summaries(
            [make_event(algorithm="EDC"), make_event(algorithm="CE")],
            [make_event(algorithm="EDC"), make_event(algorithm="LBC")],
        )
        diff = compare_summaries(base, curr)
        assert diff.ok  # coverage changes never fail
        assert any("CE/" in w for w in diff.warnings)
        assert any("LBC/" in n for n in diff.notes)

    def test_counter_disappearance_fails(self):
        base_events = [make_event(request_id=i) for i in range(5)]
        curr_events = [make_event(request_id=i) for i in range(5)]
        for event in curr_events:
            del event["counters"]["network_pages"]
        base, curr = self._summaries(base_events, curr_events)
        diff = compare_summaries(base, curr)
        assert any("network_pages" in f for f in diff.failures)

    def test_kind_mismatch_is_not_comparable(self):
        base = summarize_events([make_event()])
        bench = InsightSummary(kind="bench")
        diff = compare_summaries(base, bench)
        assert any("kind mismatch" in f for f in diff.failures)

    def test_compare_records_a_registered_span(self):
        base = summarize_events([make_event()])
        with tracing.span("query.test-harness") as root:
            compare_summaries(base, base)
        assert [child.name for child in root.children] == ["insight.compare"]


class TestTopEvents:
    def test_slowest_first_with_cohort_filter(self):
        events = [
            make_event(request_id=i, latency_s=0.001 * (i + 1))
            for i in range(8)
        ] + [
            make_event(
                request_id=100 + i, algorithm="LBC", latency_s=0.5 + i
            )
            for i in range(2)
        ]
        top = top_events(events, k=3)
        assert [e["request_id"] for e in top] == [101, 100, 7]
        assert all("cohort" in e for e in top)
        only_edc = top_events(events, k=3, cohort="EDC")
        assert [e["request_id"] for e in only_edc] == [7, 6, 5]


class TestSummarySources:
    def test_event_log_source_counts_corrupt_lines(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        write_log(path, [make_event(request_id=i) for i in range(4)])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "query", "truncat')
        summary = load_summary(path)
        assert summary.events == 4
        assert summary.corrupt_lines == 1

    def test_saved_report_source_round_trips(self, tmp_path):
        log = str(tmp_path / "events.jsonl")
        write_log(log, [make_event(request_id=i) for i in range(6)])
        report = str(tmp_path / "report.json")
        assert insight_main(["summarize", log, "--out", report]) == EXIT_OK
        revived = load_summary(report)
        direct = load_summary(log)
        assert revived.cohorts.keys() == direct.cohorts.keys()
        assert compare_summaries(direct, revived).ok

    def test_bench_artifact_source(self, tmp_path):
        artifact = {
            "schema": "repro-bench",
            "schema_version": 1,
            "suite": "default",
            "suite_version": 2,
            "benchmarks": [
                {
                    "id": "query/CE/au/q2/cold",
                    "counters": {"nodes_settled": 300, "network_pages": 11},
                    "params": {"repeats": 3},
                    "timing_s": {"p50": 0.007, "mean": 0.008, "max": 0.012},
                }
            ],
        }
        path = str(tmp_path / "BENCH_test.json")
        with open(path, "w") as handle:
            json.dump(artifact, handle)
        summary = load_summary(path)
        assert summary.kind == "bench"
        digest = summary.cohorts["query/CE/au/q2/cold"]
        assert digest.counters["nodes_settled"]["mean"] == 300
        assert digest.latency_s["p50"] == pytest.approx(0.007)
        # Two bench artifacts diff with the same machinery as two logs.
        worse = json.loads(json.dumps(artifact))
        worse["benchmarks"][0]["counters"]["nodes_settled"] = 600
        worse_path = str(tmp_path / "BENCH_worse.json")
        with open(worse_path, "w") as handle:
            json.dump(worse, handle)
        diff = compare_summaries(summary, load_summary(worse_path))
        assert any("nodes_settled" in f for f in diff.failures)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_summary(str(tmp_path / "absent.jsonl"))


class TestCLI:
    def test_exit_codes_match_the_bench_convention(self, tmp_path, capsys):
        base = str(tmp_path / "base.jsonl")
        same = str(tmp_path / "same.jsonl")
        worse = str(tmp_path / "worse.jsonl")
        events = [make_event(request_id=i) for i in range(8)]
        write_log(base, events)
        write_log(same, events)
        write_log(
            worse,
            [
                make_event(request_id=i, nodes_settled=250)
                for i in range(8)
            ],
        )
        assert insight_main(["summarize", base]) == EXIT_OK
        assert insight_main(["compare", base, same]) == EXIT_OK
        assert insight_main(["compare", base, worse]) == EXIT_REGRESSION
        out = capsys.readouterr().out
        assert "nodes_settled" in out
        assert "REGRESSION" in out
        assert (
            insight_main(["compare", base, str(tmp_path / "nope.jsonl")])
            == EXIT_ERROR
        )
        assert (
            insight_main(["summarize", str(tmp_path / "nope.jsonl")])
            == EXIT_ERROR
        )

    def test_json_reporters_emit_parseable_payloads(self, tmp_path, capsys):
        log = str(tmp_path / "events.jsonl")
        write_log(log, [make_event(request_id=i) for i in range(5)])
        assert insight_main(["summarize", log, "--json"]) == EXIT_OK
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-insight"
        assert insight_main(["compare", log, log, "--json"]) == EXIT_OK
        diff = json.loads(capsys.readouterr().out)
        assert diff["ok"] is True
        assert insight_main(["top", log, "-k", "2", "--json"]) == EXIT_OK
        top = json.loads(capsys.readouterr().out)
        assert len(top) == 2

    def test_top_lists_slowest_with_trace_ids(self, tmp_path, capsys):
        log = str(tmp_path / "events.jsonl")
        write_log(
            log,
            [
                make_event(request_id=i, latency_s=0.001 * (i + 1))
                for i in range(6)
            ],
        )
        assert insight_main(["top", log, "-k", "3"]) == EXIT_OK
        out = capsys.readouterr().out
        assert "trace-5" in out and "trace-2" not in out

    def test_repro_cli_dispatches_insight(self, tmp_path, capsys):
        from repro.cli import main as repro_main

        log = str(tmp_path / "events.jsonl")
        write_log(log, [make_event()])
        assert repro_main(["insight", "summarize", log]) == EXIT_OK
        assert "cohorts" in capsys.readouterr().out


class SleepyAlgorithm:
    """Configurable injected latency (the molasses hook, adjustable)."""

    name = "molasses"
    delay_s = 0.0

    def run(self, workspace, queries):
        with tracing.span("query.molasses") as root:
            if self.delay_s:
                time.sleep(self.delay_s)
        stats = QueryStats(algorithm=self.name, trace_id=root.trace_id)
        return SkylineResult(points=[], stats=stats, trace=root)


def _run_service_log(tmp_path, name, delay_s, queries_per_algo=6):
    """One service run with an event log; returns the log path."""
    network = build_random_network(90, 50, seed=61, detour_max=0.6)
    objects = place_random_objects(network, 25, seed=62, attribute_count=2)
    workspace = Workspace.build(network, objects, distance_backend="astar")
    path = str(tmp_path / f"{name}.jsonl")

    class _Sleepy(SleepyAlgorithm):
        pass

    _Sleepy.delay_s = delay_s
    service = QueryService(
        workspace,
        workers=2,
        batch_window_s=0.0,
        event_log_path=path,
        algorithms={**SERVICE_ALGORITHMS, "molasses": _Sleepy},
    )
    try:
        for i in range(queries_per_algo):
            locations = random_locations(network, 2, seed=100 + i)
            service.query("LBC", locations)
            service.query("molasses", locations)
    finally:
        service.close()
    return path


class TestInjectedRegressionEndToEnd:
    def test_molasses_latency_flips_compare_between_two_logs(self, tmp_path):
        baseline = _run_service_log(tmp_path, "base", delay_s=0.0)
        regressed = _run_service_log(tmp_path, "curr", delay_s=0.12)
        # Deterministic exit 0 on an unchanged log, across repeats.
        for _ in range(2):
            assert (
                insight_main(["compare", baseline, baseline]) == EXIT_OK
            )
        assert (
            insight_main(["compare", baseline, regressed])
            == EXIT_REGRESSION
        )
        base_summary = load_summary(baseline)
        diff = compare_summaries(base_summary, load_summary(regressed))
        molasses_key = cohort_key("molasses", "", 2, "completed")
        assert any(
            molasses_key in f and "latency_s" in f for f in diff.failures
        )
        # The untouched algorithm's counters did not false-positive.
        assert not any(
            "LBC/" in f and "nodes_settled" in f for f in diff.failures
        )


class TestLiveHub:
    def test_observe_keys_and_digests(self):
        hub = InsightHub()
        seen = []
        hub._on_new_cohort = seen.append
        for i in range(20):
            hub.observe(
                algorithm="EDC",
                backend="dijkstra",
                query_count=5,
                outcome="completed",
                latency_s=0.001 * (i + 1),
                counters={
                    "nodes_settled": 100 + i,
                    "network_pages": 3,
                    "index_pages": 2,
                },
            )
        key = cohort_key("EDC", "dijkstra", 5, "completed")
        assert hub.cohort_keys() == [key]
        assert hub.cohort_count_of(key) == 20
        assert hub.observed == 20
        report = hub.report()
        cohort = report["cohorts"][key]
        assert cohort["count"] == 20
        # page_misses digests the *sum* of every *_pages counter.
        assert cohort["counters"]["page_misses"]["mean"] == pytest.approx(
            5.0, rel=0.02
        )
        exact_p50 = exact_quantile(
            [0.001 * (i + 1) for i in range(20)], 0.5
        )
        assert cohort["latency_s"]["p50"] == pytest.approx(
            exact_p50, rel=hub.alpha
        )

    def test_new_cohort_callback_fires_once_per_cohort(self):
        seen = []
        hub = InsightHub(on_new_cohort=seen.append)
        for _ in range(3):
            hub.observe(
                algorithm="CE",
                backend="",
                query_count=1,
                outcome="failed",
                latency_s=0.001,
            )
        hub.observe(
            algorithm="CE",
            backend="astar",
            query_count=1,
            outcome="completed",
            latency_s=0.001,
        )
        assert seen == [
            cohort_key("CE", "", 1, "failed"),
            cohort_key("CE", "astar", 1, "completed"),
        ]

    def test_merged_latency_covers_all_cohorts(self):
        hub = InsightHub()
        for algorithm in ("CE", "EDC"):
            for i in range(10):
                hub.observe(
                    algorithm=algorithm,
                    backend="dijkstra",
                    query_count=2,
                    outcome="completed",
                    latency_s=0.002 * (i + 1),
                )
        merged = hub.merged_latency()
        assert merged.count == 20


@pytest.fixture(scope="module")
def insight_service(tmp_path_factory):
    """A service with insight + event log, a query burst, both views."""
    tmp_path = tmp_path_factory.mktemp("insight-e2e")
    network = build_random_network(110, 70, seed=71, detour_max=0.6)
    objects = place_random_objects(network, 35, seed=72, attribute_count=2)
    workspace = Workspace.build(network, objects, distance_backend="astar")
    path = str(tmp_path / "events.jsonl")
    service = QueryService(
        workspace, workers=2, batch_window_s=0.0, event_log_path=path
    )
    try:
        for i in range(10):
            queries = random_locations(network, 2 + (i % 3), seed=200 + i)
            algorithm = ("LBC", "EDC")[i % 2]
            service.query(algorithm, queries)
        service.events.flush()
        live = service.insight_report()
        metrics_text = service.metrics.render()
        events = read_events(path)
    finally:
        service.close()
    return live, events, metrics_text


class TestLiveOfflineAgreement:
    """The acceptance contract: /insightz must agree with offline
    summarize over the same events within the sketch's alpha."""

    def test_same_cohorts_same_counts(self, insight_service):
        live, events, _ = insight_service
        offline = summarize_events(events)
        assert set(live["cohorts"]) == set(offline.cohorts)
        for key, cohort in live["cohorts"].items():
            assert cohort["count"] == offline.cohorts[key].count
        assert live["observed"] == offline.events

    def test_latency_quantiles_agree_within_alpha(self, insight_service):
        live, events, _ = insight_service
        alpha = live["alpha"]
        offline = summarize_events(events)
        for key, cohort in live["cohorts"].items():
            assert not cohort["collapsed"]
            exact = offline.cohorts[key].latency_s
            for stat in ("p50", "p90", "p99"):
                assert (
                    abs(cohort["latency_s"][stat] - exact[stat])
                    <= alpha * exact[stat] + 1e-12
                ), f"{key} {stat}"

    def test_settled_digest_agrees_with_event_counters(self, insight_service):
        live, events, _ = insight_service
        alpha = live["alpha"]
        for key, cohort in live["cohorts"].items():
            exact = sorted(
                float(e["counters"].get("nodes_settled", 0))
                for e in events
                if cohort_of_event(e) == key
            )
            live_p50 = cohort["counters"]["nodes_settled"]["p50"]
            exact_p50 = exact_quantile(exact, 0.5)
            assert abs(live_p50 - exact_p50) <= alpha * exact_p50 + 1e-12
            # Means are exact on both sides.
            assert cohort["counters"]["nodes_settled"][
                "mean"
            ] == pytest.approx(sum(exact) / len(exact))

    def test_event_log_queue_depth_gauge_is_exported(self, insight_service):
        from repro.obs.metrics import parse_prometheus_text

        _, _, metrics_text = insight_service
        families = parse_prometheus_text(metrics_text)
        assert "repro_event_log_queue_depth" in families
        name, labels, value = families["repro_event_log_queue_depth"][
            "samples"
        ][0]
        assert value == 0.0  # flushed before scraping
        totals = {
            labels["event"]: value
            for _, labels, value in families["repro_service_events_total"][
                "samples"
            ]
        }
        assert totals["emitted"] == totals["written"] + totals["dropped"]

    def test_cohort_labels_round_trip_through_prometheus_text(
        self, insight_service
    ):
        from repro.obs.metrics import parse_prometheus_text

        live, _, metrics_text = insight_service
        families = parse_prometheus_text(metrics_text)
        exported = {
            labels["cohort"]: value
            for _, labels, value in families["repro_insight_queries_total"][
                "samples"
            ]
        }
        # Commas inside |Q|[a,b) survive exposition and strict parsing.
        assert exported == {
            key: float(cohort["count"])
            for key, cohort in live["cohorts"].items()
        }

    def test_insight_disabled_service_answers_gracefully(self):
        network = build_random_network(40, 20, seed=81)
        objects = place_random_objects(network, 10, seed=82)
        workspace = Workspace.build(network, objects)
        service = QueryService(
            workspace, workers=1, insight_enabled=False
        )
        try:
            assert service.insight_report() == {"enabled": False}
            families = service.metrics.collect()
            assert "repro_insight_queries_total" not in families
        finally:
            service.close()
