"""I/O statistics counters.

The paper's headline cost metric is *network disk pages accessed* under a
1 MiB LRU buffer with 4 KiB pages.  Every storage-backed structure in the
library (network adjacency store, R-trees, the middle layer's B+-tree)
funnels its page requests through a :class:`BufferPool` that records hits
and misses into an :class:`IOStats` instance, so experiments can report
exactly the quantity Figures 5(a) and 6(a)/(d) plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class IOStats:
    """Mutable counters for logical and physical page accesses."""

    logical_reads: int = 0
    physical_reads: int = 0
    logical_writes: int = 0
    physical_writes: int = 0

    def record_read(self, hit: bool) -> None:
        """Record one logical read; a miss also counts one physical read."""
        self.logical_reads += 1
        if not hit:
            self.physical_reads += 1

    def record_write(self, flushed: bool) -> None:
        """Record one logical write; a flush also counts physically."""
        self.logical_writes += 1
        if flushed:
            self.physical_writes += 1

    @property
    def hit_ratio(self) -> float:
        """Buffer hit ratio over logical reads (1.0 when no reads yet)."""
        if self.logical_reads == 0:
            return 1.0
        return 1.0 - self.physical_reads / self.logical_reads

    def reset(self) -> None:
        """Zero all counters."""
        self.logical_reads = 0
        self.physical_reads = 0
        self.logical_writes = 0
        self.physical_writes = 0

    def snapshot(self) -> "IOSnapshot":
        """An immutable copy of the current counters."""
        return IOSnapshot(
            logical_reads=self.logical_reads,
            physical_reads=self.physical_reads,
            logical_writes=self.logical_writes,
            physical_writes=self.physical_writes,
        )


@dataclass(frozen=True, slots=True)
class IOSnapshot:
    """Immutable point-in-time view of :class:`IOStats`."""

    logical_reads: int
    physical_reads: int
    logical_writes: int
    physical_writes: int

    def __sub__(self, earlier: "IOSnapshot") -> "IOSnapshot":
        """Counter deltas between two snapshots (``later - earlier``)."""
        return IOSnapshot(
            logical_reads=self.logical_reads - earlier.logical_reads,
            physical_reads=self.physical_reads - earlier.physical_reads,
            logical_writes=self.logical_writes - earlier.logical_writes,
            physical_writes=self.physical_writes - earlier.physical_writes,
        )


@dataclass
class StatsRegistry:
    """Groups the per-component stats of one storage stack.

    A :class:`repro.network.storage.NetworkStore` and the indexes built
    over the same dataset each get their own :class:`IOStats`; the
    registry lets an experiment snapshot and diff all of them at once.
    """

    components: dict[str, IOStats] = field(default_factory=dict)

    def stats_for(self, name: str) -> IOStats:
        """The (lazily created) stats object for component ``name``."""
        if name not in self.components:
            self.components[name] = IOStats()
        return self.components[name]

    def total_physical_reads(self) -> int:
        """Physical reads summed over every registered component."""
        return sum(s.physical_reads for s in self.components.values())

    def reset(self) -> None:
        """Zero every component's counters."""
        for stats in self.components.values():
            stats.reset()

    def snapshot(self) -> dict[str, IOSnapshot]:
        """Immutable copies of every component's counters."""
        return {name: stats.snapshot() for name, stats in self.components.items()}
