"""Buffer pool over the simulated disk, with pluggable replacement.

The paper runs every experiment behind a **1 MiB LRU buffer** of
**4 KiB pages** (256 frames).  :class:`BufferPool` reproduces that cost
model: a page request is a *hit* (free) when the page is resident, a
*miss* (one physical read) otherwise.  LRU is the default (and the
paper's) policy; FIFO and CLOCK (second-chance) are provided for the
replacement-policy ablation in the benchmarks — CLOCK is what real
buffer managers approximate LRU with.

The pool is **thread-safe**: one internal lock covers the resident
map, the replacement state *and* the :class:`IOStats` increments, so
workers sharing a store never corrupt the recency order or lose
hit/miss updates (unguarded ``+=`` on the counters is a classic lost
update, and would make ``--stats`` undercount physical reads).
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.obs import tracing
from repro.storage.disk import DiskManager
from repro.storage.page import Page
from repro.storage.stats import IOStats

DEFAULT_BUFFER_BYTES = 1024 * 1024
"""Default total buffer size (1 MiB), matching the paper's setup."""

REPLACEMENT_POLICIES = ("lru", "fifo", "clock")


class BufferPool:
    """Fixed-capacity page cache with hit/miss accounting."""

    def __init__(
        self,
        disk: DiskManager,
        capacity_bytes: int = DEFAULT_BUFFER_BYTES,
        stats: IOStats | None = None,
        policy: str = "lru",
        component: str | None = None,
    ) -> None:
        frames = capacity_bytes // disk.page_size
        if frames < 1:
            raise ValueError(
                f"buffer of {capacity_bytes} bytes holds no "
                f"{disk.page_size}-byte page"
            )
        if policy not in REPLACEMENT_POLICIES:
            raise ValueError(
                f"unknown replacement policy {policy!r}; "
                f"choose from {REPLACEMENT_POLICIES}"
            )
        self._disk = disk
        self._frames = frames
        self._policy = policy
        self._resident: OrderedDict[int, Page] = OrderedDict()
        # CLOCK state: reference bits per resident page and a hand over
        # the insertion order.
        self._referenced: dict[int, bool] = {}
        # Access-frequency heatmap: per page id, how often it was
        # requested (hit) and how often that request went to disk
        # (miss).  O(distinct pages) memory, one dict increment per
        # fetch under the existing lock; `repro heatmap` renders it per
        # structure (adjacency vs R-tree vs B+-tree).
        self._page_hits: dict[int, int] = {}
        self._page_misses: dict[int, int] = {}
        # Guards residency, replacement state and stats increments; see
        # the module docstring.
        self._lock = threading.Lock()
        self.stats = stats if stats is not None else IOStats()
        # Span-accounting key: a physical read is charged to the active
        # trace span as "<component>_pages" ("network", "index",
        # "middle").  None = unattributed pool (unit tests).
        self.component = component
        self._miss_key = f"{component}_pages" if component else None

    @property
    def frame_count(self) -> int:
        """Number of page frames in the pool."""
        return self._frames

    @property
    def resident_count(self) -> int:
        """Pages currently cached."""
        return len(self._resident)

    @property
    def policy(self) -> str:
        return self._policy

    def fetch(self, page_id: int) -> Page:
        """Return a page, updating replacement state and counters."""
        with self._lock:
            page = self._resident.get(page_id)
            if page is not None:
                self.stats.record_read(hit=True)
                self._page_hits[page_id] = self._page_hits.get(page_id, 0) + 1
                if self._policy == "lru":
                    self._resident.move_to_end(page_id)
                elif self._policy == "clock":
                    self._referenced[page_id] = True
                return page
            page = self._disk.read(page_id)
            self.stats.record_read(hit=False)
            self._page_misses[page_id] = self._page_misses.get(page_id, 0) + 1
            if self._miss_key is not None:
                tracing.record(self._miss_key)
            if len(self._resident) >= self._frames:
                self._evict()
            self._resident[page_id] = page
            if self._policy == "clock":
                self._referenced[page_id] = False
            return page

    def _evict(self) -> None:
        if self._policy in ("lru", "fifo"):
            # LRU keeps recency order by move_to_end; FIFO never
            # reorders, so the head is the oldest either way.
            self._resident.popitem(last=False)
            return
        # CLOCK: sweep in residence order, clearing reference bits,
        # evicting the first unreferenced page.
        while True:
            page_id, page = next(iter(self._resident.items()))
            if self._referenced.get(page_id, False):
                self._referenced[page_id] = False
                self._resident.move_to_end(page_id)
            else:
                del self._resident[page_id]
                self._referenced.pop(page_id, None)
                return

    def is_resident(self, page_id: int) -> bool:
        """True if the page is currently cached (no state change)."""
        with self._lock:
            return page_id in self._resident

    def clear(self) -> None:
        """Drop every cached page (a 'cold' restart between experiments)."""
        with self._lock:
            self._resident.clear()
            self._referenced.clear()

    def page_accesses(self) -> dict[int, tuple[int, int]]:
        """Per-page ``(hits, misses)`` since the last stats reset.

        A consistent copy taken under the pool lock; the sum over all
        pages reconciles with ``stats.logical_reads`` /
        ``stats.physical_reads`` by construction.
        """
        with self._lock:
            pages = set(self._page_hits) | set(self._page_misses)
            return {
                page_id: (
                    self._page_hits.get(page_id, 0),
                    self._page_misses.get(page_id, 0),
                )
                for page_id in pages
            }

    def reset_stats(self) -> None:
        """Zero the hit/miss counters without evicting pages."""
        with self._lock:
            self.stats.reset()
            self._page_hits.clear()
            self._page_misses.clear()
