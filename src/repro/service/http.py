"""Stdlib JSON endpoint in front of a :class:`QueryService`.

No framework, no dependency: ``http.server.ThreadingHTTPServer`` with
one handler.  Routes:

* ``POST /query``  — body ``{"algorithm": "LBC", "query_nodes":
  [12, 857], "timeout_s": 5.0}`` (or ``"query_points": [{"edge": 3,
  "offset": 1.5}, {"node": 12}]``).  Answers with the skyline, the
  per-query stats row and timing.
* ``POST /mutate`` — body ``{"op": "update_edge", "edge_id": 3,
  "length": 2.5}`` / ``{"op": "add_object", ...}`` / ``{"op":
  "remove_object", "object_id": 7}``.  Runs behind the workspace's
  write lock.
* ``GET /healthz`` — readiness: version, uptime, in-flight count,
  queue depth and worker saturation (one signal for load balancers
  and the stall watchdog alike).
* ``GET /statsz``  — the service's full stats block (queue depth, shed
  count, latency percentiles, batch and engine/buffer counters).
* ``GET /metricsz`` — the shared metric registry in Prometheus text
  exposition format (``text/plain; version=0.0.4``).
* ``GET /slowlogz`` — the slow-query log: threshold, total slow count
  and the reservoir-sampled records, slowest first.
* ``GET /sloz``    — every declared objective's multi-window burn-rate
  verdict (see :mod:`repro.obs.slo`).
* ``GET /debugz``  — live in-flight span trees, per-thread active
  spans, queue/worker state and diagnostics-plane accounting.
* ``GET /insightz`` — rolling per-cohort latency/settled/page-miss
  digests from the insight hub (:mod:`repro.insight.live`); the live
  counterpart of ``repro insight summarize`` over the event log.

Trace correlation: a client may send ``X-Repro-Trace-Id`` on
``POST /query``; the id is stamped onto the request's root span (and
therefore into the wide event, the slow-query log and any flight
record) and echoed back on the response, success or failure.

Typed service failures map onto status codes: ``Overloaded`` → 503
(with ``Retry-After``), ``DeadlineExceeded`` → 504, ``BadRequest`` and
malformed input → 400, everything unexpected → 500.

``main()`` is the ``repro-serve`` console entry point (also reachable
as ``repro serve``).
"""

from __future__ import annotations

import argparse
import json
import re
import signal
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Sequence

from repro.core import Workspace
from repro.engine import BACKEND_NAMES, DEFAULT_BACKEND
from repro.network.graph import NetworkLocation, RoadNetwork
from repro.network.objects import SpatialObject
from repro.obs import install_signal_dump
from repro.service.errors import (
    BadRequest,
    DeadlineExceeded,
    Overloaded,
    ServiceClosed,
)
from repro.service.service import (
    DEFAULT_MAX_BATCH,
    DEFAULT_QUEUE_LIMIT,
    DEFAULT_SLOW_THRESHOLD_S,
    DEFAULT_TIMEOUT_S,
    DEFAULT_WORKERS,
    QueryService,
)

MAX_BODY_BYTES = 1 << 20  # requests are tiny; anything bigger is abuse

TRACE_ID_HEADER = "X-Repro-Trace-Id"
_TRACE_ID_RE = re.compile(r"^[A-Za-z0-9_-]{1,64}$")


def parse_query_locations(body: dict, network: RoadNetwork) -> list[NetworkLocation]:
    """Locations from ``query_nodes`` ids and/or ``query_points`` specs."""
    locations: list[NetworkLocation] = []
    nodes = body.get("query_nodes", [])
    if not isinstance(nodes, list):
        raise BadRequest("query_nodes must be a list of junction ids")
    for node in nodes:
        if not isinstance(node, int) or isinstance(node, bool):
            raise BadRequest(f"junction id must be an integer, got {node!r}")
        if not network.has_node(node):
            raise BadRequest(f"unknown junction id {node}")
        locations.append(network.location_at_node(node))
    points = body.get("query_points", [])
    if not isinstance(points, list):
        raise BadRequest("query_points must be a list of location objects")
    for spec in points:
        if not isinstance(spec, dict):
            raise BadRequest(f"query point must be an object, got {spec!r}")
        if spec.get("node") is not None:
            node = spec["node"]
            if not isinstance(node, int) or not network.has_node(node):
                raise BadRequest(f"unknown junction id {node!r}")
            locations.append(network.location_at_node(node))
        elif spec.get("edge") is not None:
            try:
                locations.append(
                    network.location_on_edge(
                        spec["edge"], float(spec.get("offset", 0.0))
                    )
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise BadRequest(f"bad on-edge query point {spec!r}: {exc}")
        else:
            raise BadRequest(
                f"query point needs a 'node' or 'edge' field, got {spec!r}"
            )
    if not locations:
        raise BadRequest("provide query_nodes and/or query_points")
    return locations


def result_payload(result) -> dict:
    """The JSON body of a successful ``/query`` response."""
    return {
        "algorithm": result.stats.algorithm,
        "skyline": [
            {"object_id": p.object_id, "vector": list(p.vector)}
            for p in result
        ],
        "stats": result.stats.as_row(),
    }


class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that owns the service it fronts."""

    daemon_threads = True
    allow_reuse_address = True
    # socketserver's default accept backlog (5) resets connections when
    # a burst of clients connects at once; admission control belongs to
    # the QueryService queue, not the kernel's SYN backlog.
    request_queue_size = 128

    def __init__(self, address, service: QueryService, quiet: bool = True):
        super().__init__(address, ServiceRequestHandler)
        self.service = service
        self.quiet = quiet
        self.error_responses = 0  # 5xx count, asserted on by the CI smoke

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class ServiceRequestHandler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not self.server.quiet:
            sys.stderr.write(
                "%s - %s\n" % (self.address_string(), format % args)
            )

    def _send_json(self, status: int, payload: dict, headers=()) -> None:
        if status >= 500:
            self.server.error_responses += 1
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        trace_id = getattr(self, "_echo_trace_id", None)
        if trace_id:
            # Echo the client's correlation id on every outcome, so a
            # 503/504 is still joinable against server-side telemetry.
            self.send_header(TRACE_ID_HEADER, trace_id)
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _client_trace_id(self) -> str | None:
        """Validated ``X-Repro-Trace-Id`` header value, if present."""
        raw = self.headers.get(TRACE_ID_HEADER)
        if raw is None:
            return None
        if not _TRACE_ID_RE.match(raw):
            raise BadRequest(
                f"{TRACE_ID_HEADER} must match {_TRACE_ID_RE.pattern}"
            )
        return raw

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        if status >= 500:
            self.server.error_responses += 1
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length > MAX_BODY_BYTES:
            raise BadRequest(f"request body over {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b"{}"
        try:
            body = json.loads(raw or b"{}")
        except json.JSONDecodeError as exc:
            raise BadRequest(f"invalid JSON body: {exc}")
        if not isinstance(body, dict):
            raise BadRequest("request body must be a JSON object")
        return body

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        try:
            if self.path == "/healthz":
                self._send_json(200, self.server.service.health_dict())
            elif self.path == "/statsz":
                self._send_json(200, self.server.service.stats_dict())
            elif self.path == "/metricsz":
                self._send_text(
                    200,
                    self.server.service.metrics.render(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif self.path == "/slowlogz":
                self._send_json(200, self.server.service.slow_queries.to_dict())
            elif self.path == "/sloz":
                self._send_json(200, self.server.service.slo_report())
            elif self.path == "/debugz":
                self._send_json(200, self.server.service.debug_dict())
            elif self.path == "/insightz":
                self._send_json(200, self.server.service.insight_report())
            else:
                self._send_json(404, {"error": f"no such path {self.path}"})
        except Exception as exc:
            self._send_json(500, {"error": f"internal error: {exc}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._echo_trace_id = None
        try:
            self._echo_trace_id = self._client_trace_id()
            body = self._read_body()
            if self.path == "/query":
                self._handle_query(body)
            elif self.path == "/mutate":
                self._handle_mutate(body)
            else:
                self._send_json(404, {"error": f"no such path {self.path}"})
        except BadRequest as exc:
            self._send_json(400, {"error": str(exc)})
        except Overloaded as exc:
            self._send_json(
                503,
                {
                    "error": str(exc),
                    "queue_depth": exc.queue_depth,
                    "queue_limit": exc.queue_limit,
                },
                headers=[("Retry-After", f"{exc.retry_after_s:.3f}")],
            )
        except DeadlineExceeded as exc:
            self._send_json(504, {"error": str(exc)})
        except ServiceClosed as exc:
            self._send_json(503, {"error": str(exc)})
        except (KeyError, ValueError, TypeError) as exc:
            self._send_json(400, {"error": f"{type(exc).__name__}: {exc}"})
        except Exception as exc:
            self._send_json(500, {"error": f"internal error: {exc}"})

    def _handle_query(self, body: dict) -> None:
        service = self.server.service
        algorithm = body.get("algorithm", "LBC")
        timeout_s = body.get("timeout_s")
        if timeout_s is not None:
            timeout_s = float(timeout_s)
        queries = parse_query_locations(body, service.workspace.network)
        result = service.query(
            algorithm,
            queries,
            timeout_s=timeout_s,
            trace_id=self._echo_trace_id,
        )
        payload = result_payload(result)
        payload["trace_id"] = result.stats.trace_id
        self._send_json(200, payload)

    def _handle_mutate(self, body: dict) -> None:
        service = self.server.service
        op = body.get("op")
        if op == "update_edge":
            service.update_edge_length(
                int(body["edge_id"]), float(body["length"])
            )
        elif op == "add_object":
            network = service.workspace.network
            if body.get("node") is not None:
                location = network.location_at_node(int(body["node"]))
            else:
                location = network.location_on_edge(
                    int(body["edge_id"]), float(body.get("offset", 0.0))
                )
            service.add_object(
                SpatialObject(
                    int(body["object_id"]),
                    location,
                    tuple(float(a) for a in body.get("attributes", [])),
                )
            )
        elif op == "remove_object":
            service.remove_object(int(body["object_id"]))
        else:
            raise BadRequest(
                f"unknown op {op!r}; choose update_edge, add_object "
                "or remove_object"
            )
        self._send_json(
            200, {"ok": True, "workspace_version": service.workspace.version}
        )


# ----------------------------------------------------------------------
# CLI entry point (repro-serve / repro serve)
# ----------------------------------------------------------------------
def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    """Shared between ``repro-serve`` and the ``repro serve`` subcommand."""
    parser.add_argument("network", help="network file (see `repro generate`)")
    parser.add_argument("objects", help="object file")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8314, help="0 picks a free port"
    )
    parser.add_argument("--workers", type=int, default=DEFAULT_WORKERS)
    parser.add_argument("--queue-limit", type=int, default=DEFAULT_QUEUE_LIMIT)
    parser.add_argument("--max-batch", type=int, default=DEFAULT_MAX_BATCH)
    parser.add_argument(
        "--timeout-s", type=float, default=DEFAULT_TIMEOUT_S,
        help="default per-request deadline",
    )
    parser.add_argument(
        "--distance-backend",
        choices=list(BACKEND_NAMES),
        default=DEFAULT_BACKEND,
    )
    parser.add_argument(
        "--unpaged", action="store_true",
        help="skip disk-cost simulation (faster, no page accounting)",
    )
    parser.add_argument(
        "--trace-dir", default=None,
        help="export retained request traces as JSON here on shutdown",
    )
    parser.add_argument(
        "--slow-threshold-s", type=float, default=DEFAULT_SLOW_THRESHOLD_S,
        help="requests slower than this land in the slow-query log",
    )
    parser.add_argument(
        "--event-log", default=None,
        help="append one wide JSONL event per query to this file",
    )
    parser.add_argument(
        "--flight-dir", default=None,
        help="write flight-record dumps (errors, slow queries, stalls, "
        "SIGUSR2) to this directory",
    )
    parser.add_argument(
        "--stall-deadline-s", type=float, default=None,
        help="flag in-flight queries with no counter progress for this "
        "long (off by default)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve multi-source skyline queries over HTTP",
    )
    add_serve_arguments(parser)
    return parser


def run_serve(args) -> int:
    """Build the workspace, start the service, block until a signal."""
    from repro.datasets import load_network, load_objects

    network = load_network(args.network)
    objects = load_objects(network, args.objects)
    workspace = Workspace.build(
        network,
        objects,
        paged=not args.unpaged,
        distance_backend=args.distance_backend,
    )
    service = QueryService(
        workspace,
        workers=args.workers,
        queue_limit=args.queue_limit,
        default_timeout_s=args.timeout_s,
        max_batch=args.max_batch,
        slow_threshold_s=args.slow_threshold_s,
        trace_export_dir=args.trace_dir,
        event_log_path=args.event_log,
        flight_dir=args.flight_dir,
        stall_deadline_s=args.stall_deadline_s,
    )
    # Operator button: SIGUSR2 forces a flight-record dump (no-op when
    # --flight-dir is unset or the platform lacks the signal).
    install_signal_dump(service.recorder)
    server = ServiceHTTPServer(
        (args.host, args.port), service, quiet=not args.verbose
    )
    print(
        f"serving {args.network} ({network.node_count} junctions, "
        f"{len(objects)} objects) on {server.url}",
        flush=True,
    )

    def _shutdown(signum, frame):
        # serve_forever() must be unblocked from another thread.
        threading.Thread(target=server.shutdown, daemon=True).start()

    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, _shutdown)
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        server.server_close()
        service.close()
        if args.trace_dir:
            paths = service.tracer.save(args.trace_dir)
            print(f"saved {len(paths)} traces to {args.trace_dir}", flush=True)
        report = service.slo_report()
        for objective in report["objectives"]:
            verdict = "VIOLATING" if objective["violating"] else "ok"
            print(
                f"slo {objective['name']}: {verdict} "
                f"target={objective['target']} "
                f"compliance={objective['compliance']} "
                f"({objective['good']:.0f}/{objective['total']:.0f} good)",
                flush=True,
            )
        if args.event_log and service.events is not None:
            stats = service.events.stats()
            print(
                f"wide events: {stats['written']} written, "
                f"{stats['dropped']} dropped -> {args.event_log}",
                flush=True,
            )
        print("shutdown complete", flush=True)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    return run_serve(build_serve_parser().parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
