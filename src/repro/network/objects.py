"""Data objects living on the road network.

The paper's object set ``D`` consists of points extracted from network
edges (hotels, restaurants, …).  Each object knows its on-network
location and may carry *static non-spatial attributes* (e.g. hotel
price) — the extension discussed at the end of Section 4.3, where such
attributes join the distance vector as pre-known dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.columnar.store import CoordinateColumns
from repro.geometry.mbr import MBR
from repro.index.rtree import DEFAULT_MAX_ENTRIES, RTree
from repro.network.graph import NetworkLocation, RoadNetwork
from repro.storage.binding import NodePager


@dataclass(frozen=True, slots=True)
class SpatialObject:
    """A data object on the network, optionally with static attributes."""

    object_id: int
    location: NetworkLocation
    attributes: tuple[float, ...] = ()

    @property
    def point(self):
        """Planar coordinates (for Euclidean reasoning and indexing)."""
        return self.location.point


@dataclass
class ObjectSet:
    """An immutable-by-convention collection of spatial objects.

    Keeps a per-edge map so wavefront expansions can ask "which objects
    sit on this edge?" in O(1) — the in-memory complement of the
    disk-based middle layer.
    """

    network: RoadNetwork
    objects: list[SpatialObject] = field(default_factory=list)
    _by_id: dict[int, SpatialObject] = field(default_factory=dict, repr=False)
    _by_edge: dict[int, list[SpatialObject]] = field(default_factory=dict, repr=False)
    _by_node: dict[int, list[SpatialObject]] = field(default_factory=dict, repr=False)

    @classmethod
    def build(
        cls, network: RoadNetwork, objects: Iterable[SpatialObject]
    ) -> "ObjectSet":
        obj_set = cls(network=network)
        for obj in objects:
            obj_set._add(obj)
        return obj_set

    def _add(self, obj: SpatialObject) -> None:
        if obj.object_id in self._by_id:
            raise ValueError(f"duplicate object id {obj.object_id}")
        if any(a < 0 for a in obj.attributes):
            # Zero pads the MBR lower-bound vectors used for subtree
            # pruning; negative attribute domains would break that.
            # Shift such attributes to a non-negative range upstream.
            raise ValueError(
                f"object {obj.object_id} has a negative attribute; "
                "attributes must be non-negative (minimisation convention)"
            )
        loc = obj.location
        if loc.edge_id is not None:
            edge = self.network.edge(loc.edge_id)  # KeyError for bad edges
            if not 0.0 <= loc.offset <= edge.length:
                raise ValueError(
                    f"object {obj.object_id} offset {loc.offset} outside edge "
                    f"{loc.edge_id} of length {edge.length}"
                )
            self._by_edge.setdefault(loc.edge_id, []).append(obj)
        else:
            assert loc.node_id is not None
            if not self.network.has_node(loc.node_id):
                raise KeyError(f"object {obj.object_id} on missing node {loc.node_id}")
            self._by_node.setdefault(loc.node_id, []).append(obj)
        self.objects.append(obj)
        self._by_id[obj.object_id] = obj

    # ------------------------------------------------------------------
    # Mutation (used by Workspace.add_object / remove_object, which keep
    # the derived indexes in sync; mutate through those when a workspace
    # exists)
    # ------------------------------------------------------------------
    def add(self, obj: SpatialObject) -> None:
        """Add one object (validates id uniqueness and placement)."""
        if self.objects and len(obj.attributes) != self.attribute_count:
            raise ValueError(
                f"object {obj.object_id} has {len(obj.attributes)} attributes; "
                f"this set carries {self.attribute_count}"
            )
        self._add(obj)

    def remove(self, object_id: int) -> SpatialObject:
        """Remove and return an object by id (KeyError when absent)."""
        obj = self._by_id.pop(object_id)  # KeyError for unknown ids
        self.objects.remove(obj)
        loc = obj.location
        if loc.edge_id is not None:
            bucket = self._by_edge[loc.edge_id]
            bucket.remove(obj)
            if not bucket:
                del self._by_edge[loc.edge_id]
        else:
            bucket = self._by_node[loc.node_id]
            bucket.remove(obj)
            if not bucket:
                del self._by_node[loc.node_id]
        return obj

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.objects)

    def __iter__(self) -> Iterator[SpatialObject]:
        return iter(self.objects)

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._by_id

    def get(self, object_id: int) -> SpatialObject:
        return self._by_id[object_id]

    def on_edge(self, edge_id: int) -> list[SpatialObject]:
        """Objects located on an edge's interior."""
        return self._by_edge.get(edge_id, [])

    def at_node(self, node_id: int) -> list[SpatialObject]:
        """Objects located exactly at a junction."""
        return self._by_node.get(node_id, [])

    @property
    def attribute_count(self) -> int:
        """Number of static attributes per object (0 when purely spatial)."""
        return len(self.objects[0].attributes) if self.objects else 0

    def validate_uniform_attributes(self) -> None:
        """All objects must carry the same number of static attributes."""
        counts = {len(obj.attributes) for obj in self.objects}
        if len(counts) > 1:
            raise ValueError(f"inconsistent attribute counts: {sorted(counts)}")

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def coordinate_columns(self) -> CoordinateColumns:
        """The objects' planar coordinates as a column store.

        Row ``i`` corresponds to ``self.objects[i]``; feed the result to
        columnar kernels (batch distances, Hilbert bulk-load) that want
        flat buffers instead of per-object tuples.
        """
        return CoordinateColumns.from_points(obj.point for obj in self.objects)

    def build_rtree(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        pager: NodePager | None = None,
        method: str = "str",
    ) -> RTree:
        """A packed R-tree over the objects' planar points.

        This is the object index of the paper's experiments ("the
        objects are also indexed by an R-tree").  ``method`` selects the
        packing: ``"str"`` (sort-tile-recursive, the default) or
        ``"hilbert"`` (curve-ordered bulk load over the coordinate
        column store — no per-entry tuples during the sort).
        """
        if method == "hilbert":
            return RTree.bulk_load_columns(
                self.coordinate_columns(),
                self.objects,
                max_entries=max_entries,
                pager=pager,
            )
        if method != "str":
            raise ValueError(f"unknown packing method: {method!r}")
        return RTree.bulk_load(
            ((MBR.from_point(obj.point), obj) for obj in self.objects),
            max_entries=max_entries,
            pager=pager,
        )
