"""Unit tests for repro.geometry.mbr."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import MBR, Point

finite = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False)
points = st.builds(Point, finite, finite)


@st.composite
def mbrs(draw):
    x1, x2 = sorted((draw(finite), draw(finite)))
    y1, y2 = sorted((draw(finite), draw(finite)))
    return MBR(x1, y1, x2, y2)


class TestMBRConstruction:
    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            MBR(1, 0, 0, 1)
        with pytest.raises(ValueError):
            MBR(0, 1, 1, 0)

    def test_from_point_is_zero_area(self):
        r = MBR.from_point(Point(2, 3))
        assert r.area == 0.0
        assert r.contains_point(Point(2, 3))

    def test_from_points(self):
        r = MBR.from_points([Point(1, 5), Point(-2, 3), Point(4, -1)])
        assert (r.min_x, r.min_y, r.max_x, r.max_y) == (-2, -1, 4, 5)

    def test_from_points_empty_raises(self):
        with pytest.raises(ValueError):
            MBR.from_points([])

    def test_union_all(self):
        r = MBR.union_all([MBR(0, 0, 1, 1), MBR(2, -1, 3, 0.5)])
        assert (r.min_x, r.min_y, r.max_x, r.max_y) == (0, -1, 3, 1)

    def test_union_all_empty_raises(self):
        with pytest.raises(ValueError):
            MBR.union_all([])


class TestMBRGeometry:
    def test_dimensions(self):
        r = MBR(0, 0, 4, 3)
        assert r.width == 4
        assert r.height == 3
        assert r.area == 12
        assert r.perimeter == 14
        assert r.center == Point(2, 1.5)

    def test_contains_point_boundary(self):
        r = MBR(0, 0, 1, 1)
        assert r.contains_point(Point(0, 0))
        assert r.contains_point(Point(1, 1))
        assert not r.contains_point(Point(1.0001, 0.5))

    def test_contains_rectangle(self):
        outer, inner = MBR(0, 0, 10, 10), MBR(2, 2, 5, 5)
        assert outer.contains(inner)
        assert not inner.contains(outer)
        assert outer.contains(outer)

    def test_intersects(self):
        a = MBR(0, 0, 2, 2)
        assert a.intersects(MBR(1, 1, 3, 3))
        assert a.intersects(MBR(2, 2, 3, 3))  # corner touch
        assert not a.intersects(MBR(2.1, 2.1, 3, 3))

    def test_union(self):
        r = MBR(0, 0, 1, 1).union(MBR(2, 2, 3, 3))
        assert (r.min_x, r.min_y, r.max_x, r.max_y) == (0, 0, 3, 3)

    def test_extended_to(self):
        r = MBR(0, 0, 1, 1).extended_to(Point(-1, 2))
        assert (r.min_x, r.min_y, r.max_x, r.max_y) == (-1, 0, 1, 2)

    def test_enlargement(self):
        base = MBR(0, 0, 1, 1)
        assert base.enlargement(MBR(0.2, 0.2, 0.8, 0.8)) == 0.0
        assert base.enlargement(MBR(0, 0, 2, 1)) == pytest.approx(1.0)


class TestMindist:
    def test_zero_inside(self):
        assert MBR(0, 0, 2, 2).mindist(Point(1, 1)) == 0.0

    def test_axis_aligned_outside(self):
        assert MBR(0, 0, 1, 1).mindist(Point(3, 0.5)) == 2.0

    def test_corner_outside(self):
        assert MBR(0, 0, 1, 1).mindist(Point(4, 5)) == 5.0

    def test_maxdist_at_least_mindist(self):
        r = MBR(0, 0, 1, 1)
        p = Point(2, 2)
        assert r.maxdist(p) >= r.mindist(p)

    @given(mbrs(), points)
    def test_mindist_is_lower_bound_of_corner_distances(self, r, p):
        corners = [
            Point(r.min_x, r.min_y),
            Point(r.min_x, r.max_y),
            Point(r.max_x, r.min_y),
            Point(r.max_x, r.max_y),
        ]
        lower = r.mindist(p)
        for corner in corners:
            assert lower <= p.distance_to(corner) + 1e-9

    @given(mbrs(), points)
    def test_maxdist_is_upper_bound_of_center_distance(self, r, p):
        assert r.maxdist(p) + 1e-9 >= p.distance_to(r.center)

    @given(mbrs(), mbrs())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains(a)
        assert u.contains(b)

    @given(mbrs(), mbrs())
    def test_enlargement_non_negative(self, a, b):
        assert a.enlargement(b) >= -1e-9
