"""Wide-event log: builder validation, rotation, backpressure, and
service-level reconciliation against QueryStats."""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from conftest import (
    build_random_network,
    place_random_objects,
    random_locations,
)
from repro.core import Workspace
from repro.core.stats import SPAN_COUNTER_FIELDS, QueryStats
from repro.obs.events import (
    WIDE_EVENT_VERSION,
    EventLog,
    EventReader,
    iter_events,
    read_events,
    wide_event,
)
from repro.service import QueryService


class TestWideEventBuilder:
    def test_canonical_shape(self):
        event = wide_event(
            request_id=7,
            algorithm="LBC",
            outcome="completed",
            trace_id="abc",
            latency_s=0.25,
            span_duration_s=0.2,
            batch_id=3,
            engine_backend="astar",
            query_count=2,
            query_nodes=[1, 2],
            skyline_count=5,
            candidate_count=9,
            counters={"nodes_settled": 10, "network_pages": 4},
        )
        assert event["event"] == "query"
        assert event["v"] == WIDE_EVENT_VERSION
        assert event["request_id"] == 7
        assert event["outcome"] == "completed"
        assert event["trace_id"] == "abc"
        assert event["batch_id"] == 3
        assert event["counters"] == {"nodes_settled": 10, "network_pages": 4}
        assert "error" not in event
        json.dumps(event)  # must be JSON-serialisable as built

    def test_error_and_extras_blocks_are_optional(self):
        event = wide_event(
            request_id=1,
            algorithm="CE",
            outcome="failed",
            error="ValueError: boom",
            extras={"shard": 2},
        )
        assert event["error"] == "ValueError: boom"
        assert event["extras"] == {"shard": 2}

    @pytest.mark.parametrize(
        "counters",
        [{"nodes_settled": "10"}, {"ok": True}, {"": 1}, {3: 1.0}],
    )
    def test_non_numeric_counters_rejected_at_the_producer(self, counters):
        with pytest.raises(TypeError):
            wide_event(
                request_id=1,
                algorithm="LBC",
                outcome="completed",
                counters=counters,
            )


class TestEventLog:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with EventLog(path) as log:
            for i in range(20):
                assert log.emit(
                    wide_event(
                        request_id=i, algorithm="LBC", outcome="completed"
                    )
                )
            assert log.flush()
        events = read_events(path)
        assert [e["request_id"] for e in events] == list(range(20))
        stats = log.stats()
        assert stats["emitted"] == 20
        assert stats["written"] == 20
        assert stats["dropped"] == 0

    def test_size_rotation_keeps_bounded_generations(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = EventLog(path, rotate_bytes=600, rotate_keep=2)
        for i in range(40):
            log.emit(
                wide_event(request_id=i, algorithm="LBC", outcome="completed")
            )
        log.close()
        assert log.rotations > 0
        assert os.path.exists(path)
        assert os.path.exists(f"{path}.1")
        assert os.path.exists(f"{path}.2")
        assert not os.path.exists(f"{path}.3")  # oldest dropped
        # Rotated generations read back oldest-first, newest last, with
        # strictly increasing ids within the retained window.
        ids = [e["request_id"] for e in iter_events(path)]
        assert ids == sorted(ids)
        assert ids[-1] == 39
        # Live file alone holds only the newest slice.
        live = [e["request_id"] for e in iter_events(path, include_rotated=False)]
        assert live == ids[-len(live):]

    def test_accounting_identity_after_close(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = EventLog(path)
        for i in range(10):
            log.emit(wide_event(request_id=i, algorithm="CE", outcome="completed"))
        log.close()
        stats = log.stats()
        assert stats["emitted"] == stats["written"] + stats["dropped"]
        # Emits after close never block and are counted as drops.
        assert not log.emit(
            wide_event(request_id=99, algorithm="CE", outcome="completed")
        )
        stats = log.stats()
        assert stats["emitted"] == stats["written"] + stats["dropped"]


class SlowWriterLog(EventLog):
    """EventLog whose writer blocks until released — drives the
    bounded-queue shedding path deterministically."""

    def __init__(self, *args, **kwargs):
        self.release = threading.Event()
        super().__init__(*args, **kwargs)

    def _write_record(self, event):
        self.release.wait(timeout=10.0)
        super()._write_record(event)


class TestBackpressure:
    def test_full_queue_sheds_and_counts_exactly(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = SlowWriterLog(path, queue_limit=4)
        emitted = 20
        accepted = sum(
            log.emit(
                wide_event(request_id=i, algorithm="LBC", outcome="completed")
            )
            for i in range(emitted)
        )
        # The writer is wedged: at most queue_limit + the one record the
        # writer already claimed can be in flight; the rest shed.
        assert accepted <= log._queue.maxsize + 1
        assert log.dropped == emitted - accepted
        assert log.emitted == emitted
        log.release.set()
        log.close()
        stats = log.stats()
        assert stats["emitted"] == emitted
        assert stats["written"] == accepted
        assert stats["emitted"] == stats["written"] + stats["dropped"]
        # Everything accepted made it to disk, in order.
        assert len(read_events(path)) == accepted

    def test_emit_never_blocks_under_a_wedged_writer(self, tmp_path):
        log = SlowWriterLog(str(tmp_path / "events.jsonl"), queue_limit=1)
        start = time.perf_counter()
        for i in range(100):
            log.emit(
                wide_event(request_id=i, algorithm="LBC", outcome="completed")
            )
        elapsed = time.perf_counter() - start
        assert elapsed < 1.0  # shedding, not stalling
        log.release.set()
        log.close()


@pytest.fixture(scope="module")
def served_events(tmp_path_factory):
    """A service with an event log, a burst of queries, the parsed log."""
    tmp_path = tmp_path_factory.mktemp("events")
    network = build_random_network(100, 60, seed=21, detour_max=0.6)
    objects = place_random_objects(network, 30, seed=22, attribute_count=2)
    workspace = Workspace.build(network, objects, distance_backend="astar")
    path = str(tmp_path / "events.jsonl")
    service = QueryService(
        workspace, workers=2, event_log_path=path, batch_window_s=0.0
    )
    results = {}
    for i, seed in enumerate((5, 6, 7)):
        queries = random_locations(network, 2 + i % 2, seed=seed)
        result = service.query("LBC", queries, trace_id=f"trace-{i}")
        results[f"trace-{i}"] = result
    service.close()
    return results, read_events(path)


class TestServiceReconciliation:
    def test_one_event_per_query(self, served_events):
        results, events = served_events
        assert len(events) == len(results)
        assert {e["trace_id"] for e in events} == set(results)

    def test_counters_reconcile_field_for_field(self, served_events):
        results, events = served_events
        for event in events:
            stats = results[event["trace_id"]].stats
            expected = stats.counter_fields()
            assert event["counters"] == expected
            for name in SPAN_COUNTER_FIELDS:
                assert event["counters"][name] == getattr(stats, name)

    def test_metadata_reconciles(self, served_events):
        results, events = served_events
        for event in events:
            stats = results[event["trace_id"]].stats
            assert event["algorithm"] == "LBC"
            assert event["outcome"] == "completed"
            assert event["engine_backend"] == stats.distance_backend
            assert event["skyline_count"] == stats.skyline_count
            assert event["candidate_count"] == stats.candidate_count
            assert event["query_count"] == stats.query_count
            assert event["batch_id"] is not None
            assert event["latency_s"] >= event["span_duration_s"] * 0.0
            assert event["trace_id"] == stats.trace_id


def _write_log(path: str, count: int, start: int = 0) -> None:
    with EventLog(path) as log:
        for i in range(start, start + count):
            log.emit(
                wide_event(request_id=i, algorithm="LBC", outcome="completed")
            )
        log.flush()


class TestCrashTolerantReading:
    """A reader must survive what a crashing writer leaves behind."""

    def test_truncated_final_line_is_skipped_and_counted(self, tmp_path):
        # A crash mid-write leaves a partial last record; iteration used
        # to abort with JSONDecodeError right there.
        path = str(tmp_path / "events.jsonl")
        _write_log(path, 5)
        with open(path, encoding="utf-8") as handle:
            full = handle.read()
        last = full.rstrip("\n").rsplit("\n", 1)[-1]
        truncated = full[: len(full) - len(last) // 2 - 1]
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(truncated)
        reader = iter_events(path)
        events = list(reader)
        assert [e["request_id"] for e in events] == [0, 1, 2, 3]
        assert reader.corrupt_lines == 1

    def test_corrupt_middle_line_is_skipped_and_counted(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        _write_log(path, 4)
        with open(path, encoding="utf-8") as handle:
            lines = handle.readlines()
        lines[1] = "{not json at all\n"
        lines[2] = '"a bare string, not an object"\n'
        with open(path, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        reader = iter_events(path)
        events = list(reader)
        assert [e["request_id"] for e in events] == [0, 3]
        assert reader.corrupt_lines == 2

    def test_clean_log_reports_zero_corrupt_lines(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        _write_log(path, 3)
        reader = iter_events(path)
        assert len(list(reader)) == 3
        assert reader.corrupt_lines == 0

    def test_missing_log_yields_nothing(self, tmp_path):
        reader = iter_events(str(tmp_path / "nope.jsonl"))
        assert list(reader) == []
        assert reader.corrupt_lines == 0


class TestRotatedGenerationReading:
    """Reading across ``path.N … path.1, path`` oldest-first."""

    def _rotated_log(self, tmp_path) -> str:
        path = str(tmp_path / "events.jsonl")
        log = EventLog(path, rotate_bytes=600, rotate_keep=3)
        for i in range(40):
            log.emit(
                wide_event(request_id=i, algorithm="LBC", outcome="completed")
            )
        log.close()
        assert log.rotations >= 2
        return path

    def test_generations_read_oldest_first(self, tmp_path):
        path = self._rotated_log(tmp_path)
        reader = iter_events(path)
        ids = [e["request_id"] for e in reader]
        assert ids == sorted(ids)
        assert ids[-1] == 39
        assert reader.files_read >= 3
        assert reader.corrupt_lines == 0

    def test_include_rotated_false_reads_only_the_live_file(self, tmp_path):
        path = self._rotated_log(tmp_path)
        live = [
            e["request_id"]
            for e in iter_events(path, include_rotated=False)
        ]
        everything = [e["request_id"] for e in iter_events(path)]
        assert live == everything[-len(live):]
        assert len(live) < len(everything)
        # The live slice is exactly what the un-rotated file holds.
        with open(path, encoding="utf-8") as handle:
            assert len(live) == sum(1 for line in handle if line.strip())

    def test_rotation_racing_the_reader_skips_vanished_generations(
        self, tmp_path
    ):
        # Between listing generations and opening one, the writer can
        # rotate it away (path.2 -> path.3 beyond rotate_keep); a
        # vanished file must be skipped, not raised.
        path = self._rotated_log(tmp_path)
        reader = EventReader(path)
        listed = reader._paths()
        victim = listed[0]  # the oldest rotated generation
        os.remove(victim)
        reader._paths = lambda: listed  # freeze the pre-race listing
        ids = [e["request_id"] for e in reader]
        assert ids == sorted(ids)  # surviving generations, still ordered
        assert ids[-1] == 39
        assert reader.files_read == len(listed) - 1

    def test_corrupt_lines_accumulate_across_generations(self, tmp_path):
        path = self._rotated_log(tmp_path)
        # Damage one line in a rotated generation and one in the live file.
        for target in (f"{path}.1", path):
            with open(target, encoding="utf-8") as handle:
                lines = handle.readlines()
            lines[0] = "{broken\n"
            with open(target, "w", encoding="utf-8") as handle:
                handle.writelines(lines)
        reader = iter_events(path)
        list(reader)
        assert reader.corrupt_lines == 2


class TestEventLogQueueDepth:
    def test_queue_depth_property_tracks_the_writer_backlog(self, tmp_path):
        log = SlowWriterLog(str(tmp_path / "events.jsonl"), queue_limit=8)
        assert log.queue_depth == 0
        for i in range(6):
            log.emit(
                wide_event(request_id=i, algorithm="LBC", outcome="completed")
            )
        # The wedged writer holds one record; the rest sit in the queue.
        assert log.queue_depth >= 4
        assert log.queue_depth == log.stats()["queue_depth"]
        log.release.set()
        log.close()
        assert log.queue_depth == 0


class TestCounterFields:
    def test_counter_fields_covers_every_span_counter(self):
        stats = QueryStats(nodes_settled=3, network_pages=2, oracle_pages=1)
        fields = stats.counter_fields()
        assert set(fields) == set(SPAN_COUNTER_FIELDS)
        assert fields["nodes_settled"] == 3
        assert fields["network_pages"] == 2
        assert fields["oracle_pages"] == 1
