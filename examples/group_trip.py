"""Group trip planning with aggregate nearest-neighbour queries.

The skyline answers "show me every defensible option"; sometimes the
group just wants *the* answer for a fixed criterion: the restaurant
minimising total travel (fairness by sum) or the one minimising the
longest individual trip (fairness by max).  That is the aggregate NN
query of Yiu et al. [26], and the paper's conclusion points out that
its path-distance lower bound transfers to exactly this problem —
``repro.extensions.ann`` implements both the collaborative baseline
and the lower-bound-accelerated processor.

The example also shows the skyline's covering property: both aggregate
winners are always members of the multi-source skyline.

Run with::

    python examples/group_trip.py
"""

from repro import LBC, Workspace, delaunay_road_network, extract_objects
from repro.datasets import select_query_points
from repro.extensions import AggregateNNBaseline, AggregateNNLowerBound


def main() -> None:
    network = delaunay_road_network(node_count=2200, edge_node_ratio=1.25, seed=17)
    restaurants = extract_objects(network, omega=0.15, seed=23)
    workspace = Workspace.build(network, restaurants)
    group = select_query_points(network, 4, region_fraction=0.2, seed=31)
    print(f"{len(restaurants)} restaurants, group of {len(group)}\n")

    for criterion, label in (("sum", "total travel"), ("max", "longest trip")):
        baseline = AggregateNNBaseline(criterion).run(workspace, group, k=3)
        fast = AggregateNNLowerBound(criterion).run(workspace, group, k=3)
        assert fast.object_ids() == baseline.object_ids()
        print(f"top-3 by {label} ({criterion}):")
        for rank, answer in enumerate(fast.answers, start=1):
            legs = ", ".join(f"{d * 1000:5.0f} m" for d in answer.distances)
            print(
                f"  {rank}. restaurant {answer.obj.object_id:4d} — "
                f"{answer.value * 1000:6.0f} m  [{legs}]"
            )
        saved = baseline.nodes_settled / max(1, fast.nodes_settled)
        print(
            f"  (lower bounds touched {fast.nodes_settled} junctions vs "
            f"{baseline.nodes_settled} for the baseline: {saved:.1f}x)\n"
        )

    # The aggregate winners are guaranteed members of the skyline.
    skyline = LBC().run(workspace, group)
    member_ids = set(skyline.object_ids())
    for criterion in ("sum", "max"):
        winner = AggregateNNLowerBound(criterion).run(workspace, group, k=1)
        winner_id = winner.answers[0].obj.object_id
        assert winner_id in member_ids, "aggregate winner must be on the skyline"
        print(
            f"{criterion}-winner (restaurant {winner_id}) is one of the "
            f"{len(member_ids)} skyline members — pick any preference, the "
            "skyline already contains its optimum"
        )


if __name__ == "__main__":
    main()
