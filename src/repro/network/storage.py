"""Disk layout of the road network: clustered adjacency lists.

Section 6.1: "the adjacent lists of the network nodes are clustered on
the disk to minimize the I/O cost during network distance computation"
(the scheme of [22]).  We reproduce that by ordering nodes along a
Hilbert space-filling curve and packing their adjacency records into
4 KiB pages in that order; spatially close junctions then share pages,
so a compact wavefront touches few pages.

A node's record stores its coordinates plus, per incident edge, the
edge id, edge length and the *neighbor's id and coordinates* (the usual
denormalisation: A* needs neighbor coordinates for its heuristic at
relaxation time without a second page access).

Expanding a node therefore charges exactly one logical page access,
served through the experiment's shared LRU buffer pool — this is the
"network disk pages accessed" metric of Figures 5 and 6.
"""

from __future__ import annotations

from repro.columnar.curve import hilbert_index
from repro.geometry.mbr import MBR
from repro.index.rtree import DEFAULT_MAX_ENTRIES, RTree
from repro.network.graph import RoadNetwork
from repro.storage.binding import NodePager
from repro.storage.buffer import DEFAULT_BUFFER_BYTES, BufferPool
from repro.storage.disk import DiskManager
from repro.storage.page import DEFAULT_PAGE_SIZE, PAGE_HEADER_SIZE
from repro.storage.stats import IOStats

NODE_RECORD_BASE_BYTES = 16
"""Node id (4) + coordinates (8) + record header (4)."""

ADJACENCY_ENTRY_BYTES = 24
"""Neighbor id (4) + edge id (4) + length (8) + neighbor coords (8)."""


__all__ = [
    "ADJACENCY_ENTRY_BYTES",
    "NODE_RECORD_BASE_BYTES",
    "NetworkStore",
    "clustering_quality",
    "hilbert_index",  # re-exported from repro.columnar.curve
]


class NetworkStore:
    """Page-clustered adjacency storage with LRU-buffered access."""

    def __init__(
        self,
        network: RoadNetwork,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
        stats: IOStats | None = None,
        hilbert_order: int = 10,
        policy: str = "lru",
    ) -> None:
        self.network = network
        self.disk = DiskManager(page_size=page_size)
        self.pool = BufferPool(
            self.disk,
            capacity_bytes=buffer_bytes,
            stats=stats,
            policy=policy,
            component="network",
        )
        self._page_of_node: dict[int, int] = {}
        self._cluster(page_size, hilbert_order)

    def _cluster(self, page_size: int, hilbert_order: int) -> None:
        network = self.network
        if network.node_count == 0:
            return
        box = network.mbr()
        side = (1 << hilbert_order) - 1
        width = box.width or 1.0
        height = box.height or 1.0

        def key(node_id: int) -> int:
            p = network.node_point(node_id)
            gx = int((p.x - box.min_x) / width * side)
            gy = int((p.y - box.min_y) / height * side)
            return hilbert_index(gx, gy, hilbert_order)

        ordered = sorted(network.node_ids(), key=key)
        page = self.disk.allocate()
        for node_id in ordered:
            record_size = (
                NODE_RECORD_BASE_BYTES
                + ADJACENCY_ENTRY_BYTES * network.degree(node_id)
            )
            record_size = min(record_size, page_size - PAGE_HEADER_SIZE)
            if not page.fits(record_size):
                page = self.disk.allocate()
            page.add(node_id, record_size)
            self._page_of_node[node_id] = page.page_id

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def touch_node(self, node_id: int) -> None:
        """Charge the page access for reading a node's adjacency record."""
        self.pool.fetch(self._page_of_node[node_id])

    def page_of(self, node_id: int) -> int:
        return self._page_of_node[node_id]

    @property
    def stats(self) -> IOStats:
        return self.pool.stats

    @property
    def page_count(self) -> int:
        return self.disk.page_count

    def reset(self, cold: bool = True) -> None:
        """Zero the counters and (by default) empty the buffer."""
        self.pool.reset_stats()
        if cold:
            self.pool.clear()

    # ------------------------------------------------------------------
    # Companion edge index
    # ------------------------------------------------------------------
    def build_edge_rtree(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        pager: NodePager | None = None,
    ) -> RTree:
        """R-tree over edge MBRs ("the edges are indexed by an R-tree")."""
        network = self.network
        return RTree.bulk_load(
            ((network.edge_mbr(e.edge_id), e) for e in network.edges()),
            max_entries=max_entries,
            pager=pager,
        )


def clustering_quality(store: NetworkStore) -> float:
    """Fraction of edges whose two endpoints share a page.

    A diagnostic for the Hilbert clustering (tests assert it beats a
    random layout on grid-like networks).
    """
    network = store.network
    if network.edge_count == 0:
        return 1.0
    same = sum(
        1
        for edge in network.edges()
        if store.page_of(edge.u) == store.page_of(edge.v)
    )
    return same / network.edge_count
