"""Aggregate nearest-neighbour queries via path-distance lower bounds.

The paper closes with: "The path distance lower bound approach, based
on which LBC is designed, can be applied to benefit other types of road
network queries where network distance comparison is needed."  This
module makes that concrete for the **aggregate nearest neighbour**
query of Yiu, Mamoulis, Papadias [26] (the road-network version of the
group NN query [20]): given query points ``Q`` and an aggregate
``f ∈ {sum, max}``, find the ``k`` objects minimising
``f(dN(q1,p), …, dN(qn,p))`` — e.g. the meeting place minimising total
(or worst-case) travel for a group.

Two processors are provided:

* :class:`AggregateNNBaseline` — CE-style collaborative Dijkstra
  expansion: each query point's wavefront enumerates objects; an object
  is final once visited by every query point; terminate when the best
  complete aggregate cannot be beaten by any incomplete candidate.
* :class:`AggregateNNLowerBound` — the plb transfer: stream candidates
  by *Euclidean* aggregate from the R-tree, keep per-query
  :class:`~repro.network.astar.LowerBoundSearch` bounds, always expand
  the candidate/dimension pair that currently bounds the best potential
  aggregate, and stop as soon as ``k`` exact answers beat every
  remaining lower bound.  Exactly LBC's economy: dominated (here:
  beaten) candidates never get full distance computations.

Both return exact answers; tests cross-check them against a brute-force
distance-matrix evaluation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.query import Workspace
from repro.obs import tracing
from repro.network.graph import NetworkLocation
from repro.network.objects import SpatialObject

Aggregate = Callable[[Sequence[float]], float]

AGGREGATES: dict[str, Aggregate] = {"sum": sum, "max": max}


def _span_timed(span_name: str):
    """Run an ANN processor inside a tracing span (``ann.ce``/``ann.lb``/
    ``ann.brute``) and source ``total_response_s`` from the span's
    monotonic duration — one clock for traces, slow logs and results.
    """

    def decorate(fn):
        def wrapper(*args, **kwargs):
            with tracing.span(span_name) as root:
                result = fn(*args, **kwargs)
            result.total_response_s = root.duration_s
            return result

        wrapper.__name__ = fn.__name__
        wrapper.__doc__ = fn.__doc__
        wrapper.__wrapped__ = fn
        return wrapper

    return decorate


@dataclass(frozen=True, slots=True)
class AggregateNNAnswer:
    """One result: an object, its distance vector and aggregate value."""

    obj: SpatialObject
    distances: tuple[float, ...]
    value: float


@dataclass
class AggregateNNResult:
    """Ranked answers plus the run's cost counters."""

    answers: list[AggregateNNAnswer] = field(default_factory=list)
    nodes_settled: int = 0
    distance_computations: int = 0
    lb_expansions: int = 0
    total_response_s: float = 0.0

    def object_ids(self) -> list[int]:
        return [a.obj.object_id for a in self.answers]


def _resolve_aggregate(aggregate: str | Aggregate) -> Aggregate:
    if callable(aggregate):
        return aggregate
    try:
        return AGGREGATES[aggregate]
    except KeyError:
        raise ValueError(
            f"unknown aggregate {aggregate!r}; choose from {sorted(AGGREGATES)}"
        ) from None


class AggregateNNBaseline:
    """Collaborative-expansion aggregate NN (the CE analogue)."""

    name = "ANN-CE"

    def __init__(self, aggregate: str | Aggregate = "sum") -> None:
        self._aggregate = _resolve_aggregate(aggregate)

    @_span_timed("ann.ce")
    def run(
        self,
        workspace: Workspace,
        queries: list[NetworkLocation],
        k: int = 1,
    ) -> AggregateNNResult:
        """Find the ``k`` objects with the smallest aggregate distance."""
        workspace.validate_queries(queries)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        aggregate = self._aggregate
        n = len(queries)
        # Fresh INE wavefronts from the engine: emission state is
        # per-query, but store/placement wiring comes for free.
        expanders = [workspace.engine.ine_expander(q) for q in queries]
        known: dict[int, dict[int, float]] = {}
        objects: dict[int, SpatialObject] = {}
        complete: dict[int, float] = {}
        result = AggregateNNResult()
        exhausted = [False] * n

        def best_possible_incomplete() -> float:
            """Lower bound on any not-yet-complete object's aggregate.

            An unvisited dimension is at least the wavefront's last
            emission; monotone aggregates then bound the whole vector.
            """
            floors = [e.last_emitted_distance for e in expanders]
            best = math.inf
            for object_id, row in known.items():
                if object_id in complete:
                    continue
                vector = [row.get(i, floors[i]) for i in range(n)]
                best = min(best, aggregate(vector))
            # A completely unseen object is at least at every floor.
            best = min(best, aggregate(floors))
            return best

        while not all(exhausted):
            for i, expander in enumerate(expanders):
                if exhausted[i]:
                    continue
                emission = expander.next_nearest_object()
                if emission is None:
                    exhausted[i] = True
                    continue
                obj, dist = emission
                objects[obj.object_id] = obj
                row = known.setdefault(obj.object_id, {})
                row[i] = dist
                result.distance_computations += 1
                tracing.record("distance_computations")
                if len(row) == n:
                    complete[obj.object_id] = aggregate(
                        [row[j] for j in range(n)]
                    )
            if len(complete) >= k:
                kth = sorted(complete.values())[k - 1]
                if kth <= best_possible_incomplete():
                    break

        # Objects never seen by some wavefront are unreachable there.
        for object_id, row in known.items():
            if object_id not in complete:
                vector = [row.get(i, math.inf) for i in range(n)]
                complete[object_id] = aggregate(vector)
        for obj in workspace.objects:
            if obj.object_id not in known and len(complete) < max(
                k, len(complete)
            ):
                complete.setdefault(obj.object_id, math.inf)
                objects.setdefault(obj.object_id, obj)
                known.setdefault(obj.object_id, {})

        ranked = sorted(complete.items(), key=lambda kv: (kv[1], kv[0]))[:k]
        for object_id, value in ranked:
            row = known[object_id]
            result.answers.append(
                AggregateNNAnswer(
                    obj=objects[object_id],
                    distances=tuple(row.get(i, math.inf) for i in range(n)),
                    value=value,
                )
            )
        result.nodes_settled = sum(e.nodes_settled for e in expanders)
        return result


class AggregateNNLowerBound:
    """Aggregate NN with path-distance lower bounds (the LBC analogue)."""

    name = "ANN-LB"

    def __init__(self, aggregate: str | Aggregate = "sum") -> None:
        self._aggregate = _resolve_aggregate(aggregate)

    @_span_timed("ann.lb")
    def run(
        self,
        workspace: Workspace,
        queries: list[NetworkLocation],
        k: int = 1,
    ) -> AggregateNNResult:
        """Find the ``k`` objects with the smallest aggregate distance."""
        workspace.validate_queries(queries)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        aggregate = self._aggregate
        n = len(queries)
        query_points = [q.point for q in queries]
        engine = workspace.engine
        # Pooled A*-family expanders (slot = dimension index, as in LBC)
        # so repeated ANN queries resume earlier wavefronts.
        expanders = [
            engine.astar_expander(q, slot=i) for i, q in enumerate(queries)
        ]
        nodes_before = engine.nodes_settled()
        result = AggregateNNResult()

        # Stream candidates by Euclidean aggregate: a lower bound of the
        # network aggregate, so stream order never hides a winner.
        euclid_stream = workspace.object_rtree.best_first(
            key=lambda mbr, _p: aggregate([mbr.mindist(q) for q in query_points])
        )

        # Candidate state: bounds per dimension, plus the per-dimension
        # search when one is open.  Only one search per expander can be
        # live, so searches are opened lazily and abandoned freely — the
        # expander keeps the settled work either way.
        bounds: dict[int, list[float]] = {}
        exact: dict[int, list[bool]] = {}
        objects: dict[int, SpatialObject] = {}
        finished: list[tuple[float, int]] = []  # (value, object_id) exact

        def candidate_bound(object_id: int) -> float:
            return aggregate(bounds[object_id])

        def admit(obj: SpatialObject) -> None:
            objects[obj.object_id] = obj
            bounds[obj.object_id] = [
                q.distance_to(obj.point) for q in query_points
            ]
            exact[obj.object_id] = [False] * n

        def tighten(object_id: int) -> None:
            """One unit of work on the candidate's weakest dimension."""
            obj = objects[object_id]
            row = bounds[object_id]
            flags = exact[object_id]
            # Expand the dimension with the smallest bound: it caps the
            # aggregate least tightly for max, and any inexact dimension
            # helps for sum; smallest-first mirrors LBC's heuristic.
            dims = [i for i in range(n) if not flags[i]]
            target = min(dims, key=lambda i: (row[i], i))
            search = expanders[target].search_toward(obj.location)
            result.distance_computations += 1
            tracing.record("distance_computations")
            if search.done:
                row[target] = search.distance
                flags[target] = True
                engine.record(queries[target], obj.location, search.distance)
                return
            # Push the bound up a few nodes at a time; abandoning the
            # search keeps the settled region for later candidates.
            for _ in range(8):
                row[target] = max(row[target], search.expand_step())
                result.lb_expansions += 1
                tracing.record("lb_expansions")
                if search.done:
                    flags[target] = True
                    row[target] = search.distance
                    engine.record(queries[target], obj.location, search.distance)
                    return

        next_euclid: tuple[float, SpatialObject] | None = None

        def pull() -> None:
            nonlocal next_euclid
            try:
                value, _, payload = next(euclid_stream)
                next_euclid = (value, payload)
            except StopIteration:
                next_euclid = None

        pull()
        while True:
            kth_value = (
                sorted(v for v, _ in finished)[k - 1]
                if len(finished) >= k
                else math.inf
            )
            head = next_euclid[0] if next_euclid is not None else math.inf
            open_candidates = [
                object_id
                for object_id in bounds
                if not all(exact[object_id])
                and candidate_bound(object_id) < kth_value
            ]
            best_open = min(
                ((candidate_bound(oid), oid) for oid in open_candidates),
                default=(math.inf, None),
            )
            # Neither the stream head nor any open candidate can beat
            # the current k-th answer: done.
            if min(head, best_open[0]) >= kth_value:
                break
            if head < best_open[0]:
                # The stream's next candidate is the most promising
                # unexplored option; admit it lazily.
                admit(next_euclid[1])
                pull()
                continue
            best = best_open[1]
            tighten(best)
            if all(exact[best]):
                finished.append((aggregate(bounds[best]), best))

        ranked = sorted(finished)[:k]
        if len(ranked) < k:
            # Fewer reachable candidates than k: finish the remainder.
            leftovers = [oid for oid in bounds if not all(exact[oid])]
            for object_id in leftovers:
                while not all(exact[object_id]):
                    tighten(object_id)
                finished.append((aggregate(bounds[object_id]), object_id))
            ranked = sorted(finished)[:k]
        for value, object_id in ranked:
            result.answers.append(
                AggregateNNAnswer(
                    obj=objects[object_id],
                    distances=tuple(bounds[object_id]),
                    value=value,
                )
            )
        result.nodes_settled = engine.nodes_settled() - nodes_before
        return result


@_span_timed("ann.brute")
def brute_force_aggregate_nn(
    workspace: Workspace,
    queries: list[NetworkLocation],
    k: int = 1,
    aggregate: str | Aggregate = "sum",
) -> AggregateNNResult:
    """Exhaustive reference: full distance matrix, then sort."""
    func = _resolve_aggregate(aggregate)
    result = AggregateNNResult()
    engine = workspace.engine
    nodes_before = engine.nodes_settled()
    objects = list(workspace.objects)
    rows = engine.matrix(queries, [obj.location for obj in objects])
    scored = []
    for j, obj in enumerate(objects):
        distances = tuple(row[j] for row in rows)
        scored.append((func(distances), obj.object_id, obj, distances))
        result.distance_computations += len(queries)
        tracing.record("distance_computations", len(queries))
    scored.sort(key=lambda item: (item[0], item[1]))
    for value, _, obj, distances in scored[:k]:
        result.answers.append(
            AggregateNNAnswer(obj=obj, distances=distances, value=value)
        )
    result.nodes_settled = engine.nodes_settled() - nodes_before
    return result
