"""The query workspace: one dataset wired to its storage and indexes.

A :class:`Workspace` owns everything an algorithm needs to answer
multi-source skyline queries over one (network, object set) pair:

* the page-clustered :class:`~repro.network.storage.NetworkStore`
  behind the experiment's LRU buffer;
* the :class:`~repro.network.middle_layer.MiddleLayer` with its own
  B+-tree pager;
* the object R-tree with its pager;

or, in unpaged mode, the in-memory equivalents (for unit tests and for
users who want answers without cost simulation).  Workspaces are built
once per dataset and reused across many queries — exactly how the
paper's experiments amortise their setup.

Concurrency: a workspace carries a readers-writer lock
(:class:`~repro.concurrency.ReadWriteLock`).  Query executions
take the shared side via :meth:`Workspace.reading`; the mutation
methods below take the exclusive side (via :meth:`Workspace.mutating`),
coalesce the engine invalidation hooks to fire exactly once per
compound operation, and bump :attr:`Workspace.version`.  Direct
single-threaded use is unchanged — the lock is uncontended and the
mutation methods lock themselves.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, replace

from repro.concurrency import ReadWriteLock
from repro.engine import DEFAULT_BACKEND, DistanceEngine
from repro.index.rtree import DEFAULT_MAX_ENTRIES, RTree
from repro.network.graph import NetworkLocation, RoadNetwork
from repro.network.middle_layer import InMemoryPlacements, MiddleLayer
from repro.network.objects import ObjectSet, SpatialObject
from repro.network.storage import NetworkStore
from repro.obs import MetricRegistry
from repro.storage.binding import NodePager
from repro.storage.buffer import DEFAULT_BUFFER_BYTES
from repro.storage.page import DEFAULT_PAGE_SIZE


@dataclass
class Workspace:
    """A dataset plus its (optionally simulated-disk) access structures."""

    network: RoadNetwork
    objects: ObjectSet
    store: NetworkStore | None
    middle: MiddleLayer | InMemoryPlacements
    object_rtree: RTree
    rtree_pager: NodePager | None
    middle_pager: NodePager | None
    engine: DistanceEngine | None = None
    metrics: MetricRegistry | None = None

    def __post_init__(self) -> None:
        # Workspaces assembled directly (tests, serialization) get a
        # default engine so workspace.engine is always usable.
        if self.engine is None:
            self.engine = DistanceEngine(
                self.network, store=self.store, placements=self.middle
            )
        if self.metrics is None:
            self.metrics = MetricRegistry()
        self._register_metrics()
        self._rwlock = ReadWriteLock()
        self._version = 0

    def _register_metrics(self) -> None:
        """Expose the workspace's live counters as callback metrics.

        Everything here is a scrape-time read of counters that already
        exist (buffer-pool :class:`~repro.storage.stats.IOStats`, the
        engine's memo) — registration costs nothing on the query hot
        path, and ``/metricsz`` always reflects the current truth
        without parallel bookkeeping.
        """
        registry = self.metrics
        assert registry is not None
        pools = {
            "network": self.store.stats if self.store is not None else None,
            "index": (
                self.rtree_pager.stats if self.rtree_pager is not None else None
            ),
            "middle": (
                self.middle_pager.stats if self.middle_pager is not None else None
            ),
        }
        for pool_name, io in pools.items():
            if io is None:
                continue
            registry.register_callback(
                "repro_buffer_reads_total",
                (lambda s=io: s.logical_reads),
                kind="counter",
                help_text="Logical page reads per buffer pool",
                pool=pool_name,
                mode="logical",
            )
            registry.register_callback(
                "repro_buffer_reads_total",
                (lambda s=io: s.physical_reads),
                kind="counter",
                help_text="Logical page reads per buffer pool",
                pool=pool_name,
                mode="physical",
            )
            registry.register_callback(
                "repro_buffer_hit_ratio",
                (lambda s=io: s.hit_ratio),
                kind="gauge",
                help_text="Buffer-pool hit ratio over logical reads",
                pool=pool_name,
            )
        engine = self.engine
        if engine is not None:
            # The oracle pool appears lazily (first oracle-backend query
            # or an explicit attach), so these callbacks read through
            # the engine at scrape time and report 0 until then.
            def _oracle_stat(field_name: str) -> float:
                io = engine.oracle_io_stats()
                return getattr(io, field_name) if io is not None else 0
            registry.register_callback(
                "repro_buffer_reads_total",
                (lambda: _oracle_stat("logical_reads")),
                kind="counter",
                help_text="Logical page reads per buffer pool",
                pool="oracle",
                mode="logical",
            )
            registry.register_callback(
                "repro_buffer_reads_total",
                (lambda: _oracle_stat("physical_reads")),
                kind="counter",
                help_text="Logical page reads per buffer pool",
                pool="oracle",
                mode="physical",
            )
            registry.register_callback(
                "repro_buffer_hit_ratio",
                (lambda: _oracle_stat("hit_ratio")),
                kind="gauge",
                help_text="Buffer-pool hit ratio over logical reads",
                pool="oracle",
            )
            for field_name in ("hits", "misses", "evictions", "invalidations"):
                registry.register_callback(
                    "repro_engine_memo_events_total",
                    (lambda e=engine, f=field_name: getattr(e.counters, f)),
                    kind="counter",
                    help_text="Distance-memo lookup outcomes",
                    event=field_name,
                )
            registry.register_callback(
                "repro_engine_nodes_settled_total",
                engine.nodes_settled,
                kind="counter",
                help_text="Nodes settled by engine-owned expanders",
            )
            registry.register_callback(
                "repro_engine_memo_entries",
                (lambda e=engine: len(e._memo)),
                kind="gauge",
                help_text="Entries currently held by the distance memo",
            )
        registry.register_callback(
            "repro_workspace_objects",
            (lambda: len(self.objects)),
            kind="gauge",
            help_text="Spatial objects currently registered",
        )
        registry.register_callback(
            "repro_workspace_version",
            (lambda: self.version),
            kind="gauge",
            help_text="Monotone workspace mutation counter",
        )

    # ------------------------------------------------------------------
    # Snapshot isolation
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotone mutation counter; bumped once per mutating() block."""
        return self._version

    @property
    def rwlock(self):
        """The workspace's readers-writer lock (shared with the service)."""
        return self._rwlock

    @contextmanager
    def reading(self):
        """Shared-side context: queries executed inside never see a
        torn mutation (the writer waits for the block to finish)."""
        with self._rwlock.read_locked():
            yield self

    @contextmanager
    def mutating(self):
        """Exclusive-side context for (compound) mutations.

        Waits out in-flight readers, coalesces the engine invalidation
        hooks so the whole block drives them exactly once, and bumps
        :attr:`version` once on the outermost exit.  Reentrant: the
        mutation methods below use it themselves, so nesting
        (``move_object`` → remove + add) still invalidates once.  Do
        not call while inside :meth:`reading` — lock upgrades deadlock.
        """
        outermost = self._rwlock.caller_write_depth == 0
        with self._rwlock.write_locked():
            if self.engine is not None:
                with self.engine.coalesced_invalidation():
                    yield self
            else:
                yield self
            if outermost:
                self._version += 1

    @classmethod
    def build(
        cls,
        network: RoadNetwork,
        objects: ObjectSet,
        paged: bool = True,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
        rtree_max_entries: int = DEFAULT_MAX_ENTRIES,
        bptree_order: int = 64,
        buffer_policy: str = "lru",
        distance_backend: str = DEFAULT_BACKEND,
    ) -> "Workspace":
        """Assemble the workspace, clustering and indexing the dataset.

        ``buffer_policy`` selects the page-replacement policy for every
        pool ("lru" — the paper's setup — "fifo" or "clock");
        ``distance_backend`` picks the engine's default distance backend
        (``"dijkstra"``, ``"astar"``, ``"astar+landmarks"``, or the
        preprocessed oracles ``"ch"`` / ``"hublabel"``).
        """
        if objects.network is not network:
            raise ValueError("object set was built for a different network")
        objects.validate_uniform_attributes()
        if paged:
            store = NetworkStore(
                network,
                page_size=page_size,
                buffer_bytes=buffer_bytes,
                policy=buffer_policy,
            )
            middle_pager = NodePager(
                buffer_bytes=buffer_bytes,
                page_size=page_size,
                policy=buffer_policy,
                component="middle",
            )
            middle: MiddleLayer | InMemoryPlacements = MiddleLayer.build(
                objects, order=bptree_order, pager=middle_pager
            )
            rtree_pager = NodePager(
                buffer_bytes=buffer_bytes,
                page_size=page_size,
                policy=buffer_policy,
                component="index",
            )
            object_rtree = objects.build_rtree(
                max_entries=rtree_max_entries, pager=rtree_pager
            )
        else:
            store = None
            middle_pager = None
            middle = InMemoryPlacements(objects)
            rtree_pager = None
            object_rtree = objects.build_rtree(max_entries=rtree_max_entries)
        engine = DistanceEngine(
            network, store=store, placements=middle, backend=distance_backend
        )
        return cls(
            network=network,
            objects=objects,
            store=store,
            middle=middle,
            object_rtree=object_rtree,
            rtree_pager=rtree_pager,
            middle_pager=middle_pager,
            engine=engine,
        )

    # ------------------------------------------------------------------
    # I/O accounting
    # ------------------------------------------------------------------
    def reset_io(self, cold: bool = True) -> None:
        """Zero counters before a measured query (cold = empty buffers).

        A cold reset also empties the distance engine's wavefront pool
        and memo, so cold-buffer measurements are cold end to end; a
        warm reset keeps them (how warm-cache benchmarks are run).
        """
        if self.store is not None:
            self.store.reset(cold=cold)
        for pager in (self.rtree_pager, self.middle_pager):
            if pager is not None:
                pager.pool.reset_stats()
                if cold:
                    pager.pool.clear()
        if self.engine is not None:
            self.engine.reset_oracle_io(cold=cold)
            if cold:
                self.engine.clear()

    def network_pages_read(self) -> int:
        """Physical network-store reads since the last reset."""
        return self.store.stats.physical_reads if self.store is not None else 0

    def index_pages_read(self) -> int:
        """Physical object-R-tree page reads since the last reset."""
        return (
            self.rtree_pager.stats.physical_reads
            if self.rtree_pager is not None
            else 0
        )

    def middle_pages_read(self) -> int:
        """Physical middle-layer page reads since the last reset."""
        return (
            self.middle_pager.stats.physical_reads
            if self.middle_pager is not None
            else 0
        )

    # ------------------------------------------------------------------
    # Dynamic object updates
    # ------------------------------------------------------------------
    def add_object(self, obj) -> None:
        """Add one object, keeping every derived index consistent.

        Updates the object set, the middle layer's B+-tree and the
        object R-tree in one step, and invalidates the distance
        engine's caches; subsequent queries see the object.
        """
        with self.mutating():
            self.objects.add(obj)
            self.middle.add_object(obj)
            self.object_rtree.insert_point(obj.point, obj)
            if self.engine is not None:
                self.engine.invalidate()

    def remove_object(self, object_id: int) -> None:
        """Remove one object everywhere (KeyError when absent)."""
        with self.mutating():
            obj = self.objects.remove(object_id)
            self.middle.remove_object(obj)
            self.object_rtree.delete_point(obj.point, obj)
            if self.engine is not None:
                self.engine.invalidate()

    def move_object(self, object_id: int, location: NetworkLocation) -> SpatialObject:
        """Relocate one object, keeping attributes and every index.

        Implemented as remove + re-add so the middle layer, the R-tree
        and the engine caches all observe the move; the ``mutating()``
        wrapper coalesces the two invalidations into one.  Returns the
        moved object.
        """
        with self.mutating():
            obj = self.objects.get(object_id)
            self.remove_object(object_id)
            moved = replace(obj, location=location)
            self.add_object(moved)
            return moved

    # ------------------------------------------------------------------
    # Network mutation
    # ------------------------------------------------------------------
    def update_edge_length(self, edge_id: int, length: float) -> None:
        """Change one edge's travel length (e.g. congestion reweighting).

        Objects on (or at the endpoints of) the edge are re-registered
        so their middle-layer placements match the new length; on-edge
        objects keep their offset from the ``u`` endpoint, which must
        still fit.  All engine caches — including backend
        precomputation such as landmark tables — are invalidated, since
        every previously settled distance may have changed.
        """
        with self.mutating():
            self.network.edge(edge_id)  # KeyError for foreign edges
            affected = [p.obj for p in self.middle.objects_on(edge_id)]
            for obj in affected:
                loc = obj.location
                if loc.edge_id == edge_id and loc.offset > length + 1e-9:
                    raise ValueError(
                        f"object {obj.object_id} at offset {loc.offset} does not "
                        f"fit the new length {length} of edge {edge_id}"
                    )
            # Run the network's own checks (chord rule, polyline,
            # positivity) before touching any object state: a rejection
            # must leave the workspace untouched, not with `affected`
            # already deregistered.
            self.network.validate_edge_length(edge_id, length)
            for obj in affected:
                self.remove_object(obj.object_id)
            self.network.update_edge_length(edge_id, length)
            for obj in affected:
                loc = obj.location
                if loc.edge_id == edge_id:
                    obj = replace(
                        obj,
                        location=self.network.location_on_edge(edge_id, loc.offset),
                    )
                self.add_object(obj)
            if self.engine is not None:
                self.engine.invalidate_network()

    # ------------------------------------------------------------------
    # Query-point helpers
    # ------------------------------------------------------------------
    def validate_queries(self, queries: list[NetworkLocation]) -> None:
        """Reject empty or foreign query-point lists early."""
        if not queries:
            raise ValueError("a skyline query needs at least one query point")
        for q in queries:
            if q.node_id is not None and not self.network.has_node(q.node_id):
                raise KeyError(f"query point at unknown node {q.node_id}")
            if q.edge_id is not None:
                self.network.edge(q.edge_id)  # KeyError for foreign edges

    @property
    def attribute_count(self) -> int:
        """Static (non-spatial) attributes carried by every object."""
        return self.objects.attribute_count
