r"""Micro-benchmarks and ablations for the design choices DESIGN.md lists.

* **plb ablation** — LBC with vs without path-distance lower bounds
  (the latter computes full distances per candidate, EDC-style);
  isolates the second idea of Section 4.3.
* **A\* vs Dijkstra** — point-to-point distance computation cost, the
  paper's explanation for EDC beating CE on response time (Section 6.3).
* **buffer sensitivity** — network page misses under shrinking LRU
  buffers (the paper's CE-thrashing effect).
* **substrate ops** — R-tree NN streaming and B+-tree probes, the
  per-operation costs everything above is built from.
"""

import pytest

from repro.core import LBC
from repro.network import AStarExpander, DijkstraExpander, NetworkStore

from conftest import attach_stats, run_cold


class TestPlbAblation:
    @pytest.mark.parametrize("use_plb", [True, False], ids=["plb", "noplb"])
    def test_lbc_lower_bound_ablation(self, benchmark, workloads, use_plb):
        """LBC's partial distance computation vs full per-candidate A*."""
        workspace = workloads.workspace("NA", 0.50)
        queries = workloads.queries("NA", 4)
        algorithm = LBC(use_lower_bounds=use_plb)
        result = benchmark.pedantic(
            run_cold, args=(workspace, algorithm, queries), rounds=2, iterations=1
        )
        attach_stats(benchmark, result)


class TestAStarVsDijkstra:
    @pytest.mark.parametrize("method", ["astar", "dijkstra"], ids=str)
    def test_point_to_point_distance(self, benchmark, workloads, method):
        """One-shot shortest-path cost between two random junctions."""
        network = workloads.network("AU")
        queries = workloads.queries("AU", 2, seed=55)
        source, target = queries

        def compute():
            if method == "astar":
                expander = AStarExpander(network, source)
                distance = expander.distance_to(target)
            else:
                expander = DijkstraExpander(network, source)
                distance = expander.distance_to(target)
            return expander.nodes_settled, distance

        nodes, _ = benchmark(compute)
        benchmark.extra_info["nodes_settled"] = nodes


class TestBufferSensitivity:
    @pytest.mark.parametrize(
        "buffer_kib", [64, 128, 256, 1024], ids=lambda k: f"{k}KiB"
    )
    def test_ce_page_misses_vs_buffer(self, benchmark, workloads, buffer_kib):
        """CE's thrashing under shrinking buffers (LBC barely moves)."""
        from repro.core import CE, Workspace

        network = workloads.network("NA")
        objects = workloads.workspace("NA", 0.50).objects
        workspace = Workspace.build(
            network, objects, paged=True, buffer_bytes=buffer_kib * 1024
        )
        queries = workloads.queries("NA", 4)
        result = benchmark.pedantic(
            run_cold, args=(workspace, CE(), queries), rounds=1, iterations=1
        )
        attach_stats(benchmark, result)


class TestSubstrateOps:
    def test_rtree_nearest_stream(self, benchmark, workloads):
        """Streaming the 100 nearest objects from the NA object R-tree."""
        workspace = workloads.workspace("NA", 0.50)
        anchor = workloads.queries("NA", 1)[0].point

        def stream():
            out = []
            for _, _, payload in workspace.object_rtree.nearest(anchor):
                out.append(payload)
                if len(out) >= 100:
                    break
            return out

        result = benchmark(stream)
        assert len(result) == 100

    def test_middle_layer_probe(self, benchmark, workloads):
        """One B+-tree probe of the middle layer (hot buffer)."""
        workspace = workloads.workspace("NA", 0.50)
        edge_ids = sorted(workspace.network.edge_ids())[:200]

        def probe():
            hits = 0
            for edge_id in edge_ids:
                hits += len(workspace.middle.objects_on(edge_id))
            return hits

        benchmark(probe)

    def test_network_store_build(self, benchmark, workloads):
        """Hilbert clustering cost for the AU network."""
        network = workloads.network("AU")
        benchmark.pedantic(
            NetworkStore, args=(network,), rounds=2, iterations=1
        )

    def test_dijkstra_full_expansion(self, benchmark, workloads):
        """A complete single-source expansion of the AU network."""
        network = workloads.network("AU")
        source = workloads.queries("AU", 1, seed=66)[0]

        def expand():
            expander = DijkstraExpander(network, source)
            while expander.expand_next() is not None:
                pass
            return expander.nodes_settled

        nodes = benchmark(expand)
        benchmark.extra_info["nodes_settled"] = nodes


class TestAggregateNNExtension:
    """The conclusion's plb transfer: aggregate NN with vs without it."""

    @pytest.mark.parametrize("variant", ["baseline", "lowerbound"], ids=str)
    @pytest.mark.parametrize("aggregate", ["sum", "max"], ids=str)
    def test_aggregate_nn(self, benchmark, workloads, variant, aggregate):
        from repro.extensions import AggregateNNBaseline, AggregateNNLowerBound

        workspace = workloads.workspace("AU", 0.50)
        queries = workloads.queries("AU", 4)
        if variant == "baseline":
            processor = AggregateNNBaseline(aggregate)
        else:
            processor = AggregateNNLowerBound(aggregate)

        def run():
            workspace.reset_io(cold=True)
            return processor.run(workspace, queries, k=3)

        result = benchmark.pedantic(run, rounds=2, iterations=1)
        benchmark.extra_info.update(
            {
                "nodes_settled": result.nodes_settled,
                "distance_computations": result.distance_computations,
                "lb_expansions": result.lb_expansions,
            }
        )


class TestLandmarkHeuristic:
    """ALT lower bounds vs the Euclidean heuristic (sparse network)."""

    @pytest.mark.parametrize("heuristic", ["euclid", "landmarks"], ids=str)
    def test_lbc_heuristic_comparison(self, benchmark, workloads, heuristic):
        from repro.network import LandmarkHeuristic

        workspace = workloads.workspace("CA", 0.50)
        queries = workloads.queries("CA", 4)
        if heuristic == "landmarks":
            guide = LandmarkHeuristic(workspace.network, count=8, seed=1)
            algorithm = LBC(heuristic=guide)
        else:
            algorithm = LBC()
        result = benchmark.pedantic(
            run_cold, args=(workspace, algorithm, queries), rounds=2, iterations=1
        )
        attach_stats(benchmark, result)


class TestReplacementPolicy:
    """Page-replacement ablation: LRU (the paper's) vs FIFO vs CLOCK."""

    @pytest.mark.parametrize("policy", ["lru", "fifo", "clock"], ids=str)
    def test_ce_under_policy(self, benchmark, workloads, policy):
        from repro.core import CE, Workspace

        network = workloads.network("NA")
        objects = workloads.workspace("NA", 0.50).objects
        workspace = Workspace.build(
            network,
            objects,
            paged=True,
            buffer_bytes=128 * 1024,
            buffer_policy=policy,
        )
        queries = workloads.queries("NA", 4)
        result = benchmark.pedantic(
            run_cold, args=(workspace, CE(), queries), rounds=1, iterations=1
        )
        attach_stats(benchmark, result)


class TestLazySourceBound:
    """LBC vs LBC-lazy: lazily bounding the source dimension (ours)."""

    @pytest.mark.parametrize("variant", ["eager", "lazy"], ids=str)
    @pytest.mark.parametrize("network", ["CA", "NA"], ids=str)
    def test_lbc_source_bound_ablation(self, benchmark, workloads, variant, network):
        from repro.core import LBCLazy

        workspace = workloads.workspace(network, 0.50)
        queries = workloads.queries(network, 4)
        algorithm = LBC() if variant == "eager" else LBCLazy()
        result = benchmark.pedantic(
            run_cold, args=(workspace, algorithm, queries), rounds=2, iterations=1
        )
        attach_stats(benchmark, result)


class TestEngineCache:
    """Warm vs cold distance engine on repeated multi-source queries.

    The tentpole claim of the engine layer: a repeated query against a
    warm engine (pooled wavefronts + distance memo) visits well under
    70 % of the nodes the cold (seed-equivalent) run visits, with an
    identical skyline.
    """

    @pytest.mark.parametrize("algorithm_name", ["EDC", "LBC"], ids=str)
    def test_warm_engine_cache_saves_node_visits(
        self, benchmark, workloads, algorithm_name
    ):
        from repro.core import EDC, Workspace

        # A private workspace: the shared one must stay cold for the
        # other benchmarks' measurements.
        network = workloads.network("AU")
        objects = workloads.workspace("AU", 0.50).objects
        workspace = Workspace.build(network, objects, paged=True)
        queries = workloads.queries("AU", 4)
        algorithm = EDC() if algorithm_name == "EDC" else LBC()

        cold = run_cold(workspace, algorithm, queries)
        assert cold.stats.nodes_settled > 0

        # Warm repeat: buffers and engine caches stay hot (no cold
        # reset), exactly how a query mix against one workspace runs.
        warm = benchmark.pedantic(
            algorithm.run, args=(workspace, queries), rounds=3, iterations=1
        )
        assert warm.same_answer(cold)
        assert warm.stats.nodes_settled <= 0.7 * cold.stats.nodes_settled
        benchmark.extra_info.update(
            {
                "cold_nodes": cold.stats.nodes_settled,
                "warm_nodes": warm.stats.nodes_settled,
                "warm_engine_hits": warm.stats.engine_hits,
            }
        )


class TestCEStrategy:
    """CE wavefront alternation: round-robin vs min-radius balancing."""

    @pytest.mark.parametrize("strategy", ["round_robin", "min_radius"], ids=str)
    def test_ce_strategy(self, benchmark, workloads, strategy):
        from repro.core import CE

        workspace = workloads.workspace("NA", 0.50)
        queries = workloads.queries("NA", 4)
        algorithm = CE(strategy=strategy)
        result = benchmark.pedantic(
            run_cold, args=(workspace, algorithm, queries), rounds=2, iterations=1
        )
        attach_stats(benchmark, result)
