"""repro — multi-source skyline query processing in road networks.

A from-scratch reproduction of Deng, Zhou, Shen, *Multi-source Skyline
Query Processing in Road Networks* (ICDE 2007): the CE, EDC and LBC
algorithms, the storage and index substrates they run on, workload
generators standing in for the paper's road networks, and an experiment
harness regenerating every figure of the paper's evaluation.

Quickstart::

    from repro import (
        Workspace, LBC, delaunay_road_network, extract_objects,
        select_query_points,
    )

    network = delaunay_road_network(node_count=2000, seed=1)
    objects = extract_objects(network, omega=0.5, seed=2)
    workspace = Workspace.build(network, objects)
    queries = select_query_points(network, 3, seed=3)
    for point in LBC().run(workspace, queries):
        print(point.obj.object_id, point.vector)
"""

from repro.core import (
    ALL_ALGORITHMS,
    CE,
    EDC,
    EDCIncremental,
    LBC,
    CollaborativeExpansion,
    EuclideanDistanceConstraint,
    EuclideanDistanceConstraintIncremental,
    LowerBoundConstraint,
    NaiveSkyline,
    QueryStats,
    SkylineAlgorithm,
    SkylinePoint,
    SkylineResult,
    Workspace,
)
from repro.datasets import (
    build_preset,
    delaunay_road_network,
    extract_objects,
    grid_network,
    select_query_points,
)
from repro.engine import BACKEND_NAMES, DistanceEngine
from repro.geometry import MBR, Point
from repro.network import (
    NetworkLocation,
    ObjectSet,
    RoadNetwork,
    SpatialObject,
    network_distance,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_ALGORITHMS",
    "BACKEND_NAMES",
    "CE",
    "DistanceEngine",
    "EDC",
    "EDCIncremental",
    "LBC",
    "MBR",
    "CollaborativeExpansion",
    "EuclideanDistanceConstraint",
    "EuclideanDistanceConstraintIncremental",
    "LowerBoundConstraint",
    "NaiveSkyline",
    "NetworkLocation",
    "ObjectSet",
    "Point",
    "QueryStats",
    "RoadNetwork",
    "SkylineAlgorithm",
    "SkylinePoint",
    "SkylineResult",
    "SpatialObject",
    "Workspace",
    "build_preset",
    "delaunay_road_network",
    "extract_objects",
    "grid_network",
    "network_distance",
    "select_query_points",
    "__version__",
]
