"""A violation excused by a per-line suppression comment."""


def walk(network, node):
    return network.neighbors(node)  # repro: ignore[REPRO-PAGE01] fixture


def walk_blanket(network, node):
    return network.neighbors(node)  # repro: ignore
