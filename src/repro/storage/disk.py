"""The simulated disk: a flat address space of pages.

:class:`DiskManager` owns every page of one storage stack and hands out
new page ids.  All *reads must go through a buffer pool* — the manager
itself only counts raw accesses, the pool adds LRU caching on top.
"""

from __future__ import annotations

from repro.storage.page import DEFAULT_PAGE_SIZE, Page


class DiskManager:
    """Allocates and serves fixed-size pages, counting raw accesses."""

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if page_size <= 0:
            raise ValueError(f"page size must be positive, got {page_size}")
        self._page_size = page_size
        self._pages: dict[int, Page] = {}
        self._next_id = 0
        self.raw_reads = 0
        self.raw_writes = 0

    @property
    def page_size(self) -> int:
        return self._page_size

    @property
    def page_count(self) -> int:
        return len(self._pages)

    def allocate(self) -> Page:
        """Create a fresh empty page and return it."""
        page = Page(page_id=self._next_id, capacity=self._page_size)
        self._pages[self._next_id] = page
        self._next_id += 1
        self.raw_writes += 1
        return page

    def read(self, page_id: int) -> Page:
        """Fetch a page from 'disk' (one raw read)."""
        try:
            page = self._pages[page_id]
        except KeyError:
            raise PageNotFoundError(f"no page with id {page_id}") from None
        self.raw_reads += 1
        return page

    def exists(self, page_id: int) -> bool:
        return page_id in self._pages

    def page_ids(self) -> list[int]:
        """All allocated page ids in allocation order."""
        return sorted(self._pages)


class PageNotFoundError(KeyError):
    """Raised when a page id does not exist on the simulated disk."""
