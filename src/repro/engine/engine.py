"""The unified distance service every layer routes through.

One :class:`DistanceEngine` per :class:`~repro.core.query.Workspace`
owns all network-distance work:

* an **expander pool** keeping resumable wavefronts alive, so repeated
  calls with the same source location continue a previous expansion
  instead of restarting it (the paper's Section 6.1 maintained-state
  idea, promoted from per-algorithm bookkeeping to a shared service);
* a bounded LRU **memo** of settled ``(source, target) -> distance``
  results shared across queries, algorithms and backends;
* pluggable **backends** (:mod:`repro.engine.backends`) selected
  per-engine or per-call;
* batch helpers (:meth:`distances`, :meth:`matrix`, :meth:`vectors`)
  that order work source-major to maximise wavefront reuse;
* the workspace's ``store`` threaded into every expander it builds, so
  page reads are charged by default — call sites can no longer forget.

Cached state is only as good as the graph it was computed on; the
workspace's mutation paths call :meth:`invalidate` (object churn) or
:meth:`invalidate_network` (edge-weight changes, which additionally
reset backend precomputation such as landmark tables).

Construction discipline: outside :mod:`repro.engine` and
:mod:`repro.network`, nothing instantiates
:class:`~repro.network.dijkstra.DijkstraExpander` or
:class:`~repro.network.astar.AStarExpander` directly — a grep-enforced
test (``tests/test_engine.py``) keeps it that way.

Concurrency contract
--------------------
The engine's *bookkeeping* is thread-safe: the distance memo and the
expander pool are guarded by locks, so concurrent threads can look up
and record distances, check expanders out of the pool, and trigger
invalidations without corrupting the LRU structures or losing counter
updates.  What is **not** safe is two threads *driving the same
expander object* at the same time — a resumable wavefront is one
priority queue and one settled map, and interleaved ``distance_to``
calls on it would interleave two searches.  Callers that share an
engine across threads must therefore partition work so that no two
concurrently-executing queries share a source location (pool keys are
per-source).  The serving layer (:mod:`repro.service`) enforces
exactly that: its batch scheduler never lets two in-flight batches
overlap in query points, and workspace mutations run behind a
writer-exclusive lock (see :meth:`Workspace.mutating
<repro.core.query.Workspace.mutating>`), so invalidation never races a
live wavefront.  Single-threaded use is unaffected.

Per-query counter *deltas* (``nodes_settled``, memo hit/miss) are only
meaningful when one query runs at a time; under concurrency they
describe the engine as a whole, which is what ``/statsz`` reports.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Sequence

from repro.engine.backends import (
    BACKEND_NAMES,
    DEFAULT_BACKEND,
    DEFAULT_LANDMARK_COUNT,
    ORACLE_BACKEND_NAMES,
    DistanceBackend,
    make_backend,
    mirror_oracle_store,
)
from repro.columnar.store import VectorTable
from repro.engine.cache import DEFAULT_MEMO_CAPACITY, DistanceMemo
from repro.network.astar import AStarExpander, HeuristicFn
from repro.network.dijkstra import DijkstraExpander
from repro.network.graph import NetworkLocation, RoadNetwork
from repro.network.storage import NetworkStore
from repro.obs import tracing
from repro.oracle import OracleIndex, OracleIndexError, network_signature
from repro.oracle.runtime import DistanceOracle

DEFAULT_POOL_CAPACITY = 128


@dataclass(frozen=True)
class EngineCounters:
    """A snapshot of the engine's monotone counters.

    ``hits``/``misses``/``evictions`` describe the distance memo;
    ``pool_reuses``/``pool_evictions`` the expander pool;
    ``invalidations`` counts mutation-triggered cache drops.  Per-query
    figures are deltas between two snapshots (see ``core/base.py``).
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    pool_reuses: int = 0
    pool_evictions: int = 0


def location_key(location: NetworkLocation) -> tuple:
    """A hashable, purely numeric identity for a network location.

    Public because the serving layer batches and partitions requests by
    the same identity the pool is keyed on.
    """
    if location.node_id is not None:
        return (0, location.node_id, 0.0)
    return (1, location.edge_id, location.offset)


# Internal alias kept for the pool/memo key helpers below.
_location_key = location_key


def _pair_key(a: NetworkLocation, b: NetworkLocation) -> tuple:
    """Order-free memo key — the network is undirected, so d is symmetric."""
    ka = _location_key(a)
    kb = _location_key(b)
    return (ka, kb) if ka <= kb else (kb, ka)


class DistanceEngine:
    """Single entry point for all network-distance computation."""

    def __init__(
        self,
        network: RoadNetwork,
        store: NetworkStore | None = None,
        placements=None,
        backend: str = DEFAULT_BACKEND,
        memo_capacity: int = DEFAULT_MEMO_CAPACITY,
        pool_capacity: int = DEFAULT_POOL_CAPACITY,
        landmark_count: int = DEFAULT_LANDMARK_COUNT,
        landmark_seed: int = 0,
    ) -> None:
        if backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown distance backend {backend!r}; "
                f"choose from {BACKEND_NAMES}"
            )
        if pool_capacity < 1:
            raise ValueError(f"pool capacity must be >= 1, got {pool_capacity}")
        self.network = network
        self.store = store
        self.placements = placements
        self.backend_name = backend
        self.pool_capacity = pool_capacity
        self.landmark_count = landmark_count
        self.landmark_seed = landmark_seed

        self._backends: dict[str, DistanceBackend] = {}
        self._attached_oracle: DistanceOracle | None = None
        self._pool: OrderedDict[tuple, object] = OrderedDict()
        self._memo = DistanceMemo(memo_capacity)
        self._retired_nodes = 0
        self._pool_reuses = 0
        self._pool_evictions = 0
        # Guards the pool's OrderedDict, the backend registry and the
        # invalidation-coalescing state; reentrant because invalidation
        # paths nest (see the module docstring's concurrency contract).
        self._lock = threading.RLock()
        self._invalidation_depth = 0
        self._pending_invalidation = 0  # 0 none, 1 objects, 2 network

    # ------------------------------------------------------------------
    # Backends
    # ------------------------------------------------------------------
    def _backend(self, name: str | None = None) -> DistanceBackend:
        name = name or self.backend_name
        with self._lock:
            backend = self._backends.get(name)
            if backend is None:
                backend = make_backend(
                    name,
                    self.network,
                    store=self.store,
                    landmark_count=self.landmark_count,
                    landmark_seed=self.landmark_seed,
                )
                self._backends[name] = backend
            return backend

    def _astar_backend_name(self) -> str:
        """The A*-family backend matching the engine's configuration.

        Algorithms whose cost model is built on goal-directed search
        (EDC, LBC, the ANN lower-bound processor) stay on A* even when
        the engine default is ``"dijkstra"``; a landmark configuration
        is honoured as-is.  Oracle backends also map to plain A*: their
        answers come from the index via :meth:`oracle_distance`, so the
        expander behind them only ever runs as an online fallback.
        """
        if self.backend_name == "dijkstra" or self.backend_name in ORACLE_BACKEND_NAMES:
            return "astar"
        return self.backend_name

    # ------------------------------------------------------------------
    # Distance oracle (preprocessed index)
    # ------------------------------------------------------------------
    def attach_oracle(self, index: OracleIndex) -> DistanceOracle:
        """Adopt a persisted index as this engine's distance oracle.

        The index must carry the signature of *this* network — an index
        built on any other graph (or this graph before a mutation) is
        rejected instead of silently answering wrong distances.  The
        oracle's records live behind their own page store, sized like
        the workspace's network store, so lookups pay page accounting.
        """
        signature = network_signature(self.network)
        if index.signature != signature:
            raise OracleIndexError(
                "oracle index signature does not match this network "
                f"(index {index.signature[:12]}…, network {signature[:12]}…)"
            )
        handle = DistanceOracle(
            index,
            self.network,
            store=mirror_oracle_store(index, self.network, self.store),
        )
        with self._lock:
            self._attached_oracle = handle
        return handle

    def _usable_oracle(self, build: bool) -> DistanceOracle | None:
        """The oracle that may answer right now, or ``None``.

        An explicitly attached handle wins; otherwise an oracle backend
        supplies its own (built lazily when ``build`` is set).  A stale
        handle — the network mutated underneath a persisted index —
        refuses to answer: the fallback is recorded and the caller
        resolves online.
        """
        handle = self._attached_oracle
        if handle is None and self.backend_name in ORACLE_BACKEND_NAMES:
            backend = self._backend(self.backend_name)
            handle = backend.oracle() if build else backend.oracle_if_built()
        if handle is None:
            return None
        if handle.stale:
            tracing.record("oracle_fallbacks")
            return None
        return handle

    def oracle_distance(
        self, source: NetworkLocation, target: NetworkLocation
    ) -> float | None:
        """Distance answered from the index, or ``None`` to fall back.

        ``None`` means *no usable oracle* (none attached, backend is
        not an oracle backend, or the index went stale) — never an
        unreachable pair, which answers ``inf`` like every other path.
        """
        oracle = self._usable_oracle(build=True)
        if oracle is None:
            return None
        return oracle.distance(source, target)

    def ensure_oracle(self) -> DistanceOracle | None:
        """Force the lazy oracle build now (bench ``preprocessed`` state).

        Returns the usable handle, or ``None`` when this engine has no
        oracle to offer (non-oracle backend, nothing attached).
        """
        handle = self._attached_oracle
        if handle is not None and not handle.stale:
            return handle
        if self.backend_name in ORACLE_BACKEND_NAMES:
            return self._backend(self.backend_name).oracle()
        return None

    def _peek_oracle(self) -> DistanceOracle | None:
        """The current handle without triggering a build (may be stale)."""
        handle = self._attached_oracle
        if handle is not None:
            return handle
        with self._lock:
            backend = self._backends.get(self.backend_name)
        if backend is not None and hasattr(backend, "oracle_if_built"):
            return backend.oracle_if_built()
        return None

    def oracle_store(self):
        """The oracle's page store, if an oracle with one exists."""
        handle = self._peek_oracle()
        return handle.store if handle is not None else None

    def oracle_io_stats(self):
        """The oracle store's :class:`IOStats`, or ``None``."""
        store = self.oracle_store()
        return store.stats if store is not None else None

    def reset_oracle_io(self, cold: bool = True) -> None:
        """Zero oracle page counters (and, when cold, its buffer).

        Peek-only: never triggers a build, so a workspace that owns no
        oracle pays nothing here.
        """
        handle = self._peek_oracle()
        if handle is not None:
            handle.reset_io(cold=cold)

    # ------------------------------------------------------------------
    # Expander pool
    # ------------------------------------------------------------------
    def _checkout(self, key: tuple, factory):
        with self._lock:
            expander = self._pool.get(key)
            if expander is not None:
                self._pool.move_to_end(key)
                self._pool_reuses += 1
                return expander
            expander = factory()
            self._pool[key] = expander
            while len(self._pool) > self.pool_capacity:
                _, evicted = self._pool.popitem(last=False)
                self._retired_nodes += evicted.nodes_settled
                self._pool_evictions += 1
            return expander

    def expander(self, source: NetworkLocation, backend: str | None = None):
        """A pooled resumable expander for ``source`` (backend default).

        Repeated calls with the same source (and backend) return the
        same object, wavefront intact.
        """
        chosen = self._backend(backend)
        key = (chosen.name, _location_key(source), None)
        return self._checkout(key, lambda: chosen.make_expander(source))

    def astar_expander(
        self,
        source: NetworkLocation,
        heuristic: HeuristicFn | None = None,
        slot: int | None = None,
    ) -> AStarExpander:
        """A pooled A*-family expander for goal-directed algorithms.

        Without ``heuristic`` the engine's A* backend supplies one
        (landmarks when configured, Euclidean otherwise).  ``slot``
        separates pool entries for callers that interleave
        ``search_toward`` handles across several expanders — two
        co-located query points must not collapse onto one expander, or
        one dimension's live search would invalidate the other's.
        """
        if heuristic is not None:
            key = (f"astar@{id(heuristic):x}", _location_key(source), slot)
            return self._checkout(
                key,
                lambda: AStarExpander(
                    self.network, source, store=self.store, heuristic=heuristic
                ),
            )
        chosen = self._backend(self._astar_backend_name())
        key = (chosen.name, _location_key(source), slot)
        return self._checkout(key, lambda: chosen.make_expander(source))

    def ine_expander(self, source: NetworkLocation) -> DijkstraExpander:
        """A *fresh* incremental-nearest-object wavefront (never pooled).

        INE emission state ("which objects has this wavefront already
        reported?") is inherently per-query; reusing it across queries
        would silently drop objects.  The expander still gets the
        engine's store and placement source, so page accounting and
        middle-layer probing work by default.
        """
        return DijkstraExpander(
            self.network, source, store=self.store, placements=self.placements
        )

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def distance(
        self,
        source: NetworkLocation,
        target: NetworkLocation,
        backend: str | None = None,
    ) -> float:
        """Exact network distance, memoised (inf when unreachable).

        When a usable oracle is present (attached index, or an oracle
        backend's own) it answers first — regardless of the ``backend``
        argument, which is safe because every backend is exact and only
        selects *how* a distance is settled.  Without one, the pooled
        expander resolves online as always.
        """
        key = _pair_key(source, target)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        value = self.oracle_distance(source, target)
        if value is None:
            value = self.expander(source, backend=backend).distance_to(target)
        self._memo.put(key, value)
        return value

    def distance_via(
        self,
        source: NetworkLocation,
        target: NetworkLocation,
        expander,
    ) -> float:
        """Memoised distance resolved through a caller-held expander.

        Lets algorithms that drive their own pooled expanders (LBC's
        network-NN stream) still read and feed the cross-query memo.
        An oracle, when usable, outranks the caller's expander too — the
        expander simply stays parked at its current wavefront.
        """
        key = _pair_key(source, target)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        value = self.oracle_distance(source, target)
        if value is None:
            value = expander.distance_to(target)
        self._memo.put(key, value)
        return value

    def record(
        self, source: NetworkLocation, target: NetworkLocation, value: float
    ) -> None:
        """Opportunistically memoise a distance settled elsewhere.

        CE emissions and completed LBC lower-bound searches are exact;
        recording them lets later queries (and ``explain``) answer from
        cache.  Fills never count as hits or misses.
        """
        self._memo.put(_pair_key(source, target), value)

    def distances(
        self,
        source: NetworkLocation,
        targets: Sequence[NetworkLocation],
        backend: str | None = None,
    ) -> list[float]:
        """Distances from one source to many targets, one wavefront."""
        return [self.distance(source, target, backend=backend) for target in targets]

    def matrix(
        self,
        sources: Sequence[NetworkLocation],
        targets: Sequence[NetworkLocation],
        backend: str | None = None,
    ) -> list[list[float]]:
        """``matrix[i][j]`` = distance from ``sources[i]`` to ``targets[j]``.

        Source-major iteration keeps each pooled wavefront hot for the
        full target sweep before moving on.
        """
        with tracing.span(
            "engine.matrix", sources=len(sources), targets=len(targets)
        ):
            return [
                self.distances(source, targets, backend=backend)
                for source in sources
            ]

    def matrix_block(
        self,
        sources: Sequence[NetworkLocation],
        targets: Sequence[NetworkLocation],
        backend: str | None = None,
    ) -> VectorTable:
        """The distance matrix as one flat column block.

        Row ``i`` holds the distances from ``sources[i]`` to every
        target; same source-major sweep as :meth:`matrix`, but the
        values land in a single ``array('d')`` instead of nested lists.
        Requires at least one target (a zero-width table cannot exist).
        """
        table = VectorTable(len(targets))
        data = table.data
        with tracing.span(
            "engine.matrix", sources=len(sources), targets=len(targets)
        ):
            for source in sources:
                for target in targets:
                    data.append(self.distance(source, target, backend=backend))
        return table

    def vector(
        self,
        queries: Sequence[NetworkLocation],
        obj,
        backend: str | None = None,
    ) -> tuple[float, ...]:
        """One object's evaluation vector: distances plus attributes."""
        distances = tuple(
            self.distance(q, obj.location, backend=backend) for q in queries
        )
        return distances + obj.attributes

    def vectors(
        self,
        queries: Sequence[NetworkLocation],
        objects: Sequence,
        backend: str | None = None,
    ) -> list[tuple[float, ...]]:
        """Evaluation vectors for many objects, ordered like ``objects``.

        A thin view over :meth:`vectors_block`: the block carries the
        values, each row is materialised once at this boundary.
        """
        if not objects or len(queries) + len(objects[0].attributes) == 0:
            # Degenerate shapes a zero-width block cannot carry.
            locations = [obj.location for obj in objects]
            with tracing.span(
                "engine.vectors", queries=len(queries), objects=len(objects)
            ):
                columns = [
                    self.distances(q, locations, backend=backend) for q in queries
                ]
            return [
                tuple(column[i] for column in columns) + obj.attributes
                for i, obj in enumerate(objects)
            ]
        table = self.vectors_block(queries, objects, backend=backend)
        return [table.row(i) for i in range(len(table))]

    def vectors_block(
        self,
        queries: Sequence[NetworkLocation],
        objects: Sequence,
        backend: str | None = None,
    ) -> VectorTable:
        """Evaluation vectors for many objects as one flat column block.

        Row ``i`` = distances of ``objects[i]`` to every query, then its
        static attributes.  Work runs source-major (every object against
        one query before the next query starts) so each wavefront is
        reused across the whole object set — the batch-API contract of
        the engine.
        """
        locations = [obj.location for obj in objects]
        with tracing.span(
            "engine.vectors", queries=len(queries), objects=len(objects)
        ):
            columns = [
                self.distances(q, locations, backend=backend) for q in queries
            ]
        attribute_count = len(objects[0].attributes) if objects else 0
        table = VectorTable(len(queries) + attribute_count)
        data = table.data
        for i, obj in enumerate(objects):
            for column in columns:
                data.append(column[i])
            data.extend(obj.attributes)
        return table

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def counters(self) -> EngineCounters:
        memo = self._memo.counters
        return EngineCounters(
            hits=memo.hits,
            misses=memo.misses,
            evictions=memo.evictions,
            invalidations=memo.invalidations,
            pool_reuses=self._pool_reuses,
            pool_evictions=self._pool_evictions,
        )

    def nodes_settled(self) -> int:
        """Total nodes ever settled by engine-owned expanders (monotone).

        Includes wavefronts already evicted from the pool; algorithms
        report per-run work as the delta around their execution.
        """
        with self._lock:
            live = sum(e.nodes_settled for e in self._pool.values())
            return self._retired_nodes + live

    def cache_info(self) -> dict[str, int | str]:
        """A flat summary for CLI output and debugging."""
        c = self.counters
        with self._lock:
            pool_entries = len(self._pool)
        oracle = self._peek_oracle()
        if oracle is None:
            oracle_state = "none"
        else:
            oracle_state = oracle.kind + (" (stale)" if oracle.stale else "")
        return {
            "backend": self.backend_name,
            "oracle": oracle_state,
            "memo_entries": len(self._memo),
            "memo_capacity": self._memo.capacity,
            "pool_entries": pool_entries,
            "pool_capacity": self.pool_capacity,
            "hits": c.hits,
            "misses": c.misses,
            "evictions": c.evictions,
            "invalidations": c.invalidations,
            "pool_reuses": c.pool_reuses,
            "pool_evictions": c.pool_evictions,
        }

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def _retire_pool(self) -> None:
        with self._lock:
            for expander in self._pool.values():
                self._retired_nodes += expander.nodes_settled
            self._pool.clear()

    @contextmanager
    def coalesced_invalidation(self):
        """Defer invalidations inside the block, applying one at the end.

        Compound workspace mutations (``move_object`` = remove + add;
        ``update_edge_length`` re-registers every affected object) call
        the invalidation hooks once per step.  Wrapping the compound
        operation in this context collapses them into a single drop of
        the strongest requested kind — object-level unless any step
        asked for a network-level invalidation.  Nestable; only the
        outermost exit applies.
        """
        with self._lock:
            self._invalidation_depth += 1
        try:
            yield
        finally:
            pending = 0
            with self._lock:
                self._invalidation_depth -= 1
                if self._invalidation_depth == 0:
                    pending = self._pending_invalidation
                    self._pending_invalidation = 0
            if pending == 2:
                self.invalidate_network()
            elif pending == 1:
                self.invalidate()

    def _defer_invalidation(self, level: int) -> bool:
        """Record a pending invalidation if inside a coalescing block."""
        with self._lock:
            if self._invalidation_depth > 0:
                self._pending_invalidation = max(
                    self._pending_invalidation, level
                )
                return True
        return False

    def invalidate(self) -> None:
        """Drop cached distances and wavefronts (object churn).

        Object insertion/removal does not change junction-to-junction
        distances, but pooled INE-free wavefronts and memoised distances
        to *object locations* may now describe stale objects; dropping
        everything is cheap and simple.
        """
        if self._defer_invalidation(1):
            return
        self._memo.clear()
        self._retire_pool()

    def invalidate_network(self) -> None:
        """Drop everything derived from edge weights (graph mutation).

        Beyond :meth:`invalidate`, backend precomputation (landmark
        tables, backend-owned oracle indexes) is reset — it encodes
        distances of the old graph.  An *attached* (persisted) oracle
        cannot be rebuilt from here, so it is marked stale instead:
        further queries record ``oracle_fallbacks`` and resolve online
        until a matching index is re-attached.
        """
        if self._defer_invalidation(2):
            return
        self._memo.clear()
        self._retire_pool()
        with self._lock:
            backends = list(self._backends.values())
            attached = self._attached_oracle
        for backend in backends:
            backend.reset()
        if attached is not None:
            attached.mark_stale()

    def clear(self) -> None:
        """Forget all cached state without counting an invalidation.

        Called by ``Workspace.reset_io(cold=True)`` so cold-buffer
        measurements start from a cold engine too.
        """
        self._memo.clear(count_invalidation=False)
        self._retire_pool()
