"""The registered telemetry vocabulary: span names, counter keys,
metric families.

``/metricsz`` scraping, ``repro trace`` rendering and the
QueryStats-vs-trace reconciliation tests all assume a *fixed* set of
names: a span or counter key that exists only at one call site is a
signal nothing downstream knows how to read.  This module is the
single place a name is minted; the static-analysis rules
``REPRO-TELE01``..``REPRO-TELE03`` (:mod:`repro.analysis`) enforce at
lint time that every literal name passed to
:func:`repro.obs.tracing.record`, :func:`repro.obs.tracing.span` and
the :class:`~repro.obs.metrics.MetricRegistry` registration methods is
drawn from here.

Two shapes of entry exist:

* exact names — ``frozenset`` members matched verbatim;
* patterns — ``fnmatch``-style globs for the name families that embed
  a runtime component (``query.<algorithm>``, ``request.<algorithm>``,
  per-pool page counters).

Keep this module dependency-free (stdlib only): the linter imports it
at lint time, and ``obs`` sits at the bottom of the layer DAG.
"""

from __future__ import annotations

from fnmatch import fnmatchcase

SPAN_NAMES = frozenset(
    {
        # Batch execution (repro.service.batching)
        "batch.warm",
        # Engine batch APIs (repro.engine.engine)
        "engine.matrix",
        "engine.vectors",
        # CE phases (repro.core.ce)
        "ce.filter",
        "ce.refine",
        # EDC phases (repro.core.edc)
        "edc.euclidean",
        "edc.shift",
        "edc.window",
        "edc.refine",
        "edc.closure",
        "edc.stream",
        # LBC phases (repro.core.lbc)
        "lbc.stream",
        "lbc.resolve",
        # Aggregate-NN extension runs (repro.extensions.ann)
        "ann.ce",
        "ann.lb",
        "ann.brute",
        # One root span per `python -m repro.experiments` invocation
        # (repro.experiments.__main__)
        "experiment.run",
        # Columnar block kernels (repro.skyline over repro.columnar)
        "columnar.skyline",
        "columnar.distances",
        # xl scaling-tier phases (repro.bench.xl)
        "xl.run",
        "xl.generate",
        "xl.load",
        "xl.distances",
        "xl.skyline",
        "xl.index",
        # Distance-oracle preprocessing and verification (repro.oracle)
        "oracle.build",
        "oracle.verify",
        # Insight-plane offline analysis (repro.insight.analyze)
        "insight.summarize",
        "insight.compare",
    }
)
"""Exact span names a trace tree may contain."""

SPAN_NAME_PATTERNS = (
    # One root span per algorithm run (repro.core.base).
    "query.*",
    # One admission span per service request (repro.service.service).
    "request.*",
)
"""Glob patterns for span-name families with a runtime component."""

COUNTER_KEYS = frozenset(
    {
        # Wavefront work (repro.network.dijkstra / astar)
        "nodes_settled",
        # Distance-function invocations (core algorithms)
        "distance_computations",
        # LBC lower-bound search expansions (repro.core.lbc)
        "lb_expansions",
        # Rows scanned by the columnar dominance kernels, charged in
        # bulk per block operation (repro.columnar.kernels)
        "dominance_checks",
        # Distance-memo outcomes (repro.engine.cache)
        "engine_hits",
        "engine_misses",
        "engine_evictions",
        # Per-index node visits (repro.index)
        "bptree_nodes",
        "rtree_nodes",
        # Physical page misses per buffer pool; minted per-component in
        # repro.storage.buffer as f"{component}_pages".
        "network_pages",
        "index_pages",
        "middle_pages",
        "oracle_pages",
        # Distance-oracle query work (repro.oracle.runtime): nodes the
        # CH bidirectional upward search settles, hub-label entries the
        # merge scan reads, and lookups refused by a stale index (the
        # engine then resolves online).
        "oracle_nodes_settled",
        "oracle_label_entries",
        "oracle_fallbacks",
    }
)
"""Exact counter keys :func:`repro.obs.tracing.record` may charge."""

COUNTER_KEY_PATTERNS = ()
"""Glob patterns for counter-key families (none today)."""

METRIC_FAMILIES = frozenset(
    {
        # Workspace-level callback bridges (repro.core.query)
        "repro_buffer_reads_total",
        "repro_buffer_hit_ratio",
        "repro_engine_memo_events_total",
        "repro_engine_nodes_settled_total",
        "repro_engine_memo_entries",
        "repro_workspace_objects",
        "repro_workspace_version",
        # Serving layer (repro.service.service)
        "repro_service_requests_total",
        "repro_service_queue_depth",
        "repro_service_active_keys",
        "repro_service_batches_total",
        "repro_service_mutations_total",
        "repro_service_slow_queries_total",
        "repro_service_request_latency_seconds",
        "repro_service_batch_size",
        # Diagnostics plane (repro.service.service over repro.obs.events
        # / recorder / slo): wide-event lifecycle accounting, in-flight
        # registry size, watchdog stall detections, flight-record dumps,
        # and per-objective long-window burn rates.
        "repro_service_events_total",
        "repro_service_inflight",
        "repro_service_stalls_total",
        "repro_service_flight_dumps_total",
        "repro_slo_burn_rate",
        # Event-log health (repro.service.service over repro.obs.events):
        # the wide-event writer's bounded queue, scraped at collect time.
        "repro_event_log_queue_depth",
        # Insight plane (repro.service.service over repro.insight.live):
        # per-cohort rolling latency quantiles and observation counts.
        "repro_insight_latency_seconds",
        "repro_insight_queries_total",
    }
)
"""Every Prometheus metric family ``/metricsz`` may expose."""


def is_registered_span_name(name: str) -> bool:
    """True when ``name`` is in the registered span vocabulary."""
    return name in SPAN_NAMES or any(
        fnmatchcase(name, pattern) for pattern in SPAN_NAME_PATTERNS
    )


def is_registered_counter_key(key: str) -> bool:
    """True when ``key`` is in the registered counter vocabulary."""
    return key in COUNTER_KEYS or any(
        fnmatchcase(key, pattern) for pattern in COUNTER_KEY_PATTERNS
    )


def is_registered_metric_family(name: str) -> bool:
    """True when ``name`` is a registered Prometheus family."""
    return name in METRIC_FAMILIES
