"""Fixed-size disk pages.

A :class:`Page` is a container of opaque records with byte-size
accounting.  The library does not serialise to real bytes — it is a cost
model, not a persistence layer — but each record carries an explicit size
estimate so that pages fill and overflow exactly like 4 KiB disk pages
would, which is what makes the paper's page-access counts meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

DEFAULT_PAGE_SIZE = 4096
"""Page size in bytes used throughout the paper's experiments (4 KiB)."""

PAGE_HEADER_SIZE = 32
"""Bytes reserved per page for header bookkeeping in the cost model."""


@dataclass
class Page:
    """A fixed-capacity page holding ``(record, size)`` pairs."""

    page_id: int
    capacity: int = DEFAULT_PAGE_SIZE
    used: int = PAGE_HEADER_SIZE
    records: list[Any] = field(default_factory=list)
    _sizes: list[int] = field(default_factory=list)

    def fits(self, record_size: int) -> bool:
        """True if a record of ``record_size`` bytes would fit."""
        return self.used + record_size <= self.capacity

    def add(self, record: Any, record_size: int) -> None:
        """Append a record, raising :class:`PageOverflowError` if full."""
        if record_size <= 0:
            raise ValueError(f"record size must be positive, got {record_size}")
        if not self.fits(record_size):
            raise PageOverflowError(
                f"page {self.page_id}: record of {record_size} bytes does not fit "
                f"({self.used}/{self.capacity} used)"
            )
        self.records.append(record)
        self._sizes.append(record_size)
        self.used += record_size

    @property
    def free_space(self) -> int:
        return self.capacity - self.used

    @property
    def record_count(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)


class PageOverflowError(RuntimeError):
    """Raised when a record is added to a page without room for it."""
