"""Simulated storage stack: pages, disk, LRU buffer pool, I/O stats.

This package is the cost model beneath every disk-resident structure in
the library.  It reproduces the paper's experimental storage setup —
4 KiB pages behind a 1 MiB LRU buffer — so "network disk pages accessed"
can be measured exactly as the paper measures it.
"""

from repro.storage.binding import NodePager
from repro.storage.buffer import DEFAULT_BUFFER_BYTES, BufferPool
from repro.storage.disk import DiskManager, PageNotFoundError
from repro.storage.page import (
    DEFAULT_PAGE_SIZE,
    PAGE_HEADER_SIZE,
    Page,
    PageOverflowError,
)
from repro.storage.stats import IOSnapshot, IOStats, StatsRegistry

__all__ = [
    "DEFAULT_BUFFER_BYTES",
    "DEFAULT_PAGE_SIZE",
    "PAGE_HEADER_SIZE",
    "BufferPool",
    "DiskManager",
    "IOSnapshot",
    "IOStats",
    "NodePager",
    "Page",
    "PageNotFoundError",
    "PageOverflowError",
    "StatsRegistry",
]
