"""Plain-text road-network and object-set files.

The paper's datasets came as node/edge files (Digital Chart of the
World exports).  This module reads and writes that style of format so
users can bring their own networks:

Network file (``.net``), whitespace-separated, ``#`` comments::

    node <id> <x> <y>
    edge <id> <u> <v> <length>

Object file (``.obj``)::

    object <id> <edge_id> <offset> [attr1 attr2 ...]

Loaders validate as they go (unknown nodes, bad lengths, duplicate ids
all raise with line numbers) and writers round-trip exactly.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, TextIO

from repro.geometry.point import Point
from repro.network.graph import RoadNetwork
from repro.network.objects import ObjectSet, SpatialObject


class NetworkFormatError(ValueError):
    """Raised for malformed network or object files."""

    def __init__(self, path: str, line_number: int, message: str) -> None:
        super().__init__(f"{path}:{line_number}: {message}")
        self.path = path
        self.line_number = line_number


def _content_lines(handle: TextIO) -> Iterable[tuple[int, list[str]]]:
    for line_number, raw in enumerate(handle, start=1):
        line = raw.split("#", 1)[0].strip()
        if line:
            yield (line_number, line.split())


def save_network(network: RoadNetwork, path: str | Path) -> None:
    """Write a network in the text format described above."""
    path = Path(path)
    with path.open("w") as handle:
        handle.write("# road network: nodes then edges\n")
        for node_id in sorted(network.node_ids()):
            p = network.node_point(node_id)
            handle.write(f"node {node_id} {p.x!r} {p.y!r}\n")
        for edge_id in sorted(network.edge_ids()):
            edge = network.edge(edge_id)
            handle.write(
                f"edge {edge.edge_id} {edge.u} {edge.v} {edge.length!r}\n"
            )


def load_network(path: str | Path) -> RoadNetwork:
    """Read a network file, validating record by record."""
    path = Path(path)
    network = RoadNetwork()
    with path.open() as handle:
        for line_number, fields in _content_lines(handle):
            kind = fields[0]
            try:
                if kind == "node":
                    if len(fields) != 4:
                        raise ValueError(
                            f"node takes 3 fields, got {len(fields) - 1}"
                        )
                    network.add_node(
                        int(fields[1]), Point(float(fields[2]), float(fields[3]))
                    )
                elif kind == "edge":
                    if len(fields) != 5:
                        raise ValueError(
                            f"edge takes 4 fields, got {len(fields) - 1}"
                        )
                    network.add_edge(
                        int(fields[2]),
                        int(fields[3]),
                        length=float(fields[4]),
                        edge_id=int(fields[1]),
                    )
                else:
                    raise ValueError(f"unknown record type {kind!r}")
            except (ValueError, KeyError) as exc:
                raise NetworkFormatError(str(path), line_number, str(exc)) from exc
    return network


def save_objects(objects: ObjectSet, path: str | Path) -> None:
    """Write an object set (edge-resident placements with attributes)."""
    path = Path(path)
    with path.open("w") as handle:
        handle.write("# objects: object <id> <edge_id> <offset> [attrs...]\n")
        for obj in sorted(objects, key=lambda o: o.object_id):
            loc = obj.location
            if loc.edge_id is None:
                # Node-resident objects serialise through an incident
                # edge at offset 0 or length.
                network = objects.network
                neighbors = network.neighbors(loc.node_id)
                if not neighbors:
                    raise ValueError(
                        f"object {obj.object_id} sits on isolated node "
                        f"{loc.node_id}; cannot serialise"
                    )
                _, edge_id = neighbors[0]
                edge = network.edge(edge_id)
                offset = 0.0 if edge.u == loc.node_id else edge.length
            else:
                edge_id = loc.edge_id
                offset = loc.offset
            attrs = " ".join(repr(a) for a in obj.attributes)
            suffix = f" {attrs}" if attrs else ""
            handle.write(f"object {obj.object_id} {edge_id} {offset!r}{suffix}\n")


def load_objects(network: RoadNetwork, path: str | Path) -> ObjectSet:
    """Read an object file against an already-loaded network."""
    path = Path(path)
    objects: list[SpatialObject] = []
    with path.open() as handle:
        for line_number, fields in _content_lines(handle):
            if fields[0] != "object":
                raise NetworkFormatError(
                    str(path), line_number, f"unknown record type {fields[0]!r}"
                )
            if len(fields) < 4:
                raise NetworkFormatError(
                    str(path),
                    line_number,
                    f"object takes at least 3 fields, got {len(fields) - 1}",
                )
            try:
                object_id = int(fields[1])
                edge_id = int(fields[2])
                offset = float(fields[3])
                attributes = tuple(float(f) for f in fields[4:])
                location = network.location_on_edge(edge_id, offset)
            except (ValueError, KeyError) as exc:
                raise NetworkFormatError(str(path), line_number, str(exc)) from exc
            objects.append(
                SpatialObject(
                    object_id=object_id, location=location, attributes=attributes
                )
            )
    return ObjectSet.build(network, objects)
