"""The query workspace: one dataset wired to its storage and indexes.

A :class:`Workspace` owns everything an algorithm needs to answer
multi-source skyline queries over one (network, object set) pair:

* the page-clustered :class:`~repro.network.storage.NetworkStore`
  behind the experiment's LRU buffer;
* the :class:`~repro.network.middle_layer.MiddleLayer` with its own
  B+-tree pager;
* the object R-tree with its pager;

or, in unpaged mode, the in-memory equivalents (for unit tests and for
users who want answers without cost simulation).  Workspaces are built
once per dataset and reused across many queries — exactly how the
paper's experiments amortise their setup.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.index.rtree import DEFAULT_MAX_ENTRIES, RTree
from repro.network.graph import NetworkLocation, RoadNetwork
from repro.network.middle_layer import InMemoryPlacements, MiddleLayer
from repro.network.objects import ObjectSet
from repro.network.storage import NetworkStore
from repro.storage.binding import NodePager
from repro.storage.buffer import DEFAULT_BUFFER_BYTES
from repro.storage.page import DEFAULT_PAGE_SIZE


@dataclass
class Workspace:
    """A dataset plus its (optionally simulated-disk) access structures."""

    network: RoadNetwork
    objects: ObjectSet
    store: NetworkStore | None
    middle: MiddleLayer | InMemoryPlacements
    object_rtree: RTree
    rtree_pager: NodePager | None
    middle_pager: NodePager | None

    @classmethod
    def build(
        cls,
        network: RoadNetwork,
        objects: ObjectSet,
        paged: bool = True,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
        rtree_max_entries: int = DEFAULT_MAX_ENTRIES,
        bptree_order: int = 64,
        buffer_policy: str = "lru",
    ) -> "Workspace":
        """Assemble the workspace, clustering and indexing the dataset.

        ``buffer_policy`` selects the page-replacement policy for every
        pool ("lru" — the paper's setup — "fifo" or "clock").
        """
        if objects.network is not network:
            raise ValueError("object set was built for a different network")
        objects.validate_uniform_attributes()
        if paged:
            store = NetworkStore(
                network,
                page_size=page_size,
                buffer_bytes=buffer_bytes,
                policy=buffer_policy,
            )
            middle_pager = NodePager(
                buffer_bytes=buffer_bytes, page_size=page_size, policy=buffer_policy
            )
            middle: MiddleLayer | InMemoryPlacements = MiddleLayer.build(
                objects, order=bptree_order, pager=middle_pager
            )
            rtree_pager = NodePager(
                buffer_bytes=buffer_bytes, page_size=page_size, policy=buffer_policy
            )
            object_rtree = objects.build_rtree(
                max_entries=rtree_max_entries, pager=rtree_pager
            )
        else:
            store = None
            middle_pager = None
            middle = InMemoryPlacements(objects)
            rtree_pager = None
            object_rtree = objects.build_rtree(max_entries=rtree_max_entries)
        return cls(
            network=network,
            objects=objects,
            store=store,
            middle=middle,
            object_rtree=object_rtree,
            rtree_pager=rtree_pager,
            middle_pager=middle_pager,
        )

    # ------------------------------------------------------------------
    # I/O accounting
    # ------------------------------------------------------------------
    def reset_io(self, cold: bool = True) -> None:
        """Zero counters before a measured query (cold = empty buffers)."""
        if self.store is not None:
            self.store.reset(cold=cold)
        for pager in (self.rtree_pager, self.middle_pager):
            if pager is not None:
                pager.pool.reset_stats()
                if cold:
                    pager.pool.clear()

    def network_pages_read(self) -> int:
        """Physical network-store reads since the last reset."""
        return self.store.stats.physical_reads if self.store is not None else 0

    def index_pages_read(self) -> int:
        """Physical object-R-tree page reads since the last reset."""
        return (
            self.rtree_pager.stats.physical_reads
            if self.rtree_pager is not None
            else 0
        )

    def middle_pages_read(self) -> int:
        """Physical middle-layer page reads since the last reset."""
        return (
            self.middle_pager.stats.physical_reads
            if self.middle_pager is not None
            else 0
        )

    # ------------------------------------------------------------------
    # Dynamic object updates
    # ------------------------------------------------------------------
    def add_object(self, obj) -> None:
        """Add one object, keeping every derived index consistent.

        Updates the object set, the middle layer's B+-tree and the
        object R-tree in one step; subsequent queries see the object.
        """
        self.objects.add(obj)
        self.middle.add_object(obj)
        self.object_rtree.insert_point(obj.point, obj)

    def remove_object(self, object_id: int) -> None:
        """Remove one object everywhere (KeyError when absent)."""
        obj = self.objects.remove(object_id)
        self.middle.remove_object(obj)
        self.object_rtree.delete_point(obj.point, obj)

    # ------------------------------------------------------------------
    # Query-point helpers
    # ------------------------------------------------------------------
    def validate_queries(self, queries: list[NetworkLocation]) -> None:
        """Reject empty or foreign query-point lists early."""
        if not queries:
            raise ValueError("a skyline query needs at least one query point")
        for q in queries:
            if q.node_id is not None and not self.network.has_node(q.node_id):
                raise KeyError(f"query point at unknown node {q.node_id}")
            if q.edge_id is not None:
                self.network.edge(q.edge_id)  # KeyError for foreign edges

    @property
    def attribute_count(self) -> int:
        """Static (non-spatial) attributes carried by every object."""
        return self.objects.attribute_count
