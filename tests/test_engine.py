"""The distance engine: memo, pool, backends, accounting, discipline.

Covers the service layer itself (``repro.engine``) plus the two
contracts the refactor established repo-wide:

* every expander the engine hands out charges page reads to the
  workspace's buffer pool by default, and
* no module outside ``repro.engine``/``repro.network`` constructs a
  raw expander (grep-enforced below).
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.core import CE, EDC, LBC, NaiveSkyline, Workspace
from repro.core.explain import object_vector
from repro.datasets import grid_network
from repro.datasets.objects import extract_objects
from repro.engine import (
    BACKEND_NAMES,
    DistanceEngine,
    DistanceMemo,
    make_backend,
)
from repro.network import network_distance
from repro.network.astar import AStarExpander
from repro.network.dijkstra import DijkstraExpander

from conftest import build_random_network, place_random_objects, random_locations


def small_workspace(seed=42, paged=False, backend="dijkstra"):
    network = build_random_network(40, 25, seed=seed, detour_max=0.6)
    objects = place_random_objects(network, 20, seed=seed + 1)
    workspace = Workspace.build(
        network, objects, paged=paged, distance_backend=backend
    )
    return network, workspace


# ----------------------------------------------------------------------
# DistanceMemo
# ----------------------------------------------------------------------
class TestDistanceMemo:
    def test_hit_miss_counting(self):
        memo = DistanceMemo(8)
        assert memo.get(("a", "b")) is None
        memo.put(("a", "b"), 1.5)
        assert memo.get(("a", "b")) == 1.5
        assert memo.counters.misses == 1
        assert memo.counters.hits == 1

    def test_lru_eviction(self):
        memo = DistanceMemo(2)
        memo.put("a", 1.0)
        memo.put("b", 2.0)
        assert memo.get("a") == 1.0  # refresh "a": "b" is now LRU
        memo.put("c", 3.0)
        assert "b" not in memo
        assert "a" in memo and "c" in memo
        assert memo.counters.evictions == 1

    def test_clear_counts_invalidation(self):
        memo = DistanceMemo(8)
        memo.put("a", 1.0)
        memo.clear()
        assert len(memo) == 0
        assert memo.counters.invalidations == 1
        memo.clear(count_invalidation=False)
        assert memo.counters.invalidations == 1


# ----------------------------------------------------------------------
# Engine memo semantics
# ----------------------------------------------------------------------
class TestEngineMemo:
    def test_repeated_distance_hits_cache(self):
        network, workspace = small_workspace()
        engine = workspace.engine
        a, b = random_locations(network, 2, seed=7)
        first = engine.distance(a, b)
        before = engine.counters
        second = engine.distance(a, b)
        after = engine.counters
        assert second == first
        assert after.hits == before.hits + 1
        assert after.misses == before.misses

    def test_memo_key_is_symmetric(self):
        network, workspace = small_workspace()
        engine = workspace.engine
        a, b = random_locations(network, 2, seed=11)
        forward = engine.distance(a, b)
        before = engine.counters
        backward = engine.distance(b, a)
        assert backward == pytest.approx(forward)
        assert engine.counters.hits == before.hits + 1

    def test_record_feeds_later_queries(self):
        network, workspace = small_workspace()
        engine = workspace.engine
        a, b = random_locations(network, 2, seed=13)
        truth = DijkstraExpander(network, a).distance_to(b)
        engine.record(a, b, truth)
        before = engine.counters
        assert engine.distance(a, b) == truth
        assert engine.counters.hits == before.hits + 1

    def test_matches_raw_dijkstra(self):
        network, workspace = small_workspace()
        engine = workspace.engine
        locations = random_locations(network, 6, seed=17)
        for a in locations[:3]:
            for b in locations[3:]:
                expected = DijkstraExpander(network, a).distance_to(b)
                assert engine.distance(a, b) == pytest.approx(expected)


# ----------------------------------------------------------------------
# Expander pool
# ----------------------------------------------------------------------
class TestExpanderPool:
    def test_same_source_reuses_expander(self):
        network, workspace = small_workspace()
        engine = workspace.engine
        source = network.location_at_node(sorted(network.node_ids())[0])
        first = engine.expander(source)
        second = engine.expander(source)
        assert first is second
        assert engine.counters.pool_reuses >= 1

    def test_eviction_retires_settled_nodes(self):
        network, _ = small_workspace()
        engine = DistanceEngine(network, pool_capacity=1)
        nodes = sorted(network.node_ids())
        first = engine.expander(network.location_at_node(nodes[0]))
        while first.expand_next() is not None:
            pass
        settled = first.nodes_settled
        assert settled > 0
        engine.expander(network.location_at_node(nodes[1]))  # evicts first
        assert engine.counters.pool_evictions == 1
        assert engine.nodes_settled() >= settled

    def test_astar_slots_do_not_collide(self):
        network, workspace = small_workspace()
        engine = workspace.engine
        source = network.location_at_node(sorted(network.node_ids())[0])
        a = engine.astar_expander(source, slot=0)
        b = engine.astar_expander(source, slot=1)
        assert a is not b
        assert a is engine.astar_expander(source, slot=0)

    def test_ine_expander_never_pooled(self):
        network, workspace = small_workspace()
        engine = workspace.engine
        source = network.location_at_node(sorted(network.node_ids())[0])
        assert engine.ine_expander(source) is not engine.ine_expander(source)


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
class TestBackends:
    def test_backend_names_stable(self):
        assert BACKEND_NAMES == (
            "astar",
            "astar+landmarks",
            "ch",
            "dijkstra",
            "hublabel",
        )

    def test_unknown_backend_rejected(self):
        network, _ = small_workspace()
        with pytest.raises(ValueError, match="unknown distance backend"):
            DistanceEngine(network, backend="bogus")
        with pytest.raises(ValueError, match="unknown distance backend"):
            make_backend("bogus", network)

    def test_per_call_backend_override(self):
        network, workspace = small_workspace()
        engine = workspace.engine
        source = network.location_at_node(sorted(network.node_ids())[0])
        assert isinstance(engine.expander(source), DijkstraExpander)
        assert isinstance(
            engine.expander(source, backend="astar"), AStarExpander
        )

    def test_workspace_backend_selection(self):
        _, workspace = small_workspace(backend="astar+landmarks")
        assert workspace.engine.backend_name == "astar+landmarks"
        stats = LBC().run(
            workspace, random_locations(workspace.network, 2, seed=3)
        ).stats
        assert stats.distance_backend == "astar+landmarks"


# ----------------------------------------------------------------------
# Accounting: the store-threading bugfixes
# ----------------------------------------------------------------------
class TestAccounting:
    def test_engine_distances_charge_page_reads(self):
        network, workspace = small_workspace(paged=True)
        workspace.reset_io(cold=True)
        a, b = random_locations(network, 2, seed=19)
        workspace.engine.distance(a, b)
        assert workspace.network_pages_read() > 0

    def test_object_vector_charges_page_reads(self):
        # Regression: explain.object_vector used to build expanders
        # without the store, so its page reads were invisible.
        network, workspace = small_workspace(paged=True)
        queries = random_locations(network, 2, seed=23)
        workspace.reset_io(cold=True)
        object_id = next(iter(workspace.objects)).object_id
        object_vector(workspace, queries, object_id)
        assert workspace.network_pages_read() > 0

    def test_network_distance_store_parameter(self):
        network, workspace = small_workspace(paged=True)
        a, b = random_locations(network, 2, seed=29)
        workspace.reset_io(cold=True)
        without = network_distance(network, a, b)
        assert workspace.network_pages_read() == 0
        with_store = network_distance(network, a, b, store=workspace.store)
        assert workspace.network_pages_read() > 0
        assert with_store == pytest.approx(without)

    def test_engine_counters_reach_query_stats(self):
        network, workspace = small_workspace()
        queries = random_locations(network, 2, seed=31)
        first = NaiveSkyline().run(workspace, queries).stats
        # Identical repeat: every distance now comes from the memo.
        second = NaiveSkyline().run(workspace, queries).stats
        assert first.distance_backend == "dijkstra"
        assert second.engine_hits > 0
        assert second.nodes_settled == 0
        row = second.as_row()
        assert row["eng_hits"] == second.engine_hits
        assert second.engine_hit_ratio == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Regression: explain reuses wavefronts instead of one Dijkstra per pair
# ----------------------------------------------------------------------
class TestExplainRegression:
    def test_object_vector_visits_fewer_nodes_than_per_pair_dijkstra(self):
        network, workspace = small_workspace()
        queries = random_locations(network, 3, seed=37)
        object_ids = sorted(o.object_id for o in workspace.objects)[:8]

        # Seed behaviour: a fresh full-strength Dijkstra per (q, obj).
        baseline = 0
        for object_id in object_ids:
            obj = workspace.objects.get(object_id)
            for q in queries:
                expander = DijkstraExpander(network, q)
                expander.distance_to(obj.location)
                baseline += expander.nodes_settled

        engine = workspace.engine
        before = engine.nodes_settled()
        for object_id in object_ids:
            object_vector(workspace, queries, object_id)
        engine_nodes = engine.nodes_settled() - before

        assert engine_nodes < 0.7 * baseline


# ----------------------------------------------------------------------
# Backend equivalence: distances and skylines agree across backends
# ----------------------------------------------------------------------
class TestBackendEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_distances_identical_on_grids(self, seed):
        network = grid_network(5, 6, jitter=0.25, detour=1.3, seed=seed)
        plain = DistanceEngine(network, backend="dijkstra")
        guided = DistanceEngine(
            network, backend="astar+landmarks", landmark_count=4
        )
        locations = random_locations(network, 8, seed=seed + 50)
        for a in locations[:4]:
            for b in locations[4:]:
                assert guided.distance(a, b) == pytest.approx(
                    plain.distance(a, b)
                )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_skylines_identical_on_grids(self, seed):
        network = grid_network(5, 5, jitter=0.2, detour=1.4, seed=seed)
        objects = extract_objects(network, omega=0.6, seed=seed + 1)
        queries = random_locations(network, 3, seed=seed + 2)
        results = {}
        for backend in ("dijkstra", "astar+landmarks"):
            workspace = Workspace.build(
                network, objects, paged=False, distance_backend=backend
            )
            results[backend] = [
                algorithm.run(workspace, queries)
                for algorithm in (CE(), EDC(), LBC())
            ]
        for plain, guided in zip(results["dijkstra"], results["astar+landmarks"]):
            assert plain.same_answer(guided)


# ----------------------------------------------------------------------
# Construction discipline (grep-enforced)
# ----------------------------------------------------------------------
class TestConstructionDiscipline:
    ALLOWED_TOP_LEVEL = {"engine", "network"}
    PATTERN = re.compile(r"\b(?:DijkstraExpander|AStarExpander)\s*\(")

    def test_no_direct_expander_construction_outside_engine_and_network(self):
        src = Path(__file__).resolve().parents[1] / "src" / "repro"
        offenders = []
        for path in sorted(src.rglob("*.py")):
            rel = path.relative_to(src)
            if rel.parts[0] in self.ALLOWED_TOP_LEVEL:
                continue
            for lineno, line in enumerate(
                path.read_text().splitlines(), start=1
            ):
                if self.PATTERN.search(line):
                    offenders.append(f"src/repro/{rel}:{lineno}: {line.strip()}")
        assert not offenders, (
            "raw expander construction outside repro.engine/repro.network "
            "(route through workspace.engine instead):\n" + "\n".join(offenders)
        )
