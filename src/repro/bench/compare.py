"""Artifact comparison: hard counter gates, advisory timing checks.

The split mirrors what each number *means*:

* Deterministic counters (pages read, nodes settled, memo hits) are
  properties of the algorithm, not the machine.  Any regression beyond
  ``counter_tolerance`` (default: exactly zero slack) is a **failure**
  — the comparator exits non-zero and CI goes red.
* Wall timings depend on the runner's hardware and load.  Movement
  beyond ``timing_tolerance`` (default 50 %) is a **warning** only; it
  never affects the exit code.

Structural rules:

* schema/suite-version mismatch → failure (numbers across versions are
  not comparable; refresh the baseline deliberately instead);
* benchmark present in baseline but missing from current → warning
  (coverage shrank — visible, not fatal, since suites evolve);
* benchmark new in current → note;
* counter key present in baseline but missing from current → failure
  (a silently dropped counter would otherwise hide regressions).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

# The growth arithmetic is shared with `repro insight compare`
# (repro.insight.gate): both gates must answer "did this number get
# worse?" identically, so it lives once, in the lower-ranked package.
from repro.insight.gate import relative_increase as _relative_increase

#: Default relative slack on deterministic counters: none.
DEFAULT_COUNTER_TOLERANCE = 0.0
#: Default relative slack on advisory p50 timings: 50 %.
DEFAULT_TIMING_TOLERANCE = 0.5


@dataclass
class ComparisonReport:
    """Outcome of comparing a current artifact against a baseline."""

    baseline_revision: str = ""
    current_revision: str = ""
    failures: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "baseline_revision": self.baseline_revision,
            "current_revision": self.current_revision,
            "failures": list(self.failures),
            "warnings": list(self.warnings),
            "notes": list(self.notes),
        }


def load_artifact(path: str) -> dict:
    """Read and minimally validate a ``BENCH_*.json`` file."""
    with open(path) as handle:
        artifact = json.load(handle)
    if not isinstance(artifact, dict) or "benchmarks" not in artifact:
        raise ValueError(f"{path} is not a repro-bench artifact")
    return artifact


def _by_id(artifact: dict) -> dict[str, dict]:
    return {record["id"]: record for record in artifact.get("benchmarks", [])}


def compare_artifacts(
    baseline: dict,
    current: dict,
    counter_tolerance: float = DEFAULT_COUNTER_TOLERANCE,
    timing_tolerance: float = DEFAULT_TIMING_TOLERANCE,
) -> ComparisonReport:
    """Gate ``current`` against ``baseline``; see the module docstring."""
    report = ComparisonReport(
        baseline_revision=str(baseline.get("revision", "?")),
        current_revision=str(current.get("revision", "?")),
    )

    for key in ("schema", "schema_version", "suite", "suite_version"):
        if baseline.get(key) != current.get(key):
            report.failures.append(
                f"{key} mismatch: baseline={baseline.get(key)!r} "
                f"current={current.get(key)!r} — artifacts are not "
                f"comparable; refresh the baseline"
            )
    if report.failures:
        return report

    base_records = _by_id(baseline)
    curr_records = _by_id(current)

    for bench_id in sorted(set(base_records) - set(curr_records)):
        report.warnings.append(
            f"{bench_id}: in baseline but not in current run "
            f"(coverage shrank)"
        )
    for bench_id in sorted(set(curr_records) - set(base_records)):
        report.notes.append(
            f"{bench_id}: new benchmark, no baseline to gate against"
        )

    for bench_id in sorted(set(base_records) & set(curr_records)):
        base = base_records[bench_id]
        curr = curr_records[bench_id]
        base_counters = base.get("counters", {})
        curr_counters = curr.get("counters", {})
        for key in sorted(base_counters):
            if key not in curr_counters:
                report.failures.append(
                    f"{bench_id}: counter {key!r} disappeared from "
                    f"current artifact"
                )
                continue
            base_value = base_counters[key]
            curr_value = curr_counters[key]
            growth = _relative_increase(base_value, curr_value)
            if growth > counter_tolerance:
                report.failures.append(
                    f"{bench_id}: {key} regressed "
                    f"{base_value} -> {curr_value} "
                    f"(+{growth * 100:.1f}%, tolerance "
                    f"{counter_tolerance * 100:.1f}%)"
                )
            elif curr_value < base_value:
                report.notes.append(
                    f"{bench_id}: {key} improved {base_value} -> {curr_value}"
                )
        base_p50 = base.get("timing_s", {}).get("p50")
        curr_p50 = curr.get("timing_s", {}).get("p50")
        if base_p50 is not None and curr_p50 is not None:
            growth = _relative_increase(base_p50, curr_p50)
            if growth > timing_tolerance:
                report.warnings.append(
                    f"{bench_id}: p50 wall time {base_p50:.4f}s -> "
                    f"{curr_p50:.4f}s (+{growth * 100:.0f}%; advisory — "
                    f"timings never gate)"
                )
    return report


def format_report(report: ComparisonReport) -> str:
    """Human-readable rendering, failures first."""
    lines = [
        f"bench compare: baseline {report.baseline_revision} "
        f"vs current {report.current_revision}"
    ]
    for failure in report.failures:
        lines.append(f"FAIL  {failure}")
    for warning in report.warnings:
        lines.append(f"WARN  {warning}")
    for note in report.notes:
        lines.append(f"note  {note}")
    lines.append(
        "RESULT: "
        + (
            "ok"
            if report.ok
            else f"{len(report.failures)} deterministic regression(s)"
        )
    )
    return "\n".join(lines)
