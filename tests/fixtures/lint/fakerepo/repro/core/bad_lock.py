"""Seeded lock-discipline violations."""


class BadWorkspace:
    def add_object(self, obj):
        self.objects.add(obj)  # EXPECT: REPRO-LOCK01

    def reindex(self, obj):
        self.object_rtree.insert_point(obj.object_id, obj.point)  # EXPECT: REPRO-LOCK01


def risky(lock):
    lock.acquire()  # EXPECT: REPRO-LOCK02
    value = compute()
    lock.release()
    return value


def compute():
    return 42
