"""The named, versioned workload catalogue.

A workload is a frozen recipe: everything that determines its cost
counters (preset, scale, ω, |Q|, seeds, warm/cold, backend) is pinned
in the dataclass, so two runs of the same suite produce bit-identical
counter sections.  ``SUITE_VERSION`` changes whenever a workload's
recipe changes meaning — the comparator refuses to gate across suite
versions, which is how a deliberate workload change and a performance
regression stay distinguishable.

Two suites ship:

* ``quick`` — the CI gate: AU at 5 % scale, CE/EDC/LBC at |Q| ∈ {2,4},
  one warm-engine point, one closed-loop serving point.  Seconds, not
  minutes.
* ``full`` — adds the density sweep (CA/NA), |Q| = 8 and a warm EDC
  point; the artifact to regenerate when refreshing the committed
  baseline after an intentional cost change.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

SUITE_VERSION = 2
"""Bump when any workload recipe below changes meaning.

Version history:

* 1 — cold/warm query grids plus the closed-loop serving point.
* 2 — adds the ``preprocessed`` engine state (oracle backends with the
  index built before the measured repeats) and the ``oracle_*``
  counters to every workload's counter section.
"""

#: Timing repeats per workload (counters must agree across repeats).
DEFAULT_REPEATS = 3


@dataclass(frozen=True)
class QueryWorkload:
    """One single-query measurement point."""

    workload_id: str
    algorithm: str
    network: str
    scale: float
    omega: float
    query_count: int
    warm: bool = False
    query_seed: int = 100
    repeats: int = DEFAULT_REPEATS
    distance_backend: str = "dijkstra"
    preprocessed: bool = False
    """Build the engine's distance oracle before the measured repeats
    (meaningful only with an oracle ``distance_backend``); the repeats
    then measure pure query-time cost of the preprocessed state."""

    @property
    def kind(self) -> str:
        return "query"

    def params(self) -> dict:
        return {"kind": self.kind, **asdict(self)}


@dataclass(frozen=True)
class ServiceWorkload:
    """A closed-loop serving run: sequential requests, one worker.

    One worker and a zero batch window make the request schedule — and
    therefore the counters — deterministic while still exercising the
    full admission/planning/execution path.
    """

    workload_id: str
    algorithm: str
    network: str
    scale: float
    omega: float
    query_count: int
    requests: int = 8
    query_seed: int = 100
    repeats: int = 1
    distance_backend: str = "dijkstra"

    @property
    def kind(self) -> str:
        return "service"

    def params(self) -> dict:
        return {"kind": self.kind, **asdict(self)}


Workload = QueryWorkload | ServiceWorkload


def _query_grid(
    network: str,
    scale: float,
    algorithms: tuple[str, ...],
    query_counts: tuple[int, ...],
    omega: float = 0.5,
) -> list[QueryWorkload]:
    out = []
    for algorithm in algorithms:
        for q in query_counts:
            out.append(
                QueryWorkload(
                    workload_id=(
                        f"query/{algorithm}/{network.lower()}/q{q}/cold"
                    ),
                    algorithm=algorithm,
                    network=network,
                    scale=scale,
                    omega=omega,
                    query_count=q,
                )
            )
    return out


_QUICK: list[Workload] = [
    *_query_grid("AU", 0.05, ("CE", "EDC", "LBC"), (2, 4)),
    QueryWorkload(
        workload_id="query/LBC/au/q4/warm",
        algorithm="LBC",
        network="AU",
        scale=0.05,
        omega=0.5,
        query_count=4,
        warm=True,
    ),
    # The preprocessed engine state: same query point as the cold/warm
    # LBC rows, distances answered from a prebuilt oracle index.
    QueryWorkload(
        workload_id="query/LBC/au/q4/preprocessed",
        algorithm="LBC",
        network="AU",
        scale=0.05,
        omega=0.5,
        query_count=4,
        distance_backend="hublabel",
        preprocessed=True,
    ),
    QueryWorkload(
        workload_id="query/LBC/au/q4/preprocessed-ch",
        algorithm="LBC",
        network="AU",
        scale=0.05,
        omega=0.5,
        query_count=4,
        distance_backend="ch",
        preprocessed=True,
    ),
    ServiceWorkload(
        workload_id="service/LBC/au/q4/closed-loop",
        algorithm="LBC",
        network="AU",
        scale=0.05,
        omega=0.5,
        query_count=4,
        requests=8,
    ),
]

_FULL: list[Workload] = [
    *_QUICK,
    *_query_grid("CA", 0.10, ("CE", "EDC", "LBC"), (4,)),
    *_query_grid("NA", 0.05, ("CE", "EDC", "LBC"), (4,)),
    QueryWorkload(
        workload_id="query/LBC/au/q8/cold",
        algorithm="LBC",
        network="AU",
        scale=0.05,
        omega=0.5,
        query_count=8,
    ),
    QueryWorkload(
        workload_id="query/EDC/au/q4/warm",
        algorithm="EDC",
        network="AU",
        scale=0.05,
        omega=0.5,
        query_count=4,
        warm=True,
    ),
    QueryWorkload(
        workload_id="query/EDC/au/q4/preprocessed",
        algorithm="EDC",
        network="AU",
        scale=0.05,
        omega=0.5,
        query_count=4,
        distance_backend="hublabel",
        preprocessed=True,
    ),
]

SUITES: dict[str, list[Workload]] = {"quick": _QUICK, "full": _FULL}


def suite_workloads(name: str) -> list[Workload]:
    """The workloads of a named suite (``KeyError``-free lookup)."""
    try:
        return list(SUITES[name])
    except KeyError:
        raise ValueError(
            f"unknown suite {name!r}; choose from {sorted(SUITES)}"
        ) from None
