"""repro.bench: runner determinism, artifact schema, comparator gates."""

import copy
import json

import pytest

from repro.bench import (
    ARTIFACT_SCHEMA,
    ARTIFACT_SCHEMA_VERSION,
    SUITE_VERSION,
    SUITES,
    compare_artifacts,
    format_report,
    suite_workloads,
    write_artifact,
)
from repro.bench.__main__ import main as bench_main
from repro.bench.compare import load_artifact
from repro.bench.runner import (
    COUNTER_KEYS,
    CounterDrift,
    run_workload,
)
from repro.bench.suite import QueryWorkload, ServiceWorkload
from repro.experiments.harness import WorkloadCache


def tiny_query_workload(**overrides) -> QueryWorkload:
    params = dict(
        workload_id="query/LBC/au/q2/cold",
        algorithm="LBC",
        network="AU",
        scale=0.02,
        omega=0.5,
        query_count=2,
        repeats=2,
    )
    params.update(overrides)
    return QueryWorkload(**params)


@pytest.fixture(scope="module")
def cache():
    return WorkloadCache()


@pytest.fixture(scope="module")
def tiny_record(cache):
    return run_workload(tiny_query_workload(), cache)


def make_artifact(records) -> dict:
    return {
        "schema": ARTIFACT_SCHEMA,
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "suite": "quick",
        "suite_version": SUITE_VERSION,
        "revision": "test",
        "created_unix": 0.0,
        "python": "3",
        "platform": "test",
        "benchmarks": records,
    }


# ---------------------------------------------------------------------------
# Suite catalogue
# ---------------------------------------------------------------------------


def test_suites_named_and_versioned():
    assert set(SUITES) == {"quick", "full"}
    quick_ids = [w.workload_id for w in suite_workloads("quick")]
    assert len(quick_ids) == len(set(quick_ids)), "duplicate workload ids"
    # quick is a subset of full (full only ever adds points).
    full_ids = {w.workload_id for w in suite_workloads("full")}
    assert set(quick_ids) <= full_ids


def test_quick_suite_covers_matrix():
    workloads = suite_workloads("quick")
    algorithms = {w.algorithm for w in workloads}
    assert algorithms == {"CE", "EDC", "LBC"}
    assert any(getattr(w, "warm", False) for w in workloads)
    assert any(isinstance(w, ServiceWorkload) for w in workloads)


def test_unknown_suite_rejected():
    with pytest.raises(ValueError, match="unknown suite"):
        suite_workloads("nightly")


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------


def test_record_has_schema_fields(tiny_record):
    assert tiny_record["id"] == "query/LBC/au/q2/cold"
    assert tiny_record["kind"] == "query"
    assert set(COUNTER_KEYS) <= set(tiny_record["counters"])
    timing = tiny_record["timing_s"]
    assert timing["repeats"] == 2
    assert timing["min"] <= timing["p50"] <= timing["max"]


def test_counters_deterministic_across_runs(tiny_record, cache):
    again = run_workload(tiny_query_workload(), cache)
    assert again["counters"] == tiny_record["counters"]


def test_warm_run_reuses_engine_memo(cache):
    cold = run_workload(tiny_query_workload(), cache)
    warm = run_workload(
        tiny_query_workload(workload_id="query/LBC/au/q2/warm", warm=True),
        cache,
    )
    # The warming pass fills the distance memo; the measured run then
    # answers from it (hits where the cold run had misses).
    assert warm["counters"]["engine_hits"] > cold["counters"]["engine_hits"]
    assert warm["counters"]["total_pages"] <= cold["counters"]["total_pages"]
    # Warm or cold, the answer is the same skyline.
    assert warm["counters"]["skyline_count"] == cold["counters"]["skyline_count"]


def test_counter_drift_raises():
    drift = CounterDrift("w", {"nodes_settled": 5}, {"nodes_settled": 7})
    assert "w" in str(drift)
    assert drift.diffs == {"nodes_settled": (5, 7)}


def test_artifact_written_stable(tmp_path, tiny_record):
    artifact = make_artifact([tiny_record])
    path = tmp_path / "BENCH_test.json"
    write_artifact(artifact, str(path))
    assert load_artifact(str(path))["benchmarks"][0] == tiny_record
    # Stable serialization: a rewrite is byte-identical.
    first = path.read_bytes()
    write_artifact(artifact, str(path))
    assert path.read_bytes() == first


# ---------------------------------------------------------------------------
# Comparator
# ---------------------------------------------------------------------------


def test_compare_identical_is_ok(tiny_record):
    artifact = make_artifact([tiny_record])
    report = compare_artifacts(artifact, copy.deepcopy(artifact))
    assert report.ok
    assert not report.warnings


def test_compare_counter_regression_fails(tiny_record):
    base = make_artifact([tiny_record])
    curr = copy.deepcopy(base)
    curr["benchmarks"][0]["counters"]["nodes_settled"] += 1
    report = compare_artifacts(base, curr)
    assert not report.ok
    assert "nodes_settled" in report.failures[0]
    assert "FAIL" in format_report(report)


def test_compare_regression_within_tolerance_passes(tiny_record):
    base = make_artifact([tiny_record])
    base["benchmarks"][0]["counters"]["nodes_settled"] = 100
    curr = copy.deepcopy(base)
    curr["benchmarks"][0]["counters"]["nodes_settled"] = 104
    assert not compare_artifacts(base, curr).ok
    assert compare_artifacts(base, curr, counter_tolerance=0.05).ok


def test_compare_improvement_is_noted_not_failed(tiny_record):
    base = make_artifact([tiny_record])
    curr = copy.deepcopy(base)
    curr["benchmarks"][0]["counters"]["nodes_settled"] -= 1
    report = compare_artifacts(base, curr)
    assert report.ok
    assert any("improved" in note for note in report.notes)


def test_compare_zero_baseline_growth_fails(tiny_record):
    base = make_artifact([tiny_record])
    base["benchmarks"][0]["counters"]["middle_pages"] = 0
    curr = copy.deepcopy(base)
    curr["benchmarks"][0]["counters"]["middle_pages"] = 3
    # 0 -> 3 is infinite relative growth: fails at any finite tolerance.
    assert not compare_artifacts(base, curr, counter_tolerance=10.0).ok


def test_compare_missing_benchmark_warns(tiny_record):
    base = make_artifact([tiny_record])
    curr = make_artifact([])
    report = compare_artifacts(base, curr)
    assert report.ok  # shrunk coverage is visible but not fatal
    assert any("coverage shrank" in w for w in report.warnings)


def test_compare_added_benchmark_noted(tiny_record):
    base = make_artifact([])
    curr = make_artifact([tiny_record])
    report = compare_artifacts(base, curr)
    assert report.ok
    assert any("new benchmark" in n for n in report.notes)


def test_compare_dropped_counter_fails(tiny_record):
    base = make_artifact([tiny_record])
    curr = copy.deepcopy(base)
    del curr["benchmarks"][0]["counters"]["index_pages"]
    report = compare_artifacts(base, curr)
    assert not report.ok
    assert "disappeared" in report.failures[0]


def test_compare_version_mismatch_fails(tiny_record):
    base = make_artifact([tiny_record])
    curr = copy.deepcopy(base)
    curr["suite_version"] = SUITE_VERSION + 1
    report = compare_artifacts(base, curr)
    assert not report.ok
    assert "suite_version" in report.failures[0]


def test_compare_timing_regression_warns_only(tiny_record):
    base = make_artifact([tiny_record])
    curr = copy.deepcopy(base)
    curr["benchmarks"][0]["timing_s"]["p50"] = (
        base["benchmarks"][0]["timing_s"]["p50"] * 10 + 1.0
    )
    report = compare_artifacts(base, curr)
    assert report.ok, "timings must never gate"
    assert any("advisory" in w for w in report.warnings)


def test_compare_timing_noise_inside_tolerance_silent(tiny_record):
    base = make_artifact([tiny_record])
    base["benchmarks"][0]["timing_s"]["p50"] = 0.100
    curr = copy.deepcopy(base)
    curr["benchmarks"][0]["timing_s"]["p50"] = 0.120  # +20% < 50%
    report = compare_artifacts(base, curr)
    assert report.ok
    assert not report.warnings


# ---------------------------------------------------------------------------
# CLI entry point
# ---------------------------------------------------------------------------


def test_cli_list_exits_zero(capsys):
    assert bench_main(["--list", "--suite", "quick"]) == 0
    out = capsys.readouterr().out
    assert "query/LBC/au/q4/warm" in out


def test_cli_missing_baseline_is_usage_error(tmp_path, tiny_record, capsys):
    # Compare paths that cannot be read exit 2 (usage), not 1
    # (regression); exercised without running a suite by feeding the
    # comparator directly through load_artifact.
    bogus = tmp_path / "nope.json"
    with pytest.raises(OSError):
        load_artifact(str(bogus))
    not_an_artifact = tmp_path / "junk.json"
    not_an_artifact.write_text(json.dumps({"hello": 1}))
    with pytest.raises(ValueError, match="not a repro-bench artifact"):
        load_artifact(str(not_an_artifact))
