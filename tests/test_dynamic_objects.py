"""Dynamic object updates: the workspace stays consistent under churn."""

import random

import pytest

from repro.core import CE, EDC, LBC, NaiveSkyline, Workspace
from repro.network import SpatialObject

from conftest import build_random_network, place_random_objects, random_locations


def fresh_workspace(seed, paged, attribute_count=0):
    network = build_random_network(60, 40, seed=seed, detour_max=0.7)
    objects = place_random_objects(
        network, 30, seed=seed + 1, attribute_count=attribute_count
    )
    return network, Workspace.build(network, objects, paged=paged)


def object_on_edge(network, object_id, edge_index=0, fraction=0.5, attrs=()):
    edge = sorted(network.edges(), key=lambda e: e.edge_id)[edge_index]
    loc = network.location_on_edge(edge.edge_id, edge.length * fraction)
    return SpatialObject(object_id, loc, attrs)


class TestAddObject:
    @pytest.mark.parametrize("paged", [False, True])
    def test_added_object_visible_to_queries(self, paged):
        network, workspace = fresh_workspace(1001, paged)
        queries = random_locations(network, 2, seed=1002)
        # Place the new object exactly on the first query point's
        # location (if on an edge) or adjacent — it must dominate
        # everything in that dimension and join the skyline.
        new = SpatialObject(9000, queries[0])
        workspace.add_object(new)
        result = LBC().run(workspace, queries)
        assert 9000 in result.object_ids()
        assert result.same_answer(NaiveSkyline().run(workspace, queries))

    def test_duplicate_id_rejected(self):
        network, workspace = fresh_workspace(1011, paged=False)
        with pytest.raises(ValueError):
            workspace.add_object(object_on_edge(network, 0))

    def test_attribute_mismatch_rejected(self):
        network, workspace = fresh_workspace(1021, paged=False, attribute_count=1)
        with pytest.raises(ValueError):
            workspace.add_object(object_on_edge(network, 9000, attrs=()))

    def test_counts_update(self):
        network, workspace = fresh_workspace(1031, paged=False)
        before = len(workspace.objects)
        workspace.add_object(object_on_edge(network, 9000))
        assert len(workspace.objects) == before + 1
        assert len(list(workspace.object_rtree.all_entries())) == before + 1


class TestRemoveObject:
    @pytest.mark.parametrize("paged", [False, True])
    def test_removed_object_gone_from_answers(self, paged):
        network, workspace = fresh_workspace(1041, paged)
        queries = random_locations(network, 2, seed=1042)
        result = LBC().run(workspace, queries)
        victim = result.points[0].object_id
        workspace.remove_object(victim)
        after = LBC().run(workspace, queries)
        assert victim not in after.object_ids()
        assert after.same_answer(NaiveSkyline().run(workspace, queries))

    def test_remove_unknown_raises(self):
        _, workspace = fresh_workspace(1051, paged=False)
        with pytest.raises(KeyError):
            workspace.remove_object(424242)

    def test_remove_then_readd(self):
        network, workspace = fresh_workspace(1061, paged=False)
        obj = workspace.objects.get(5)
        workspace.remove_object(5)
        workspace.add_object(obj)
        queries = random_locations(network, 2, seed=1062)
        assert LBC().run(workspace, queries).same_answer(
            NaiveSkyline().run(workspace, queries)
        )

    def test_middle_layer_consistent_after_removal(self):
        network, workspace = fresh_workspace(1071, paged=True)
        obj = workspace.objects.get(3)
        edge_id = obj.location.edge_id
        workspace.remove_object(3)
        remaining = workspace.middle.objects_on(edge_id)
        assert all(p.obj.object_id != 3 for p in remaining)


class TestEngineInvalidation:
    """Mutations drop cached distances; re-queries answer correctly."""

    def primed_workspace(self, seed=2001, paged=False):
        network, workspace = fresh_workspace(seed, paged)
        queries = random_locations(network, 2, seed=seed + 1)
        NaiveSkyline().run(workspace, queries)  # fill memo and pool
        assert workspace.engine.cache_info()["memo_entries"] > 0
        return network, workspace, queries

    def test_add_object_drops_cached_distances(self):
        network, workspace, queries = self.primed_workspace(2001)
        workspace.add_object(object_on_edge(network, 9000))
        info = workspace.engine.cache_info()
        assert info["memo_entries"] == 0
        assert info["pool_entries"] == 0
        assert info["invalidations"] >= 1

    def test_remove_object_drops_cached_distances(self):
        network, workspace, queries = self.primed_workspace(2011)
        victim = sorted(o.object_id for o in workspace.objects)[0]
        workspace.remove_object(victim)
        assert workspace.engine.cache_info()["memo_entries"] == 0

    def test_move_object_drops_cache_and_requery_is_correct(self):
        network, workspace, queries = self.primed_workspace(2021)
        # Move an object onto the first query point: it must now win
        # that dimension, which only happens if stale distances are gone.
        moved_id = sorted(o.object_id for o in workspace.objects)[0]
        workspace.move_object(moved_id, queries[0])
        assert workspace.engine.cache_info()["memo_entries"] == 0
        result = LBC().run(workspace, queries)
        assert moved_id in result.object_ids()
        assert result.same_answer(NaiveSkyline().run(workspace, queries))

    @pytest.mark.parametrize("paged", [False, True])
    def test_edge_reweight_invalidates_and_requery_is_correct(self, paged):
        from repro.network import DijkstraExpander

        network, workspace, queries = self.primed_workspace(2031, paged)
        edge = max(network.edges(), key=lambda e: e.length)
        workspace.update_edge_length(edge.edge_id, edge.length * 3.0)
        info = workspace.engine.cache_info()
        assert info["memo_entries"] == 0
        assert info["pool_entries"] == 0
        # Cached distances must match a fresh ground-truth expansion on
        # the mutated graph, not the old one.
        targets = [o.location for o in workspace.objects]
        for q in queries:
            fresh = DijkstraExpander(network, q)
            for target in targets:
                assert workspace.engine.distance(q, target) == pytest.approx(
                    fresh.distance_to(target)
                )

    def test_algorithms_agree_after_mixed_mutations(self):
        network, workspace, queries = self.primed_workspace(2041)
        edge = max(network.edges(), key=lambda e: e.length)
        workspace.update_edge_length(edge.edge_id, edge.length * 2.0)
        workspace.add_object(object_on_edge(network, 9100, edge_index=3))
        reference = NaiveSkyline().run(workspace, queries)
        for algorithm in (CE(), EDC(), LBC()):
            assert algorithm.run(workspace, queries).same_answer(reference)

    def test_landmark_backend_survives_network_mutation(self):
        network = build_random_network(50, 30, seed=2051, detour_max=0.7)
        objects = place_random_objects(network, 25, seed=2052)
        workspace = Workspace.build(
            network, objects, paged=False, distance_backend="astar+landmarks"
        )
        queries = random_locations(network, 2, seed=2053)
        LBC().run(workspace, queries)  # builds the landmark tables
        edge = max(network.edges(), key=lambda e: e.length)
        workspace.update_edge_length(edge.edge_id, edge.length * 4.0)
        # Stale landmark tables would break A* admissibility and could
        # return wrong distances; invalidate_network rebuilds them.
        result = LBC().run(workspace, queries)
        assert result.same_answer(NaiveSkyline().run(workspace, queries))

    def test_update_edge_length_rejects_misfit_objects(self):
        network, workspace = fresh_workspace(2061, paged=False)
        placed = [o for o in workspace.objects if o.location.edge_id is not None]
        obj = max(placed, key=lambda o: o.location.offset)
        with pytest.raises(ValueError, match="does not fit"):
            workspace.update_edge_length(
                obj.location.edge_id, obj.location.offset * 0.5
            )

    def test_rejected_reweight_leaves_workspace_untouched(self):
        """A length the *network* rejects (below the chord) must not
        strand objects half-deregistered: validation precedes mutation."""
        network, workspace = fresh_workspace(2071, paged=False)
        queries = random_locations(network, 2, seed=2072)
        before = NaiveSkyline().run(workspace, queries)
        count = len(workspace.objects)
        # An edge whose on-edge objects all fit a sub-chord length, so
        # only the network's chord rule can reject it.
        for edge in network.edges():
            on_edge = [
                p.obj
                for p in workspace.middle.objects_on(edge.edge_id)
                if p.obj.location.edge_id == edge.edge_id
            ]
            chord = network.node_point(edge.u).distance_to(
                network.node_point(edge.v)
            )
            if on_edge and all(o.location.offset < chord * 0.5 for o in on_edge):
                break
        else:
            pytest.skip("no edge with early-offset objects in this workload")
        with pytest.raises(ValueError, match="shorter than the Euclidean"):
            workspace.update_edge_length(edge.edge_id, chord * 0.6)
        assert len(workspace.objects) == count
        assert NaiveSkyline().run(workspace, queries).same_answer(before)


class TestChurn:
    @pytest.mark.parametrize("paged", [False, True])
    def test_random_churn_keeps_algorithms_agreeing(self, paged):
        rng = random.Random(77)
        network, workspace = fresh_workspace(1081, paged)
        queries = random_locations(network, 3, seed=1082)
        next_id = 10_000
        edge_ids = sorted(network.edge_ids())
        for step in range(25):
            if len(workspace.objects) > 5 and rng.random() < 0.5:
                victim = rng.choice(sorted(o.object_id for o in workspace.objects))
                workspace.remove_object(victim)
            else:
                edge = network.edge(rng.choice(edge_ids))
                loc = network.location_on_edge(
                    edge.edge_id, edge.length * rng.uniform(0.05, 0.95)
                )
                workspace.add_object(SpatialObject(next_id, loc))
                next_id += 1
            if step % 5 == 4:
                reference = NaiveSkyline().run(workspace, queries)
                for algorithm in (CE(), EDC(), LBC()):
                    assert algorithm.run(workspace, queries).same_answer(
                        reference
                    ), f"step {step}: {algorithm.name}"
        workspace.object_rtree.validate()
