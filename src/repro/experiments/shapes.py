"""Machine-checked figure shapes.

EXPERIMENTS.md argues the reproduction preserves the paper's *shapes* —
who wins, what grows, where trends bend.  This module turns those prose
claims into predicates over :class:`FigureSeries`, so

    python -m repro.experiments --verify-shapes

re-measures everything and prints PASS/FAIL per claim instead of asking
a reader to eyeball tables.  The checks are deliberately tolerant
(averages over few trials are noisy); each failure names the series and
values involved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.experiments.figures import FigureSeries


@dataclass(frozen=True)
class ShapeCheck:
    """One verified claim about a figure."""

    figure: str
    claim: str
    passed: bool
    detail: str

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.figure}: {self.claim} — {self.detail}"


def _fmt(values: Sequence[float]) -> str:
    return "[" + ", ".join(f"{v:.4g}" for v in values) + "]"


# ----------------------------------------------------------------------
# Predicate helpers (each returns a ShapeCheck)
# ----------------------------------------------------------------------
def check_non_decreasing(
    series: FigureSeries, name: str, slack: float = 0.10
) -> ShapeCheck:
    """The named series grows along x (within relative slack)."""
    values = series.series[name]
    ok = all(
        b >= a * (1 - slack) for a, b in zip(values, values[1:])
    ) and values[-1] >= values[0]
    return ShapeCheck(
        figure=series.figure,
        claim=f"{name} grows with {series.x_label}",
        passed=ok,
        detail=_fmt(values),
    )


def check_flat(series: FigureSeries, name: str, tolerance: float = 2.0) -> ShapeCheck:
    """The named series stays within a max/min factor of ``tolerance``."""
    values = [v for v in series.series[name] if v > 0]
    ok = bool(values) and max(values) <= tolerance * min(values)
    return ShapeCheck(
        figure=series.figure,
        claim=f"{name} roughly flat in {series.x_label} (factor <= {tolerance})",
        passed=ok,
        detail=_fmt(series.series[name]),
    )


def check_pointwise_leq(
    series: FigureSeries, smaller: str, larger: str, slack: float = 0.10
) -> ShapeCheck:
    """``smaller``'s series never exceeds ``larger``'s (with slack)."""
    a = series.series[smaller]
    b = series.series[larger]
    ok = all(x <= y * (1 + slack) + 1e-12 for x, y in zip(a, b))
    return ShapeCheck(
        figure=series.figure,
        claim=f"{smaller} <= {larger} at every {series.x_label}",
        passed=ok,
        detail=f"{smaller}={_fmt(a)} vs {larger}={_fmt(b)}",
    )


def check_winner_at(
    series: FigureSeries, x, winner: str
) -> ShapeCheck:
    """``winner`` has the smallest value at x-position ``x``."""
    index = series.x_values.index(x)
    values = {name: series.series[name][index] for name in series.series}
    best = min(values, key=values.get)
    return ShapeCheck(
        figure=series.figure,
        claim=f"{winner} wins at {series.x_label}={x}",
        passed=best == winner,
        detail=", ".join(f"{k}={v:.4g}" for k, v in sorted(values.items())),
    )


def check_ratio_at(
    series: FigureSeries, x, numerator: str, denominator: str, at_least: float
) -> ShapeCheck:
    """numerator/denominator >= at_least at x (a headline factor)."""
    index = series.x_values.index(x)
    num = series.series[numerator][index]
    den = series.series[denominator][index]
    ratio = num / den if den else float("inf")
    return ShapeCheck(
        figure=series.figure,
        claim=(
            f"{numerator}/{denominator} >= {at_least} at "
            f"{series.x_label}={x}"
        ),
        passed=ratio >= at_least,
        detail=f"ratio = {ratio:.2f}",
    )


def check_slowing_growth(series: FigureSeries, name: str) -> ShapeCheck:
    """Later growth increments are smaller than earlier ones (per unit x).

    Verifies the paper's 'increases at a slowing rate' reading of
    Figure 4(a) by comparing the average slope of the first half of the
    sweep against the second half.
    """
    xs = series.x_values
    values = series.series[name]
    if len(values) < 3 or not all(isinstance(x, (int, float)) for x in xs):
        return ShapeCheck(
            series.figure, f"{name} growth slows", False, "not enough points"
        )
    mid = len(values) // 2
    early = (values[mid] - values[0]) / (xs[mid] - xs[0])
    late = (values[-1] - values[mid]) / (xs[-1] - xs[mid])
    return ShapeCheck(
        figure=series.figure,
        claim=f"{name} grows at a slowing rate",
        passed=late <= early + 1e-12,
        detail=f"early slope {early:.4g}, late slope {late:.4g}",
    )


# ----------------------------------------------------------------------
# The paper's claims, figure by figure
# ----------------------------------------------------------------------
def verify_fig4a(series: FigureSeries) -> list[ShapeCheck]:
    checks = [check_slowing_growth(series, name) for name in sorted(series.series)]
    checks.append(check_pointwise_leq(series, "LBC", "EDC"))
    return checks


def verify_fig4b(series: FigureSeries) -> list[ShapeCheck]:
    return [check_flat(series, name) for name in sorted(series.series)]


def verify_fig4c(series: FigureSeries) -> list[ShapeCheck]:
    # EDC's filtering efficiency collapses on the sparse network.
    index = series.x_values.index("CA")
    edc = series.series["EDC"][index]
    ce = series.series["CE"][index]
    return [
        ShapeCheck(
            figure=series.figure,
            claim="EDC worse than CE on CA (the δ effect)",
            passed=edc >= ce,
            detail=f"EDC={edc:.4g}, CE={ce:.4g}",
        ),
        check_pointwise_leq(series, "LBC", "EDC"),
    ]


def verify_fig5a(series: FigureSeries) -> list[ShapeCheck]:
    return [
        check_non_decreasing(series, "CE"),
        check_non_decreasing(series, "LBC", slack=0.25),
        check_winner_at(series, "NA", "LBC"),
        check_ratio_at(series, "NA", "CE", "LBC", at_least=2.0),
    ]


def verify_fig5c(series: FigureSeries) -> list[ShapeCheck]:
    return [
        check_winner_at(series, x, "LBC") for x in series.x_values
    ]


def verify_fig6a(series: FigureSeries) -> list[ShapeCheck]:
    return [
        check_non_decreasing(series, "CE", slack=0.25),
        check_pointwise_leq(series, "LBC", "CE"),
        check_winner_at(series, series.x_values[-1], "LBC"),
    ]


def verify_fig6c(series: FigureSeries) -> list[ShapeCheck]:
    checks = [check_flat(series, "LBC", tolerance=5.0)]
    last = series.x_values[-1]
    first = series.x_values[0]
    for name in ("CE", "EDC"):
        i0, i1 = series.x_values.index(first), series.x_values.index(last)
        grew = series.series[name][i1] > series.series[name][i0]
        checks.append(
            ShapeCheck(
                figure=series.figure,
                claim=f"{name} initial response grows with |Q|",
                passed=grew,
                detail=_fmt(series.series[name]),
            )
        )
    return checks


def verify_fig6d(series: FigureSeries) -> list[ShapeCheck]:
    return [check_flat(series, name, tolerance=2.5) for name in sorted(series.series)]


def verify_all(figures: dict[str, FigureSeries]) -> list[ShapeCheck]:
    """Run every encoded claim against the provided figures.

    ``figures`` maps figure ids ("Fig4a", ...) to their series; missing
    figures are skipped silently so partial runs still verify.
    """
    verifiers = {
        "Fig4a": verify_fig4a,
        "Fig4b": verify_fig4b,
        "Fig4c": verify_fig4c,
        "Fig5a": verify_fig5a,
        "Fig5c": verify_fig5c,
        "Fig6a": verify_fig6a,
        "Fig6c": verify_fig6c,
        "Fig6d": verify_fig6d,
    }
    checks: list[ShapeCheck] = []
    for figure_id, verify in verifiers.items():
        series = figures.get(figure_id)
        if series is not None:
            checks.extend(verify(series))
    return checks
