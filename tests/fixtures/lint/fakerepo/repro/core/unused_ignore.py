"""A stale suppression that matches no finding."""

VALUE = 1  # repro: ignore[REPRO-PAGE01]
