"""Meeting planner: progressive skyline for a group of friends.

Five friends scattered across town want a café that is not clearly
worse than any other for the group (no other café is at least as close
to *everyone* and closer to someone).  LBC reports skyline cafés
progressively — nearest to the chosen "organiser" first — so the app
can show results as they stream in, the user-preference behaviour
Section 4.3 highlights.

The example also shows how the answer changes when the organiser
(LBC's source query point) changes: same skyline set, different
discovery order.

Run with::

    python examples/meeting_planner.py
"""

from repro import (
    LBC,
    Workspace,
    delaunay_road_network,
    extract_objects,
    select_query_points,
)


def main() -> None:
    network = delaunay_road_network(node_count=2500, edge_node_ratio=1.22, seed=99)
    cafes = extract_objects(network, omega=0.10, seed=13)
    workspace = Workspace.build(network, cafes)

    friends = select_query_points(network, 5, region_fraction=0.25, seed=77)
    for i, friend in enumerate(friends):
        print(f"friend {i}: ({friend.point.x:.3f}, {friend.point.y:.3f})")

    print("\nstreaming skyline (organiser = friend 0):")
    result = LBC(source_index=0).run(workspace, friends)
    for rank, point in enumerate(result, start=1):
        worst = max(point.vector) * 1000
        total = sum(point.vector) * 1000
        print(
            f"  {rank:2d}. cafe {point.obj.object_id:4d} — "
            f"total walk {total:6.0f} m, worst-off friend {worst:5.0f} m"
        )

    print("\nsame query, organiser = friend 3 (order changes, set doesn't):")
    reordered = LBC(source_index=3).run(workspace, friends)
    assert reordered.same_answer(result)
    for rank, point in enumerate(reordered, start=1):
        print(f"  {rank:2d}. cafe {point.obj.object_id:4d}")

    # A skyline answers every "aggregate" preference at once: both the
    # min-total and the min-worst-case cafés are guaranteed members.
    by_total = min(result, key=lambda p: sum(p.vector))
    by_worst = min(result, key=lambda p: max(p.vector))
    print(f"\nminimise total walking   -> cafe {by_total.obj.object_id}")
    print(f"minimise the longest walk -> cafe {by_worst.obj.object_id}")


if __name__ == "__main__":
    main()
