"""Telemetry overhead: the subsystem must observe, not perturb.

Two questions, each with a measurement and an assertion:

* **Hot-path cost** — ``tracing.record`` is one contextvar read plus
  one dict update per settled node / page miss.  A full Dijkstra
  expansion under an active span vs without one bounds the end-to-end
  throughput overhead of tracing (acceptance: < 5 %).
* **Scrape cost** — ``/metricsz`` renders entirely from scrape-time
  callbacks; rendering a realistic registry must stay microseconds,
  since operators poll it at high frequency.

Timing comparisons use interleaved min-of-N (min is robust to
scheduler noise; interleaving cancels thermal/frequency drift).
"""

from __future__ import annotations

import time

import pytest

from repro.core import LBC, Workspace
from repro.network import DijkstraExpander
from repro.obs import tracing
from repro.service.service import QueryService

from conftest import attach_stats, run_cold


def _min_of(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


class TestTracingOverhead:
    @pytest.mark.parametrize("traced", [True, False], ids=["traced", "untraced"])
    def test_full_expansion(self, benchmark, workloads, traced):
        """One complete network expansion, with/without an active span."""
        network = workloads.network("AU")
        source = workloads.queries("AU", 1, seed=7)[0]

        def expand():
            expander = DijkstraExpander(network, source)
            while expander.expand_next() is not None:
                pass
            return expander.nodes_settled

        if traced:
            def run():
                with tracing.span("bench.expansion"):
                    return expand()
        else:
            run = expand

        settled = benchmark(run)
        benchmark.extra_info["nodes_settled"] = settled

    def test_overhead_under_five_percent(self, workloads):
        """Interleaved min-of-N: traced expansion within 5 % of untraced."""
        network = workloads.network("NA")
        source = workloads.queries("NA", 1, seed=3)[0]

        def expand():
            expander = DijkstraExpander(network, source)
            while expander.expand_next() is not None:
                pass

        def traced():
            with tracing.span("bench.expansion"):
                expand()

        expand(), traced()  # warm caches and code paths
        rounds = 7
        base = float("inf")
        instrumented = float("inf")
        for _ in range(rounds):
            base = min(base, _min_of(expand, 1))
            instrumented = min(instrumented, _min_of(traced, 1))
        overhead = (instrumented - base) / base
        assert overhead < 0.05, (
            f"tracing overhead {overhead:.1%} "
            f"(untraced {base * 1e3:.2f}ms, traced {instrumented * 1e3:.2f}ms)"
        )

    @pytest.mark.parametrize("traced", [True, False], ids=["traced", "untraced"])
    def test_lbc_query_end_to_end(self, benchmark, workloads, traced):
        """A full LBC query; ``run()`` always opens the query span, so
        the comparison isolates the *request-span* layer the service
        adds on top of a bare run."""
        workspace = workloads.workspace("AU", 0.50)
        queries = workloads.queries("AU", 4)
        algorithm = LBC()

        if traced:
            def run():
                with tracing.span("request.LBC"):
                    return run_cold(workspace, algorithm, queries)
        else:
            def run():
                return run_cold(workspace, algorithm, queries)

        result = benchmark.pedantic(run, rounds=2, iterations=1)
        attach_stats(benchmark, result)


class TestSamplerOverhead:
    def test_overhead_under_ten_percent(self, workloads):
        """A workload under the sampling profiler (default 2 ms period)
        must run within 10 % of its unprofiled time: the sampler reads
        ``sys._current_frames`` on its own thread and never touches the
        sampled code's hot path."""
        from repro.profiling import SamplingProfiler

        network = workloads.network("NA")
        source = workloads.queries("NA", 1, seed=3)[0]

        def expand():
            with tracing.span("bench.expansion"):
                expander = DijkstraExpander(network, source)
                while expander.expand_next() is not None:
                    pass

        def profiled():
            with SamplingProfiler(keep_stacks=False):
                expand()

        expand(), profiled()  # warm caches and code paths
        rounds = 7
        base = float("inf")
        instrumented = float("inf")
        for _ in range(rounds):
            base = min(base, _min_of(expand, 1))
            instrumented = min(instrumented, _min_of(profiled, 1))
        overhead = (instrumented - base) / base
        assert overhead < 0.10, (
            f"sampler overhead {overhead:.1%} "
            f"(bare {base * 1e3:.2f}ms, profiled {instrumented * 1e3:.2f}ms)"
        )

    def test_profile_attributes_query_phases(self, workloads):
        """Profiling a real LBC query attributes samples to registered
        span names (the ``query.*`` root and ``lbc.*`` phases)."""
        from repro.obs.names import is_registered_span_name
        from repro.profiling import SamplingProfiler

        workspace = workloads.workspace("AU", 0.50)
        queries = workloads.queries("AU", 4)
        algorithm = LBC()

        profiler = SamplingProfiler(interval_s=0.001)
        with profiler:
            while profiler.report.attributed_samples < 50:
                run_cold(workspace, algorithm, queries)
        report = profiler.report
        assert report.dominant_root() == "query.LBC"
        assert all(
            is_registered_span_name(name) for name in report.self_samples
        )
        # Collapsed stacks lead with the span path.
        line = report.collapsed_lines()[0]
        assert line.startswith("query.LBC")


class TestDiagnosticsOverhead:
    def test_events_and_recorder_under_five_percent(self, workloads, tmp_path):
        """The post-hoc diagnostics plane (wide-event emit + flight-ring
        append per query) must stay within 5 % of tracing-only.  On
        failure, a flight-record dump is written to ``$REPRO_FLIGHT_DIR``
        so CI retains the evidence."""
        import os

        from repro.obs import EventLog, FlightRecorder, wide_event

        network = workloads.network("NA")
        source = workloads.queries("NA", 1, seed=3)[0]
        log = EventLog(str(tmp_path / "bench-events.jsonl"))
        recorder = FlightRecorder(
            ring=64, dump_dir=os.environ.get("REPRO_FLIGHT_DIR")
        )

        def traced():
            with tracing.span("bench.expansion") as root:
                expander = DijkstraExpander(network, source)
                while expander.expand_next() is not None:
                    pass
            return root

        def diagnosed():
            root = traced()
            log.emit(
                wide_event(
                    request_id=0,
                    algorithm="bench",
                    outcome="completed",
                    trace_id=root.trace_id,
                    latency_s=root.duration_s,
                    span_duration_s=root.duration_s,
                    counters={
                        k: v for k, v in root.totals().items()
                        if isinstance(v, (int, float))
                    },
                )
            )
            recorder.record(root, latency_s=root.duration_s)

        traced(), diagnosed()  # warm caches and code paths
        rounds = 7
        base = float("inf")
        instrumented = float("inf")
        for _ in range(rounds):
            base = min(base, _min_of(traced, 1))
            instrumented = min(instrumented, _min_of(diagnosed, 1))
        log.close()
        overhead = (instrumented - base) / base
        if overhead >= 0.05 and os.environ.get("REPRO_FLIGHT_DIR"):
            recorder.dump(
                "bench_overhead",
                force=True,
                extra={
                    "overhead": overhead,
                    "tracing_only_s": base,
                    "diagnosed_s": instrumented,
                    "event_log": log.stats(),
                },
            )
        assert overhead < 0.05, (
            f"diagnostics overhead {overhead:.1%} "
            f"(tracing-only {base * 1e3:.2f}ms, "
            f"events+recorder {instrumented * 1e3:.2f}ms)"
        )
        # Nothing was shed while measuring: the writer kept up.
        assert log.dropped == 0


class TestInsightOverhead:
    def test_live_digests_under_five_percent(self, workloads, tmp_path):
        """The live insight hub (one ``observe`` per finished query —
        a cohort lookup plus three sketch inserts under one lock) must
        stay within 5 % of the diagnostics plane it rides on."""
        from repro.insight import InsightHub
        from repro.obs import EventLog, FlightRecorder, wide_event

        network = workloads.network("NA")
        source = workloads.queries("NA", 1, seed=3)[0]
        log = EventLog(str(tmp_path / "bench-events.jsonl"))
        recorder = FlightRecorder(ring=64)
        hub = InsightHub()

        def traced():
            with tracing.span("bench.expansion") as root:
                expander = DijkstraExpander(network, source)
                while expander.expand_next() is not None:
                    pass
            return root

        def diagnosed():
            root = traced()
            counters = {
                k: v for k, v in root.totals().items()
                if isinstance(v, (int, float))
            }
            log.emit(
                wide_event(
                    request_id=0,
                    algorithm="bench",
                    outcome="completed",
                    trace_id=root.trace_id,
                    latency_s=root.duration_s,
                    span_duration_s=root.duration_s,
                    counters=counters,
                )
            )
            recorder.record(root, latency_s=root.duration_s)
            return root, counters

        def insighted():
            root, counters = diagnosed()
            hub.observe(
                algorithm="bench",
                backend="dijkstra",
                query_count=1,
                outcome="completed",
                latency_s=root.duration_s,
                counters=counters,
            )

        diagnosed(), insighted()  # warm caches and code paths
        rounds = 7
        base = float("inf")
        instrumented = float("inf")
        for _ in range(rounds):
            base = min(base, _min_of(diagnosed, 1))
            instrumented = min(instrumented, _min_of(insighted, 1))
        log.close()
        overhead = (instrumented - base) / base
        assert overhead < 0.05, (
            f"insight overhead {overhead:.1%} "
            f"(diagnostics-only {base * 1e3:.2f}ms, "
            f"+insight {instrumented * 1e3:.2f}ms)"
        )
        # The hub really digested the measured traffic, boundedly.
        assert hub.observed >= rounds + 1
        report = hub.report()
        cohort = report["cohorts"]["bench/dijkstra/|Q|[1,2)/completed"]
        assert cohort["latency_s"]["p99"] > 0.0
        assert not cohort["collapsed"]


class TestScrapeCost:
    def test_metricsz_render(self, benchmark):
        """Render a serving registry after real traffic."""
        from conftest import BENCH_BUFFER
        from repro.datasets import build_preset, extract_objects, select_query_points

        network = build_preset("AU", scale=0.05)
        objects = extract_objects(network, omega=0.5, seed=1)
        workspace = Workspace.build(
            network, objects, paged=True, buffer_bytes=BENCH_BUFFER
        )
        with QueryService(workspace, workers=2, batch_window_s=0.0) as service:
            for seed in range(4):
                queries = select_query_points(
                    network, 3, region_fraction=0.2, seed=seed
                )
                service.query("LBC", queries)
            text = benchmark(service.metrics.render)
        assert "repro_service_requests_total" in text
