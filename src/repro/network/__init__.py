"""The road-network substrate.

Everything the paper's Section 3 describes, built from scratch:

* :class:`~repro.network.graph.RoadNetwork` — the graph model with
  on-network locations;
* :class:`~repro.network.objects.ObjectSet` — the data objects ``D``;
* :class:`~repro.network.middle_layer.MiddleLayer` — the B+-tree-indexed
  object↔edge mapping;
* :class:`~repro.network.storage.NetworkStore` — Hilbert-clustered
  adjacency pages behind an LRU buffer;
* :class:`~repro.network.dijkstra.DijkstraExpander` — resumable
  wavefront with incremental nearest-object enumeration (CE's engine);
* :class:`~repro.network.astar.AStarExpander` /
  :class:`~repro.network.astar.LowerBoundSearch` — resumable A* with
  path-distance lower bounds (EDC's and LBC's engine).
"""

from repro.network.astar import AStarExpander, HeuristicFn, LowerBoundSearch
from repro.network.landmarks import LandmarkHeuristic
from repro.network.dijkstra import DijkstraExpander
from repro.network.graph import Edge, NetworkLocation, RoadNetwork
from repro.network.middle_layer import (
    InMemoryPlacements,
    MiddleLayer,
    ObjectPlacement,
)
from repro.network.objects import ObjectSet, SpatialObject
from repro.network.shortest_path import (
    distance_matrix,
    k_nearest_objects,
    network_distance,
    network_distances,
    route_to,
    shortest_path_nodes,
    to_networkx,
)
from repro.network.storage import NetworkStore, clustering_quality, hilbert_index

__all__ = [
    "AStarExpander",
    "DijkstraExpander",
    "Edge",
    "HeuristicFn",
    "LandmarkHeuristic",
    "InMemoryPlacements",
    "LowerBoundSearch",
    "MiddleLayer",
    "NetworkLocation",
    "NetworkStore",
    "ObjectPlacement",
    "ObjectSet",
    "RoadNetwork",
    "SpatialObject",
    "clustering_quality",
    "distance_matrix",
    "hilbert_index",
    "k_nearest_objects",
    "network_distance",
    "network_distances",
    "route_to",
    "shortest_path_nodes",
    "to_networkx",
]
