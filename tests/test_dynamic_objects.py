"""Dynamic object updates: the workspace stays consistent under churn."""

import random

import pytest

from repro.core import CE, EDC, LBC, NaiveSkyline, Workspace
from repro.network import SpatialObject

from conftest import build_random_network, place_random_objects, random_locations


def fresh_workspace(seed, paged, attribute_count=0):
    network = build_random_network(60, 40, seed=seed, detour_max=0.7)
    objects = place_random_objects(
        network, 30, seed=seed + 1, attribute_count=attribute_count
    )
    return network, Workspace.build(network, objects, paged=paged)


def object_on_edge(network, object_id, edge_index=0, fraction=0.5, attrs=()):
    edge = sorted(network.edges(), key=lambda e: e.edge_id)[edge_index]
    loc = network.location_on_edge(edge.edge_id, edge.length * fraction)
    return SpatialObject(object_id, loc, attrs)


class TestAddObject:
    @pytest.mark.parametrize("paged", [False, True])
    def test_added_object_visible_to_queries(self, paged):
        network, workspace = fresh_workspace(1001, paged)
        queries = random_locations(network, 2, seed=1002)
        # Place the new object exactly on the first query point's
        # location (if on an edge) or adjacent — it must dominate
        # everything in that dimension and join the skyline.
        new = SpatialObject(9000, queries[0])
        workspace.add_object(new)
        result = LBC().run(workspace, queries)
        assert 9000 in result.object_ids()
        assert result.same_answer(NaiveSkyline().run(workspace, queries))

    def test_duplicate_id_rejected(self):
        network, workspace = fresh_workspace(1011, paged=False)
        with pytest.raises(ValueError):
            workspace.add_object(object_on_edge(network, 0))

    def test_attribute_mismatch_rejected(self):
        network, workspace = fresh_workspace(1021, paged=False, attribute_count=1)
        with pytest.raises(ValueError):
            workspace.add_object(object_on_edge(network, 9000, attrs=()))

    def test_counts_update(self):
        network, workspace = fresh_workspace(1031, paged=False)
        before = len(workspace.objects)
        workspace.add_object(object_on_edge(network, 9000))
        assert len(workspace.objects) == before + 1
        assert len(list(workspace.object_rtree.all_entries())) == before + 1


class TestRemoveObject:
    @pytest.mark.parametrize("paged", [False, True])
    def test_removed_object_gone_from_answers(self, paged):
        network, workspace = fresh_workspace(1041, paged)
        queries = random_locations(network, 2, seed=1042)
        result = LBC().run(workspace, queries)
        victim = result.points[0].object_id
        workspace.remove_object(victim)
        after = LBC().run(workspace, queries)
        assert victim not in after.object_ids()
        assert after.same_answer(NaiveSkyline().run(workspace, queries))

    def test_remove_unknown_raises(self):
        _, workspace = fresh_workspace(1051, paged=False)
        with pytest.raises(KeyError):
            workspace.remove_object(424242)

    def test_remove_then_readd(self):
        network, workspace = fresh_workspace(1061, paged=False)
        obj = workspace.objects.get(5)
        workspace.remove_object(5)
        workspace.add_object(obj)
        queries = random_locations(network, 2, seed=1062)
        assert LBC().run(workspace, queries).same_answer(
            NaiveSkyline().run(workspace, queries)
        )

    def test_middle_layer_consistent_after_removal(self):
        network, workspace = fresh_workspace(1071, paged=True)
        obj = workspace.objects.get(3)
        edge_id = obj.location.edge_id
        workspace.remove_object(3)
        remaining = workspace.middle.objects_on(edge_id)
        assert all(p.obj.object_id != 3 for p in remaining)


class TestChurn:
    @pytest.mark.parametrize("paged", [False, True])
    def test_random_churn_keeps_algorithms_agreeing(self, paged):
        rng = random.Random(77)
        network, workspace = fresh_workspace(1081, paged)
        queries = random_locations(network, 3, seed=1082)
        next_id = 10_000
        edge_ids = sorted(network.edge_ids())
        for step in range(25):
            if len(workspace.objects) > 5 and rng.random() < 0.5:
                victim = rng.choice(sorted(o.object_id for o in workspace.objects))
                workspace.remove_object(victim)
            else:
                edge = network.edge(rng.choice(edge_ids))
                loc = network.location_on_edge(
                    edge.edge_id, edge.length * rng.uniform(0.05, 0.95)
                )
                workspace.add_object(SpatialObject(next_id, loc))
                next_id += 1
            if step % 5 == 4:
                reference = NaiveSkyline().run(workspace, queries)
                for algorithm in (CE(), EDC(), LBC()):
                    assert algorithm.run(workspace, queries).same_answer(
                        reference
                    ), f"step {step}: {algorithm.name}"
        workspace.object_rtree.validate()
