"""Flight recorder: always-on crash/stall forensics for the serving plane.

Three cooperating pieces, all stdlib:

* :class:`FlightRecorder` — a bounded ring of recently *completed*
  trace trees (one deque append per query; serialisation is deferred
  to dump time) plus :meth:`FlightRecorder.dump`, which writes a
  single self-contained JSON *flight record*: the ring contents, every
  *in-flight* query's live span tree (via the registry below and the
  per-thread active-span mirror in :mod:`repro.obs.tracing`), and a
  ``sys._current_frames`` stack snapshot of every thread.  Triggers
  are the caller's business: slow query, error, SIGUSR2, watchdog.
* :class:`InFlightTable` — the registry of admitted-but-unfinished
  queries (root span + progress bookkeeping) that the watchdog scans
  and ``GET /debugz`` renders.
* :class:`StallWatchdog` — a passive scanner (the service drives it
  from its diagnostics thread; tests drive :meth:`StallWatchdog.scan`
  directly with a fake clock) that flags any in-flight query whose
  root span has exceeded a deadline *with no counter progress* — the
  signature of a wedged expansion, a deadlock, or a client that will
  never get an answer.

Live span trees are serialised with :func:`safe_span_dict`: the owning
thread is still appending children and bumping counters while we walk,
so a ``RuntimeError`` from a mutating dict is retried and ultimately
degrades to a truncated snapshot instead of failing the dump.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
import traceback
from collections import deque
from typing import Any, Callable

import repro.obs.tracing as tracing
from repro.obs.tracing import Span

FLIGHT_RECORD_VERSION = 1

DEFAULT_RING = 64
DEFAULT_MIN_DUMP_INTERVAL_S = 1.0


def thread_stacks() -> dict[str, list[str]]:
    """Formatted stack of every live thread, keyed ``name-ident``."""
    frames = sys._current_frames()
    names = {t.ident: t.name for t in threading.enumerate()}
    stacks: dict[str, list[str]] = {}
    for ident, frame in frames.items():
        label = f"{names.get(ident, 'thread')}-{ident}"
        stacks[label] = [
            line.rstrip("\n")
            for entry in traceback.format_stack(frame)
            for line in entry.splitlines()
        ]
    return stacks


def safe_span_dict(span: Span, retries: int = 3) -> dict[str, Any]:
    """``span.to_dict()`` hardened against concurrent mutation.

    A live span's children/counts are being written by its owning
    thread; dict/list copies can raise ``RuntimeError`` mid-iteration.
    Retry a few times (the window is microseconds), then fall back to
    a shallow snapshot so a dump never fails because a query was busy.
    """
    for _ in range(retries):
        try:
            return span.to_dict()
        except RuntimeError:
            continue
    return {
        "name": span.name,
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "start_wall": span.start_wall,
        "duration_s": span.duration_s,
        "attributes": {},
        "counts": {},
        "children": [],
        "truncated": True,
    }


def progress_signal(span: Span) -> float | None:
    """A scalar that changes whenever the span tree does any work.

    The sum of all recursive counter totals plus the subtree size.
    ``None`` means the walk raced a mutation — which is itself proof
    of progress, so callers treat it as "advancing".
    """
    try:
        totals = span.totals()
        return float(sum(totals.values())) + float(_subtree_size(span))
    except RuntimeError:
        return None


def _subtree_size(span: Span) -> int:
    size = 1
    for child in span.children:
        size += _subtree_size(child)
    return size


class InFlightEntry:
    """One admitted-but-unfinished query, as the watchdog sees it."""

    __slots__ = (
        "request_id",
        "algorithm",
        "span",
        "registered_at",
        "last_progress",
        "last_progress_at",
        "stalled",
    )

    def __init__(
        self,
        request_id,
        algorithm: str,
        span: Span | None,
        registered_at: float,
    ) -> None:
        self.request_id = request_id
        self.algorithm = algorithm
        self.span = span
        self.registered_at = registered_at
        self.last_progress: float | None = None
        self.last_progress_at = registered_at
        self.stalled = False

    def age_s(self, now: float) -> float:
        return now - self.registered_at

    def to_dict(self, now: float, with_span: bool = True) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "request_id": self.request_id,
            "algorithm": self.algorithm,
            "age_s": round(self.age_s(now), 6),
            "since_progress_s": round(now - self.last_progress_at, 6),
            "stalled": self.stalled,
            "trace_id": self.span.trace_id if self.span is not None else None,
        }
        if with_span and self.span is not None:
            payload["span"] = safe_span_dict(self.span)
        return payload


class InFlightTable:
    """Thread-safe registry of in-flight queries (admission → finish)."""

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._entries: dict[Any, InFlightEntry] = {}
        self._lock = threading.Lock()

    def register(
        self, request_id, algorithm: str, span: Span | None
    ) -> InFlightEntry:
        entry = InFlightEntry(request_id, algorithm, span, self._clock())
        with self._lock:
            self._entries[request_id] = entry
        return entry

    def deregister(self, request_id) -> None:
        with self._lock:
            self._entries.pop(request_id, None)

    def entries(self) -> list[InFlightEntry]:
        with self._lock:
            return list(self._entries.values())

    def snapshot(self, with_span: bool = True) -> list[dict[str, Any]]:
        """Every entry as a JSON-ready dict (``/debugz``, dumps)."""
        now = self._clock()
        return [
            entry.to_dict(now, with_span=with_span)
            for entry in self.entries()
        ]

    def count(self) -> int:
        with self._lock:
            return len(self._entries)

    def stalled_count(self) -> int:
        with self._lock:
            return sum(1 for e in self._entries.values() if e.stalled)


class StallWatchdog:
    """Flags in-flight queries past a deadline with no counter progress.

    Passive by design: :meth:`scan` does one pass over the table and is
    safe to call from any thread at any cadence.  A query is *stalled*
    when ``deadline_s`` has elapsed since its progress signal last
    changed (registration counts as the first change) — a long query
    that keeps settling nodes never trips it; a blocked one does.
    ``on_stall`` fires exactly once per stalled query.
    """

    def __init__(
        self,
        inflight: InFlightTable,
        *,
        deadline_s: float,
        on_stall: Callable[[InFlightEntry], None] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if deadline_s <= 0:
            raise ValueError(f"deadline must be > 0, got {deadline_s}")
        self.inflight = inflight
        self.deadline_s = deadline_s
        self.on_stall = on_stall
        self._clock = clock
        self._stalls = 0
        self._lock = threading.Lock()

    @property
    def stall_count(self) -> int:
        with self._lock:
            return self._stalls

    def scan(self) -> list[InFlightEntry]:
        """One pass; returns the entries newly flagged as stalled."""
        now = self._clock()
        flagged: list[InFlightEntry] = []
        for entry in self.inflight.entries():
            if entry.stalled:
                continue
            signal = (
                progress_signal(entry.span)
                if entry.span is not None
                else None
            )
            if signal is None or signal != entry.last_progress:
                # None means the walk raced live mutation: progress.
                entry.last_progress = signal
                entry.last_progress_at = now
                continue
            if now - entry.last_progress_at < self.deadline_s:
                continue
            entry.stalled = True
            flagged.append(entry)
        if flagged:
            with self._lock:
                self._stalls += len(flagged)
            if self.on_stall is not None:
                for entry in flagged:
                    self.on_stall(entry)
        return flagged


class FlightRecorder:
    """Ring of recent completed traces + triggered black-box dumps."""

    def __init__(
        self,
        *,
        ring: int = DEFAULT_RING,
        dump_dir: str | None = None,
        inflight: InFlightTable | None = None,
        min_dump_interval_s: float = DEFAULT_MIN_DUMP_INTERVAL_S,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if ring < 1:
            raise ValueError(f"ring size must be >= 1, got {ring}")
        self.dump_dir = dump_dir
        self.inflight = inflight
        self.min_dump_interval_s = min_dump_interval_s
        self._clock = clock
        self._ring: deque[dict[str, Any]] = deque(maxlen=ring)
        self._lock = threading.Lock()
        self._dumps = 0
        self._dumps_suppressed = 0
        self._last_dump_at: float | None = None
        self._ids = 0

    # -- always-on side ------------------------------------------------

    def record(
        self,
        span: Span,
        *,
        outcome: str = "ok",
        latency_s: float = 0.0,
    ) -> None:
        """Retain one completed trace root (one deque append, no
        serialisation — dumps pay that cost, not queries)."""
        entry = {
            "span": span,
            "outcome": outcome,
            "latency_s": latency_s,
            "wall_time": time.time(),
        }
        with self._lock:
            self._ring.append(entry)

    def ring_entries(self) -> list[dict[str, Any]]:
        with self._lock:
            return list(self._ring)

    @property
    def ring_size(self) -> int:
        with self._lock:
            return len(self._ring)

    @property
    def dump_count(self) -> int:
        with self._lock:
            return self._dumps

    @property
    def suppressed_count(self) -> int:
        with self._lock:
            return self._dumps_suppressed

    # -- dump side -----------------------------------------------------

    def dump_payload(
        self, reason: str, extra: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        """The full flight record as a dict (no file written)."""
        now = self._clock()
        ring = []
        for entry in self.ring_entries():
            span: Span = entry["span"]
            ring.append(
                {
                    "outcome": entry["outcome"],
                    "latency_s": entry["latency_s"],
                    "wall_time": entry["wall_time"],
                    "trace": safe_span_dict(span),
                }
            )
        inflight = []
        if self.inflight is not None:
            inflight = [
                entry.to_dict(now, with_span=True)
                for entry in self.inflight.entries()
            ]
        active = {}
        for ident, root in tracing.active_roots().items():
            active[str(ident)] = safe_span_dict(root)
        payload: dict[str, Any] = {
            "flight_record": FLIGHT_RECORD_VERSION,
            "reason": reason,
            "wall_time": time.time(),
            "ring": ring,
            "inflight": inflight,
            "active_by_thread": active,
            "threads": thread_stacks(),
        }
        if extra:
            payload["extra"] = dict(extra)
        return payload

    def dump(
        self,
        reason: str,
        *,
        extra: dict[str, Any] | None = None,
        force: bool = False,
    ) -> str | None:
        """Write a flight record to ``dump_dir``; returns the path.

        Returns ``None`` when no directory is configured or when the
        rate limiter suppresses a burst (errors tend to arrive in
        herds; one record per interval captures the same state).
        """
        if self.dump_dir is None:
            return None
        now = self._clock()
        with self._lock:
            recent = (
                self._last_dump_at is not None
                and now - self._last_dump_at < self.min_dump_interval_s
            )
            if recent and not force:
                self._dumps_suppressed += 1
                return None
            self._last_dump_at = now
            self._dumps += 1
            sequence = self._ids = self._ids + 1
        payload = self.dump_payload(reason, extra=extra)
        os.makedirs(self.dump_dir, exist_ok=True)
        stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
        name = f"flightrecord-{stamp}-{sequence:04d}-{reason}.json"
        path = os.path.join(self.dump_dir, name)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1)
        return path

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "ring_retained": len(self._ring),
                "ring_capacity": self._ring.maxlen,
                "dumps_written": self._dumps,
                "dumps_suppressed": self._dumps_suppressed,
                "dump_dir": self.dump_dir,
            }


def install_signal_dump(recorder: FlightRecorder, signum=None) -> bool:
    """Dump a flight record on SIGUSR2 (no-op where unsupported).

    Python signal handlers run in the main thread between bytecodes,
    so writing the record inline is safe; the default rate limiter is
    bypassed — an operator pressing the button deserves a record.
    """
    import signal as signal_module

    if signum is None:
        signum = getattr(signal_module, "SIGUSR2", None)
    if signum is None:
        return False

    def _handler(received, frame):
        recorder.dump("sigusr2", force=True)

    try:
        signal_module.signal(signum, _handler)
    except ValueError:  # not the main thread
        return False
    return True


def load_flight_record(path: str) -> dict[str, Any]:
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if "flight_record" not in payload:
        raise ValueError(f"{path} is not a flight record")
    return payload


def latest_flight_record(directory: str) -> str | None:
    """Newest ``flightrecord-*.json`` under ``directory`` (by mtime)."""
    candidates = [
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if name.startswith("flightrecord-") and name.endswith(".json")
    ]
    if not candidates:
        return None
    return max(candidates, key=os.path.getmtime)


def format_flight_record(
    payload: dict[str, Any],
    *,
    max_depth: int = 6,
    include_threads: bool = True,
    keys: tuple[str, ...] = ("network_pages", "nodes_settled"),
) -> str:
    """Render a flight record for ``repro blackbox``."""
    lines: list[str] = []
    stamp = time.strftime(
        "%Y-%m-%d %H:%M:%SZ", time.gmtime(payload.get("wall_time", 0.0))
    )
    lines.append(
        f"flight record v{payload.get('flight_record')}  "
        f"reason={payload.get('reason')}  written={stamp}"
    )
    extra = payload.get("extra")
    if extra:
        parts = " ".join(f"{k}={v}" for k, v in sorted(extra.items()))
        lines.append(f"  {parts}")

    ring = payload.get("ring", [])
    lines.append(f"\nrecent completed traces ({len(ring)}):")
    for entry in ring:
        trace = entry.get("trace", {})
        counts = _trace_totals(trace)
        summary = " ".join(
            f"{key}={int(counts[key])}" for key in keys if counts.get(key)
        )
        lines.append(
            f"  {trace.get('trace_id', '?'):>16s}  "
            f"{trace.get('name', '?'):<20s} "
            f"outcome={entry.get('outcome', '?'):<18s} "
            f"latency={entry.get('latency_s', 0.0) * 1e3:8.2f}ms  {summary}"
        )

    inflight = payload.get("inflight", [])
    lines.append(f"\nin-flight queries ({len(inflight)}):")
    for entry in inflight:
        flag = "STALLED" if entry.get("stalled") else "running"
        lines.append(
            f"  request {entry.get('request_id')} "
            f"[{entry.get('algorithm')}] {flag}  "
            f"age={entry.get('age_s', 0.0):.3f}s "
            f"since_progress={entry.get('since_progress_s', 0.0):.3f}s"
        )
        span_dict = entry.get("span")
        if span_dict:
            tree = tracing.format_trace(
                Span.from_dict(span_dict), keys=keys, max_depth=max_depth
            )
            lines.extend("    " + line for line in tree.splitlines())

    if include_threads:
        threads = payload.get("threads", {})
        lines.append(f"\nthread stacks ({len(threads)}):")
        for label in sorted(threads):
            lines.append(f"  -- {label}")
            lines.extend("    " + line for line in threads[label])
    return "\n".join(lines)


def _trace_totals(trace: dict[str, Any]) -> dict[str, float]:
    totals: dict[str, float] = dict(trace.get("counts", {}))
    for child in trace.get("children", []):
        for key, value in _trace_totals(child).items():
            totals[key] = totals.get(key, 0.0) + value
    return totals
