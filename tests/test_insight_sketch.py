"""QuantileSketch: the documented error bound, exact merging, bounded
memory under collapse, and JSON round-trips."""

from __future__ import annotations

import json
import random

import pytest

from repro.insight.sketch import (
    DEFAULT_ALPHA,
    QuantileSketch,
    exact_quantile,
)

QUANTILES = (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0)


def _assert_within_alpha(sketch, values, alpha):
    ordered = sorted(values)
    for q in QUANTILES:
        exact = exact_quantile(ordered, q)
        estimate = sketch.quantile(q)
        assert abs(estimate - exact) <= alpha * exact + 1e-12, (
            f"q={q}: |{estimate} - {exact}| > {alpha} * {exact}"
        )


class TestErrorBound:
    """|estimate - exact| <= alpha * exact — the module's contract."""

    @pytest.mark.parametrize("alpha", [0.01, 0.05])
    def test_uniform_values(self, alpha):
        rng = random.Random(42)
        values = [rng.uniform(0.0005, 2.0) for _ in range(5000)]
        sketch = QuantileSketch(alpha)
        sketch.extend(values)
        _assert_within_alpha(sketch, values, alpha)

    def test_heavy_tailed_values(self):
        # Latency-like: most tiny, a few enormous — the regime the
        # log-bucketed scheme is built for.
        rng = random.Random(7)
        values = [rng.lognormvariate(-5.0, 2.0) for _ in range(5000)]
        sketch = QuantileSketch()
        sketch.extend(values)
        _assert_within_alpha(sketch, values, DEFAULT_ALPHA)

    def test_integer_counter_values(self):
        rng = random.Random(3)
        values = [float(rng.randint(0, 500)) for _ in range(2000)]
        sketch = QuantileSketch()
        sketch.extend(values)
        _assert_within_alpha(sketch, values, DEFAULT_ALPHA)

    def test_zeros_are_exact(self):
        sketch = QuantileSketch()
        sketch.extend([0.0] * 90 + [1.0] * 10)
        assert sketch.quantile(0.5) == 0.0
        assert sketch.quantile(0.9) == 0.0
        assert abs(sketch.quantile(0.95) - 1.0) <= DEFAULT_ALPHA

    def test_mean_min_max_are_exact(self):
        values = [0.25, 0.5, 1.0, 4.0]
        sketch = QuantileSketch()
        sketch.extend(values)
        assert sketch.mean == pytest.approx(sum(values) / len(values))
        assert sketch.min == 0.25
        assert sketch.max == 4.0
        assert sketch.count == 4

    def test_empty_sketch_answers_zero(self):
        sketch = QuantileSketch()
        assert sketch.quantile(0.5) == 0.0
        assert sketch.mean == 0.0


class TestMerge:
    def test_merge_equals_sketch_of_concatenated_stream(self):
        # The stronger property behind the bound: bucket-wise merge is
        # *exact*, so shard digests combine with zero added error.
        rng = random.Random(11)
        a_values = [rng.lognormvariate(-4.0, 1.5) for _ in range(1200)]
        b_values = [rng.uniform(0.0, 0.5) for _ in range(800)]
        a = QuantileSketch()
        a.extend(a_values)
        b = QuantileSketch()
        b.extend(b_values)
        combined = QuantileSketch()
        combined.extend(a_values + b_values)
        assert a.merge(b) == combined
        for q in QUANTILES:
            assert a.quantile(q) == combined.quantile(q)

    def test_merged_sketch_keeps_the_bound(self):
        rng = random.Random(13)
        shards, everything = [], []
        for _ in range(4):
            values = [rng.uniform(0.001, 1.0) for _ in range(500)]
            sketch = QuantileSketch()
            sketch.extend(values)
            shards.append(sketch)
            everything.extend(values)
        merged = shards[0]
        for other in shards[1:]:
            merged.merge(other)
        _assert_within_alpha(merged, everything, DEFAULT_ALPHA)

    def test_alpha_mismatch_refuses_to_merge(self):
        with pytest.raises(ValueError, match="alpha"):
            QuantileSketch(0.01).merge(QuantileSketch(0.02))


class TestBoundedMemory:
    def test_collapse_keeps_buckets_bounded_and_tail_exactish(self):
        sketch = QuantileSketch(0.01, max_buckets=64)
        # A geometric ramp spanning ~700 distinct buckets at alpha=0.01.
        values = [1.05**i for i in range(300)]
        sketch.extend(values)
        assert len(sketch._buckets) <= 64
        assert sketch.collapsed
        # Collapse folds the *lowest* buckets: the tail stays in-bound.
        exact_p99 = exact_quantile(sorted(values), 0.99)
        assert abs(sketch.quantile(0.99) - exact_p99) <= 0.01 * exact_p99

    def test_no_collapse_within_range(self):
        sketch = QuantileSketch()
        sketch.extend([0.001 * i for i in range(1, 2000)])
        assert not sketch.collapsed


class TestValidation:
    @pytest.mark.parametrize("bad", [-1.0, float("nan"), float("inf")])
    def test_rejects_unsketchable_values(self, bad):
        with pytest.raises(ValueError):
            QuantileSketch().insert(bad)

    @pytest.mark.parametrize("alpha", [0.0, 1.0, -0.5])
    def test_rejects_bad_alpha(self, alpha):
        with pytest.raises(ValueError):
            QuantileSketch(alpha)

    def test_rejects_bad_quantile(self):
        sketch = QuantileSketch()
        sketch.insert(1.0)
        with pytest.raises(ValueError):
            sketch.quantile(1.5)

    def test_rejects_zero_weight(self):
        with pytest.raises(ValueError):
            QuantileSketch().insert(1.0, weight=0)


class TestSerialisation:
    def test_json_round_trip_preserves_every_answer(self):
        rng = random.Random(5)
        sketch = QuantileSketch()
        sketch.extend(rng.uniform(0.0, 3.0) for _ in range(700))
        payload = json.loads(json.dumps(sketch.to_dict()))
        revived = QuantileSketch.from_dict(payload)
        assert revived == sketch
        for q in QUANTILES:
            assert revived.quantile(q) == sketch.quantile(q)
        assert revived.mean == sketch.mean
        assert revived.min == sketch.min
        assert revived.max == sketch.max

    def test_empty_round_trip(self):
        revived = QuantileSketch.from_dict(QuantileSketch().to_dict())
        assert revived.count == 0
        assert revived.quantile(0.9) == 0.0


class TestExactQuantileReference:
    def test_nearest_rank_definition(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert exact_quantile(values, 0.0) == 1.0
        assert exact_quantile(values, 0.25) == 1.0
        assert exact_quantile(values, 0.5) == 2.0
        assert exact_quantile(values, 0.75) == 3.0
        assert exact_quantile(values, 1.0) == 4.0
        assert exact_quantile([], 0.5) == 0.0
