"""Text reporters for the insight CLI (JSON is just ``to_dict``)."""

from __future__ import annotations

from repro.insight.analyze import InsightDiff, InsightSummary


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.2f}ms"


def format_summary(summary: InsightSummary) -> str:
    """Human-readable cohort table with digests and slow exemplars."""
    lines = [
        f"insight summary: {summary.source or '<events>'} "
        f"({summary.kind}, {summary.events} events, "
        f"{len(summary.cohorts)} cohorts)"
    ]
    if summary.corrupt_lines:
        lines.append(
            f"  ! skipped {summary.corrupt_lines} corrupt/partial "
            f"line(s) while reading the log"
        )
    for key, digest in sorted(summary.cohorts.items()):
        latency = digest.latency_s
        lines.append(
            f"  {key}  n={digest.count}  "
            f"p50={_fmt_ms(latency.get('p50', 0.0))}  "
            f"p99={_fmt_ms(latency.get('p99', 0.0))}  "
            f"max={_fmt_ms(latency.get('max', 0.0))}"
        )
        for name, stats in sorted(digest.counters.items()):
            mean = stats.get("mean", 0.0)
            if mean:
                lines.append(
                    f"      {name}: mean={mean:.1f} max={stats.get('max', 0.0):g}"
                )
        for exemplar in digest.slowest:
            lines.append(
                f"      slow: {_fmt_ms(exemplar.get('latency_s', 0.0))} "
                f"trace={exemplar.get('trace_id')} "
                f"request={exemplar.get('request_id')}"
            )
    return "\n".join(lines)


def format_diff(diff: InsightDiff) -> str:
    """Human-readable verdict, failures first — mirrors bench compare."""
    lines = [
        f"insight compare: {diff.baseline_source or '<baseline>'} vs "
        f"{diff.current_source or '<current>'}"
    ]
    for failure in diff.failures:
        lines.append(f"  REGRESSION {failure}")
    for warning in diff.warnings:
        lines.append(f"  warning    {warning}")
    for note in diff.notes:
        lines.append(f"  note       {note}")
    lines.append(
        "verdict: "
        + (
            "OK — no deterministic regressions"
            if diff.ok
            else f"REGRESSED — {len(diff.failures)} failure(s)"
        )
    )
    return "\n".join(lines)


def format_top(events: list[dict]) -> str:
    """Slowest-events listing with trace ids for follow-up."""
    if not events:
        return "no matching query events"
    lines = [f"top {len(events)} slowest events:"]
    for rank, event in enumerate(events, start=1):
        lines.append(
            f"  {rank:2d}. {_fmt_ms(float(event.get('latency_s', 0.0)))}  "
            f"{event.get('cohort', '?')}  "
            f"request={event.get('request_id')} "
            f"trace={event.get('trace_id')}"
        )
    return "\n".join(lines)
