"""Cohort keying: the shared vocabulary of the insight plane.

A *cohort* is the unit every insight answer is phrased in:
``algorithm × engine backend × |Q| bucket × outcome``.  Per-query
numbers are too noisy to compare and whole-log aggregates hide
mixture shifts (EDC got slower but more small-|Q| CE traffic arrived,
so the global p50 improved); cohorts are the altitude where "did EDC
get slower for large |Q| after the oracle landed?" has a well-defined
answer.

This module is the *single* place a cohort key is minted.  The live
hub (:mod:`repro.insight.live`) keys its rolling digests with
:func:`cohort_key` from the service's own request fields, and the
offline analyzer (:mod:`repro.insight.analyze`) keys with
:func:`cohort_of_event` from a wide event's fields — both funnel into
the same string, which is what lets the acceptance test hold live
``/insightz`` digests against offline whole-log aggregation.

|Q| buckets are powers of two (``[1,2) [2,4) [4,8) [8,16) [16,∞)``):
the paper's |Q| sweeps show cost growth bending at power-of-two-ish
scales, and a handful of buckets keeps live label cardinality bounded
(algorithms × backends × 5 buckets × 3 outcomes).
"""

from __future__ import annotations

Q_BUCKET_BOUNDS = (1, 2, 4, 8, 16)
"""Lower bounds of the |Q| buckets; the last is open-ended."""

COHORT_SEPARATOR = "/"


def q_bucket_label(query_count: int) -> str:
    """The |Q| bucket a query-point count falls into, as its label.

    >>> q_bucket_label(1), q_bucket_label(5), q_bucket_label(40)
    ('|Q|[1,2)', '|Q|[4,8)', '|Q|[16,inf)')
    """
    count = max(int(query_count), Q_BUCKET_BOUNDS[0])
    for low, high in zip(Q_BUCKET_BOUNDS, Q_BUCKET_BOUNDS[1:]):
        if low <= count < high:
            return f"|Q|[{low},{high})"
    return f"|Q|[{Q_BUCKET_BOUNDS[-1]},inf)"


def cohort_key(
    algorithm: str, backend: str, query_count: int, outcome: str
) -> str:
    """The canonical cohort key string.

    ``backend`` may be empty (failed queries never resolve one); it is
    normalised to ``"-"`` so keys stay greppable and split cleanly.
    """
    return COHORT_SEPARATOR.join(
        (
            str(algorithm) or "-",
            str(backend) or "-",
            q_bucket_label(query_count),
            str(outcome) or "-",
        )
    )


def cohort_of_event(event: dict) -> str:
    """The cohort key of one wide event (see :mod:`repro.obs.events`)."""
    return cohort_key(
        event.get("algorithm", "-"),
        event.get("engine_backend", ""),
        int(event.get("query_count", 0) or 0),
        event.get("outcome", "-"),
    )


def split_cohort(key: str) -> dict[str, str]:
    """Break a cohort key back into its named parts (reporting only)."""
    parts = key.split(COHORT_SEPARATOR)
    if len(parts) != 4:
        return {"algorithm": key, "backend": "-", "q": "-", "outcome": "-"}
    return {
        "algorithm": parts[0],
        "backend": parts[1],
        "q": parts[2],
        "outcome": parts[3],
    }
