"""Unit tests for the clustered network store and Hilbert ordering."""

import random


from repro.datasets import grid_network
from repro.network import NetworkStore, clustering_quality, hilbert_index
from repro.storage import DEFAULT_PAGE_SIZE



class TestHilbertIndex:
    def test_order_one_quadrants(self):
        # The four cells of a first-order curve are visited exactly once.
        cells = {hilbert_index(x, y, 1) for x in (0, 1) for y in (0, 1)}
        assert cells == {0, 1, 2, 3}

    def test_bijective_on_grid(self):
        order = 4
        side = 1 << order
        seen = {
            hilbert_index(x, y, order) for x in range(side) for y in range(side)
        }
        assert seen == set(range(side * side))

    def test_adjacent_cells_are_close_on_curve(self):
        # The Hilbert property: consecutive curve positions are adjacent
        # cells, so adjacent cells tend to have close indices.  Compare
        # against row-major order on random neighbour pairs.
        order = 5
        side = 1 << order
        rng = random.Random(0)
        hilbert_gaps = []
        rowmajor_gaps = []
        for _ in range(300):
            x = rng.randrange(side - 1)
            y = rng.randrange(side)
            hilbert_gaps.append(
                abs(hilbert_index(x, y, order) - hilbert_index(x + 1, y, order))
            )
            rowmajor_gaps.append(abs((y * side + x) - (y * side + x + 1)))
        # Hilbert's average neighbour gap should be modest; a weak but
        # meaningful locality assertion.
        assert sum(hilbert_gaps) / len(hilbert_gaps) < side * side / 8


class TestNetworkStore:
    def test_every_node_has_a_page(self, medium_network):
        store = NetworkStore(medium_network)
        for node_id in medium_network.node_ids():
            assert store.page_of(node_id) >= 0

    def test_touch_counts_io(self, medium_network):
        store = NetworkStore(medium_network)
        node = next(iter(medium_network.node_ids()))
        store.touch_node(node)
        store.touch_node(node)
        assert store.stats.logical_reads == 2
        assert store.stats.physical_reads == 1

    def test_reset_cold_empties_buffer(self, medium_network):
        store = NetworkStore(medium_network)
        node = next(iter(medium_network.node_ids()))
        store.touch_node(node)
        store.reset(cold=True)
        store.touch_node(node)
        assert store.stats.physical_reads == 1

    def test_reset_warm_keeps_buffer(self, medium_network):
        store = NetworkStore(medium_network)
        node = next(iter(medium_network.node_ids()))
        store.touch_node(node)
        store.reset(cold=False)
        store.touch_node(node)
        assert store.stats.physical_reads == 0

    def test_small_pages_make_more_pages(self, medium_network):
        big = NetworkStore(medium_network, page_size=DEFAULT_PAGE_SIZE)
        small = NetworkStore(medium_network, page_size=256)
        assert small.page_count > big.page_count

    def test_huge_degree_node_clamped_to_page(self):
        # A star network where the hub's record exceeds one page must
        # still cluster without raising.
        from repro.geometry import Point
        from repro.network import RoadNetwork

        net = RoadNetwork()
        net.add_node(0, Point(0.5, 0.5))
        for i in range(1, 300):
            net.add_node(i, Point((i % 17) / 17.0, (i % 13) / 13.0))
            net.add_edge(0, i)
        store = NetworkStore(net, page_size=1024)
        store.touch_node(0)  # must not raise
        assert store.page_count >= 1

    def test_empty_network(self):
        from repro.network import RoadNetwork

        store = NetworkStore(RoadNetwork())
        assert store.page_count == 0

    def test_hilbert_clustering_beats_random_on_grid(self):
        net = grid_network(24, 24, seed=3)
        store = NetworkStore(net, page_size=1024)
        quality = clustering_quality(store)
        # Random assignment would co-locate only ~ (records/page) / nodes
        # of edges; Hilbert clustering should co-locate a large share.
        assert quality > 0.3

    def test_edge_rtree(self, medium_network):
        store = NetworkStore(medium_network)
        tree = store.build_edge_rtree(max_entries=8)
        tree.validate()
        assert len(list(tree.all_entries())) == medium_network.edge_count


class TestWavefrontLocality:
    def test_compact_walk_hits_buffer(self):
        """A spatially compact expansion should mostly re-hit pages."""
        net = grid_network(30, 30, seed=1)
        store = NetworkStore(net, page_size=2048)
        from repro.network import DijkstraExpander

        expander = DijkstraExpander(
            net, net.location_at_node(0), store=store
        )
        for _ in range(200):
            if expander.expand_next() is None:
                break
        assert store.stats.hit_ratio > 0.5

    def test_random_jumps_miss_more(self):
        net = grid_network(30, 30, seed=1)
        store = NetworkStore(
            net, page_size=2048, buffer_bytes=2048 * 4
        )  # tiny buffer
        rng = random.Random(2)
        nodes = list(net.node_ids())
        for _ in range(200):
            store.touch_node(rng.choice(nodes))
        random_ratio = store.stats.hit_ratio

        store2 = NetworkStore(net, page_size=2048, buffer_bytes=2048 * 4)
        from repro.network import DijkstraExpander

        expander = DijkstraExpander(net, net.location_at_node(0), store=store2)
        for _ in range(200):
            expander.expand_next()
        assert store2.stats.hit_ratio > random_ratio
