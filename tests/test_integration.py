"""Integration tests: cross-algorithm agreement and the Section 5 claims.

These run complete queries on moderately sized workloads and check the
analytical relationships the paper proves or argues:

* all algorithms return exactly the same skyline (the naive oracle);
* ``C(LBC) <= C(EDC)`` — LBC's candidate space is contained in EDC's
  (Section 5 proves set containment; we verify the count corollary);
* ``N(LBC) <= N(CE)`` — LBC never touches more network nodes than CE
  (the instance-optimality corollary we can measure).
"""

import pytest

from repro.core import CE, EDC, EDCIncremental, LBC, NaiveSkyline, Workspace
from repro.datasets import (
    build_preset,
    extract_objects,
    select_query_points,
    select_query_points_on_edges,
)

from conftest import build_random_network, place_random_objects, random_locations


def make_workload(seed, node_count=80, extra=55, objects=60, attributes=0):
    network = build_random_network(node_count, extra, seed=seed, detour_max=0.7)
    object_set = place_random_objects(
        network, objects, seed=seed + 1, attribute_count=attributes
    )
    workspace = Workspace.build(network, object_set, paged=False)
    return network, workspace


class TestCrossAlgorithmAgreement:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_all_algorithms_agree_random_workloads(self, seed):
        network, workspace = make_workload(seed * 100)
        queries = random_locations(network, (seed % 4) + 1, seed=seed * 100 + 2)
        reference = NaiveSkyline().run(workspace, queries)
        for algorithm in (CE(), EDC(), EDCIncremental(), LBC()):
            result = algorithm.run(workspace, queries)
            assert result.same_answer(reference), algorithm.name

    @pytest.mark.parametrize("seed", [11, 12])
    def test_agreement_with_attributes(self, seed):
        network, workspace = make_workload(seed * 100, attributes=2)
        queries = random_locations(network, 3, seed=seed * 100 + 2)
        reference = NaiveSkyline().run(workspace, queries)
        for algorithm in (CE(), EDC(), EDCIncremental(), LBC()):
            assert algorithm.run(workspace, queries).same_answer(reference)

    def test_agreement_on_preset_workload(self):
        """End-to-end on the paper's CA stand-in, paged storage."""
        network = build_preset("CA", scale=0.05)
        objects = extract_objects(network, omega=0.5, seed=1)
        workspace = Workspace.build(network, objects, paged=True)
        queries = select_query_points(network, 4, seed=2)
        reference = NaiveSkyline().run(workspace, queries)
        for algorithm in (CE(), EDC(), EDCIncremental(), LBC()):
            workspace.reset_io(cold=True)
            assert algorithm.run(workspace, queries).same_answer(reference)

    def test_agreement_with_on_edge_queries(self):
        network = build_preset("CA", scale=0.05)
        objects = extract_objects(network, omega=0.3, seed=3)
        workspace = Workspace.build(network, objects, paged=False)
        queries = select_query_points_on_edges(network, 3, seed=4)
        reference = NaiveSkyline().run(workspace, queries)
        for algorithm in (CE(), EDC(), EDCIncremental(), LBC()):
            assert algorithm.run(workspace, queries).same_answer(reference)

    def test_paged_and_unpaged_agree(self):
        network, workspace = make_workload(777)
        paged = Workspace.build(network, workspace.objects, paged=True)
        queries = random_locations(network, 3, seed=778)
        for algorithm in (CE(), EDC(), LBC()):
            a = algorithm.run(workspace, queries)
            b = algorithm.run(paged, queries)
            assert a.same_answer(b)


class TestSection5Claims:
    """The paper's analytical cost relationships, measured."""

    def _run_all(self, seed, query_count=4):
        network = build_preset("AU", scale=0.04, seed=seed)
        objects = extract_objects(network, omega=0.5, seed=seed + 1)
        workspace = Workspace.build(network, objects, paged=True)
        queries = select_query_points(network, query_count, seed=seed + 2)
        stats = {}
        for algorithm in (CE(), EDC(), LBC()):
            workspace.reset_io(cold=True)
            stats[algorithm.name] = algorithm.run(workspace, queries).stats
        return stats

    @pytest.mark.parametrize("seed", [21, 22, 23])
    def test_lbc_candidates_within_edc(self, seed):
        stats = self._run_all(seed)
        assert stats["LBC"].candidate_count <= stats["EDC"].candidate_count

    @pytest.mark.parametrize("seed", [21, 22, 23])
    def test_lbc_nodes_within_ce(self, seed):
        stats = self._run_all(seed)
        assert stats["LBC"].nodes_settled <= stats["CE"].nodes_settled

    @pytest.mark.parametrize("seed", [21, 22])
    def test_lbc_initial_response_fastest(self, seed):
        """Compared on the modeled metric: page counts dominate, so the
        comparison is deterministic (raw wall-clock can jitter)."""
        stats = self._run_all(seed)
        assert stats["LBC"].modeled_initial_s <= min(
            stats["CE"].modeled_initial_s, stats["EDC"].modeled_initial_s
        ) + 0.005

    def test_instance_optimality_corollary_across_instances(self):
        """LBC's network access never exceeds CE's on any tested instance."""
        for seed in (31, 32, 33, 34):
            stats = self._run_all(seed, query_count=3)
            assert stats["LBC"].nodes_settled <= stats["CE"].nodes_settled


class TestScaling:
    def test_more_query_points_more_work(self):
        network = build_preset("AU", scale=0.04)
        objects = extract_objects(network, omega=0.5, seed=5)
        workspace = Workspace.build(network, objects, paged=True)
        costs = []
        for q in (2, 6):
            queries = select_query_points(network, q, seed=6)
            workspace.reset_io(cold=True)
            costs.append(LBC().run(workspace, queries).stats.nodes_settled)
        assert costs[1] > costs[0]

    def test_object_density_insensitive(self):
        """Figure 6(d)-(f): ω barely moves the cost."""
        network = build_preset("AU", scale=0.04)
        workspace_costs = []
        for omega in (0.05, 2.0):
            objects = extract_objects(network, omega=omega, seed=7)
            workspace = Workspace.build(network, objects, paged=True)
            queries = select_query_points(network, 4, seed=8)
            workspace.reset_io(cold=True)
            stats = LBC().run(workspace, queries).stats
            workspace_costs.append(stats.network_pages)
        low, high = workspace_costs
        assert high <= max(4 * low, low + 30)


class TestPolylineGeometry:
    """Algorithms on a network whose edges carry polyline geometry."""

    def _curved_network(self, seed=601):
        import random

        from repro.geometry import Point, Polyline
        from repro.network import RoadNetwork

        rng = random.Random(seed)
        network = RoadNetwork()
        points = [Point(rng.random(), rng.random()) for _ in range(40)]
        for i, p in enumerate(points):
            network.add_node(i, p)
        order = list(range(40))
        rng.shuffle(order)
        pairs = list(zip(order, order[1:]))
        for _ in range(25):
            pairs.append(tuple(rng.sample(range(40), 2)))
        for u, v in pairs:
            a, b = points[u], points[v]
            # A mid-way kink makes the edge a genuine polyline whose arc
            # length exceeds the chord.
            mid = a.midpoint(b).translated(
                (rng.random() - 0.5) * 0.1, (rng.random() - 0.5) * 0.1
            )
            network.add_edge(u, v, geometry=Polyline((a, mid, b)))
        return network

    def test_all_algorithms_agree_on_curved_network(self):
        network = self._curved_network()
        objects = place_random_objects(network, 30, seed=602)
        workspace = Workspace.build(network, objects, paged=False)
        queries = random_locations(network, 3, seed=603)
        reference = NaiveSkyline().run(workspace, queries)
        for algorithm in (CE(), EDC(), EDCIncremental(), LBC()):
            assert algorithm.run(workspace, queries).same_answer(reference)

    def test_object_points_follow_geometry(self):
        network = self._curved_network()
        objects = place_random_objects(network, 20, seed=604)
        for obj in objects:
            edge = network.edge(obj.location.edge_id)
            assert edge.geometry is not None
            expected = edge.geometry.point_at(obj.location.offset)
            assert obj.point.distance_to(expected) < 1e-9

    def test_edge_lengths_are_arc_lengths(self):
        network = self._curved_network()
        for edge in network.edges():
            assert edge.length == pytest.approx(edge.geometry.length)
            chord = network.node_point(edge.u).distance_to(
                network.node_point(edge.v)
            )
            assert edge.length >= chord - 1e-12
