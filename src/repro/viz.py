"""Dependency-free SVG rendering of networks, queries and results.

Road-network algorithms are spatial; seeing them beats reading their
statistics.  This module draws:

* the network's edges (polyline geometry respected);
* data objects, query points, skyline members;
* routes (e.g. from :func:`repro.network.shortest_path.route_to`);
* an expander's settled region (the wavefront footprint — the very
  quantity the paper's cost model counts).

Everything is plain SVG text assembled by hand, so the library stays
free of plotting dependencies; tests validate the output with the
standard-library XML parser.

Example::

    from repro.viz import render_query, save_svg

    result = LBC().run(workspace, queries)
    save_svg(render_query(workspace, queries, result), "skyline.svg")
"""

from __future__ import annotations

from typing import Iterable, Sequence
from xml.sax.saxutils import escape

from repro.core.query import Workspace
from repro.core.result import SkylineResult
from repro.geometry.point import Point
from repro.network.graph import NetworkLocation, RoadNetwork

PALETTE = {
    "edge": "#b8c0c8",
    "node": "#8a949e",
    "object": "#4878d0",
    "skyline": "#d65f5f",
    "query": "#2e7d32",
    "route": "#ee854a",
    "wavefront": "#f2c14e",
    "background": "#ffffff",
    "label": "#333333",
}


class NetworkRenderer:
    """Accumulates layers over one network and emits an SVG document."""

    def __init__(
        self,
        network: RoadNetwork,
        width: int = 800,
        height: int = 800,
        padding: int = 24,
    ) -> None:
        if network.node_count == 0:
            raise ValueError("cannot render an empty network")
        if width < 2 * padding or height < 2 * padding:
            raise ValueError("canvas smaller than its padding")
        self.network = network
        self.width = width
        self.height = height
        self.padding = padding
        box = network.mbr()
        self._min_x, self._min_y = box.min_x, box.min_y
        self._span_x = box.width or 1.0
        self._span_y = box.height or 1.0
        self._layers: list[str] = []
        self._draw_network()

    # ------------------------------------------------------------------
    # Coordinate mapping (flip y: SVG grows downward)
    # ------------------------------------------------------------------
    def _sx(self, x: float) -> float:
        usable = self.width - 2 * self.padding
        return self.padding + (x - self._min_x) / self._span_x * usable

    def _sy(self, y: float) -> float:
        usable = self.height - 2 * self.padding
        return self.height - self.padding - (y - self._min_y) / self._span_y * usable

    def _map(self, p: Point) -> tuple[float, float]:
        return (round(self._sx(p.x), 2), round(self._sy(p.y), 2))

    # ------------------------------------------------------------------
    # Layers
    # ------------------------------------------------------------------
    def _draw_network(self) -> None:
        parts = [f'<g stroke="{PALETTE["edge"]}" stroke-width="1" fill="none">']
        for edge in self.network.edges():
            if edge.geometry is not None:
                coords = " ".join(
                    f"{x},{y}"
                    for x, y in (self._map(v) for v in edge.geometry.vertices)
                )
                parts.append(f'<polyline points="{coords}"/>')
            else:
                x1, y1 = self._map(self.network.node_point(edge.u))
                x2, y2 = self._map(self.network.node_point(edge.v))
                parts.append(f'<line x1="{x1}" y1="{y1}" x2="{x2}" y2="{y2}"/>')
        parts.append("</g>")
        self._layers.append("".join(parts))

    def add_nodes(self, radius: float = 1.2) -> "NetworkRenderer":
        """Draw every junction as a small dot."""
        parts = [f'<g fill="{PALETTE["node"]}">']
        for node_id in self.network.node_ids():
            x, y = self._map(self.network.node_point(node_id))
            parts.append(f'<circle cx="{x}" cy="{y}" r="{radius}"/>')
        parts.append("</g>")
        self._layers.append("".join(parts))
        return self

    def add_points(
        self,
        points: Iterable[Point],
        color: str,
        radius: float = 3.5,
        css_class: str = "points",
    ) -> "NetworkRenderer":
        """Draw a set of planar points as filled circles."""
        parts = [f'<g class="{escape(css_class)}" fill="{color}">']
        for p in points:
            x, y = self._map(p)
            parts.append(f'<circle cx="{x}" cy="{y}" r="{radius}"/>')
        parts.append("</g>")
        self._layers.append("".join(parts))
        return self

    def add_objects(
        self, objects: Iterable, radius: float = 2.5
    ) -> "NetworkRenderer":
        """Draw spatial objects (anything with a ``point`` attribute)."""
        return self.add_points(
            (obj.point for obj in objects),
            PALETTE["object"],
            radius=radius,
            css_class="objects",
        )

    def add_queries(
        self, queries: Iterable[NetworkLocation], size: float = 6.0
    ) -> "NetworkRenderer":
        """Draw query points as green diamonds."""
        parts = [f'<g class="queries" fill="{PALETTE["query"]}">']
        for q in queries:
            x, y = self._map(q.point)
            s = size
            parts.append(
                f'<polygon points="{x},{y - s} {x + s},{y} {x},{y + s} '
                f'{x - s},{y}"/>'
            )
        parts.append("</g>")
        self._layers.append("".join(parts))
        return self

    def add_skyline(
        self, result: SkylineResult, radius: float = 4.5
    ) -> "NetworkRenderer":
        """Highlight skyline members as red rings."""
        parts = [
            f'<g class="skyline" fill="none" stroke="{PALETTE["skyline"]}" '
            'stroke-width="2">'
        ]
        for point in result:
            x, y = self._map(point.obj.point)
            parts.append(f'<circle cx="{x}" cy="{y}" r="{radius}"/>')
        parts.append("</g>")
        self._layers.append("".join(parts))
        return self

    def add_route(
        self, route: Sequence[NetworkLocation], width: float = 2.5
    ) -> "NetworkRenderer":
        """Draw a route (from :func:`repro.network.route_to`)."""
        if len(route) < 2:
            return self
        coords = " ".join(
            f"{x},{y}" for x, y in (self._map(loc.point) for loc in route)
        )
        self._layers.append(
            f'<polyline class="route" points="{coords}" fill="none" '
            f'stroke="{PALETTE["route"]}" stroke-width="{width}" '
            'stroke-linecap="round"/>'
        )
        return self

    def add_wavefront(
        self, settled: Iterable[int], radius: float = 2.0
    ) -> "NetworkRenderer":
        """Shade the settled junctions of an expander (its footprint)."""
        parts = [
            f'<g class="wavefront" fill="{PALETTE["wavefront"]}" '
            'fill-opacity="0.6">'
        ]
        for node_id in settled:
            x, y = self._map(self.network.node_point(node_id))
            parts.append(f'<circle cx="{x}" cy="{y}" r="{radius}"/>')
        parts.append("</g>")
        self._layers.append("".join(parts))
        return self

    def add_title(self, text: str) -> "NetworkRenderer":
        self._layers.append(
            f'<text x="{self.padding}" y="{self.padding - 6}" '
            f'fill="{PALETTE["label"]}" font-family="sans-serif" '
            f'font-size="13">{escape(text)}</text>'
        )
        return self

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def to_svg(self) -> str:
        body = "\n".join(self._layers)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">\n'
            f'<rect width="100%" height="100%" fill="{PALETTE["background"]}"/>\n'
            f"{body}\n</svg>\n"
        )


def render_query(
    workspace: Workspace,
    queries: Sequence[NetworkLocation],
    result: SkylineResult | None = None,
    title: str | None = None,
    width: int = 800,
    height: int = 800,
) -> str:
    """One-call picture of a query: network, objects, queries, skyline."""
    renderer = NetworkRenderer(workspace.network, width=width, height=height)
    renderer.add_objects(workspace.objects)
    renderer.add_queries(queries)
    if result is not None:
        renderer.add_skyline(result)
        if title is None:
            title = (
                f"{result.stats.algorithm}: {len(result)} skyline points, "
                f"|Q|={len(queries)}, |D|={len(workspace.objects)}"
            )
    if title:
        renderer.add_title(title)
    return renderer.to_svg()


def save_svg(svg_text: str, path) -> None:
    """Write SVG text to a file."""
    from pathlib import Path

    Path(path).write_text(svg_text)
