"""Telemetry insight plane: the layer that reads the exhaust back.

PRs 3, 5 and 8 gave the stack a full telemetry exhaust — spans,
counters, wide events, flight records, BENCH artifacts.  This package
turns that exhaust into answers, in two halves:

* **offline** (:mod:`repro.insight.analyze`) — cohort digests,
  two-source diffs with per-counter attribution, noise-aware
  regression gates and top-k slow exemplars over wide-event JSONL
  logs and bench artifacts, exposed as
  ``repro insight summarize|compare|top``;
* **live** (:mod:`repro.insight.live`) — rolling per-cohort quantile
  digests (:mod:`repro.insight.sketch`) inside the serving hot path,
  served at ``GET /insightz`` and bridged into ``/metricsz``.

Both halves share one cohort vocabulary (:mod:`repro.insight.cohort`)
and one gate arithmetic (:mod:`repro.insight.gate`, also used by
``repro bench --compare``), and the package sits low in the layer DAG
(stdlib + ``obs`` only) so both ``service`` and ``bench`` may import
it.
"""

from repro.insight.analyze import (
    CohortDigest,
    InsightDiff,
    InsightSummary,
    compare_summaries,
    load_summary,
    summarize_bench_artifact,
    summarize_events,
    top_events,
)
from repro.insight.cohort import (
    Q_BUCKET_BOUNDS,
    cohort_key,
    cohort_of_event,
    q_bucket_label,
    split_cohort,
)
from repro.insight.gate import (
    EXIT_ERROR,
    EXIT_OK,
    EXIT_REGRESSION,
    format_growth,
    is_regression,
    relative_increase,
)
from repro.insight.live import TRACKED_COUNTERS, InsightHub
from repro.insight.sketch import (
    DEFAULT_ALPHA,
    DIGEST_QUANTILES,
    QuantileSketch,
    exact_quantile,
)

__all__ = [
    "CohortDigest",
    "InsightDiff",
    "InsightSummary",
    "compare_summaries",
    "load_summary",
    "summarize_bench_artifact",
    "summarize_events",
    "top_events",
    "Q_BUCKET_BOUNDS",
    "cohort_key",
    "cohort_of_event",
    "q_bucket_label",
    "split_cohort",
    "EXIT_ERROR",
    "EXIT_OK",
    "EXIT_REGRESSION",
    "format_growth",
    "is_regression",
    "relative_increase",
    "TRACKED_COUNTERS",
    "InsightHub",
    "DEFAULT_ALPHA",
    "DIGEST_QUANTILES",
    "QuantileSketch",
    "exact_quantile",
]
