"""Tests for the one-shot shortest-path helpers."""


import pytest

from repro.network import (
    distance_matrix,
    network_distance,
    network_distances,
    shortest_path_nodes,
    to_networkx,
)
from repro.network.shortest_path import eccentricity_sample

from conftest import build_random_network, random_locations


class TestNetworkDistance:
    def test_methods_agree(self, medium_network):
        locations = random_locations(medium_network, 6, seed=3)
        for a in locations[:2]:
            for b in locations[2:]:
                d1 = network_distance(medium_network, a, b, method="dijkstra")
                d2 = network_distance(medium_network, a, b, method="astar")
                assert d1 == pytest.approx(d2)

    def test_unknown_method_rejected(self, tiny_network):
        a = tiny_network.location_at_node(0)
        b = tiny_network.location_at_node(1)
        with pytest.raises(ValueError):
            network_distance(tiny_network, a, b, method="bfs")

    def test_distance_to_self(self, tiny_network):
        a = tiny_network.location_at_node(0)
        assert network_distance(tiny_network, a, a) == 0.0

    def test_symmetry(self, medium_network):
        locations = random_locations(medium_network, 4, seed=8)
        for a in locations[:2]:
            for b in locations[2:]:
                assert network_distance(medium_network, a, b) == pytest.approx(
                    network_distance(medium_network, b, a)
                )

    def test_at_least_euclidean(self, medium_network):
        locations = random_locations(medium_network, 6, seed=13)
        for a in locations[:3]:
            for b in locations[3:]:
                network = network_distance(medium_network, a, b)
                assert network >= a.point.distance_to(b.point) - 1e-9


class TestBatchHelpers:
    def test_network_distances_one_wavefront(self, medium_network):
        source = medium_network.location_at_node(0)
        targets = random_locations(medium_network, 5, seed=21)
        batch = network_distances(medium_network, source, targets)
        singles = [
            network_distance(medium_network, source, t) for t in targets
        ]
        assert batch == pytest.approx(singles)

    def test_distance_matrix_shape_and_values(self, medium_network):
        sources = random_locations(medium_network, 2, seed=31)
        targets = random_locations(medium_network, 3, seed=32)
        matrix = distance_matrix(medium_network, sources, targets)
        assert len(matrix) == 2
        assert all(len(row) == 3 for row in matrix)
        assert matrix[0][0] == pytest.approx(
            network_distance(medium_network, sources[0], targets[0])
        )

    def test_shortest_path_nodes(self, tiny_network):
        dist, path = shortest_path_nodes(
            tiny_network, tiny_network.location_at_node(0), 5
        )
        assert dist == pytest.approx(1.5)
        assert path[0] == 0 and path[-1] == 5

    def test_shortest_path_unreachable_raises(self):
        from repro.geometry import Point
        from repro.network import RoadNetwork

        net = RoadNetwork()
        net.add_node(0, Point(0, 0))
        net.add_node(1, Point(1, 1))
        with pytest.raises(ValueError):
            shortest_path_nodes(net, net.location_at_node(0), 1)


class TestInterop:
    def test_to_networkx_collapses_parallel_edges(self):
        from repro.geometry import Point
        from repro.network import RoadNetwork

        net = RoadNetwork()
        net.add_node(0, Point(0, 0))
        net.add_node(1, Point(1, 0))
        net.add_edge(0, 1, length=2.0)
        net.add_edge(0, 1, length=1.5)
        graph = to_networkx(net)
        assert graph[0][1]["weight"] == 1.5

    def test_to_networkx_preserves_counts(self, medium_network):
        graph = to_networkx(medium_network)
        assert graph.number_of_nodes() == medium_network.node_count

    def test_eccentricity_sample(self, tiny_network):
        result = eccentricity_sample(tiny_network, [0])
        assert result[0] == pytest.approx(1.5)


class TestKNearestObjects:
    def _setup(self, seed=71):
        from repro.network import InMemoryPlacements

        from conftest import build_random_network, place_random_objects

        network = build_random_network(50, 30, seed=seed)
        objects = place_random_objects(network, 30, seed=seed + 1)
        return network, objects, InMemoryPlacements(objects)

    def test_returns_k_in_order(self):
        from repro.network import k_nearest_objects

        network, objects, placements = self._setup()
        source = network.location_at_node(0)
        answers = k_nearest_objects(network, source, placements, k=5)
        assert len(answers) == 5
        distances = [d for _, d in answers]
        assert distances == sorted(distances)

    def test_matches_brute_force(self):
        from repro.network import k_nearest_objects, network_distance

        network, objects, placements = self._setup(seed=73)
        source = network.location_at_node(3)
        answers = k_nearest_objects(network, source, placements, k=4)
        brute = sorted(
            (network_distance(network, source, obj.location), obj.object_id)
            for obj in objects
        )[:4]
        assert [round(d, 9) for _, d in answers] == [
            round(d, 9) for d, _ in brute
        ]

    def test_k_exceeding_objects(self):
        from repro.network import k_nearest_objects

        network, objects, placements = self._setup(seed=75)
        source = network.location_at_node(1)
        answers = k_nearest_objects(network, source, placements, k=1000)
        assert len(answers) == len(objects)

    def test_bad_k_rejected(self):
        from repro.network import k_nearest_objects

        network, _, placements = self._setup(seed=77)
        with pytest.raises(ValueError):
            k_nearest_objects(network, network.location_at_node(0), placements, k=0)
