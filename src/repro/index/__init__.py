"""Access methods built from scratch for the reproduction.

* :class:`~repro.index.heap.AddressableHeap` — decrease-key binary heap
  backing the Dijkstra/A* wavefronts.
* :class:`~repro.index.bptree.BPlusTree` — the middle layer's edge-id
  index (Section 3 of the paper).
* :class:`~repro.index.rtree.RTree` — object and edge index with the
  best-first traversals the skyline algorithms need (Sections 4.2, 4.3).
"""

from repro.index.bptree import DEFAULT_ORDER, BPlusTree
from repro.index.heap import AddressableHeap
from repro.index.rtree import DEFAULT_MAX_ENTRIES, RTree

__all__ = [
    "DEFAULT_MAX_ENTRIES",
    "DEFAULT_ORDER",
    "AddressableHeap",
    "BPlusTree",
    "RTree",
]
