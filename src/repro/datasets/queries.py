"""Query-point selection.

Section 6.1: "the query points ranging from 1 to 15 are selected within
a relative small region (10 %) of the network such that the maximum
search region will not go beyond the given network."  We interpret 10 %
as area fraction: a square window of area ``region_fraction`` times the
network's bounding area, anchored at a random junction, from which the
query junctions are drawn.  The window grows automatically when it
holds too few junctions (sparse corners).
"""

from __future__ import annotations

import random

from repro.geometry.mbr import MBR
from repro.network.graph import NetworkLocation, RoadNetwork


def select_query_points(
    network: RoadNetwork,
    count: int,
    region_fraction: float = 0.10,
    seed: int = 0,
) -> list[NetworkLocation]:
    """Pick ``count`` query junctions inside a small random window."""
    if count < 1:
        raise ValueError(f"need at least one query point, got {count}")
    if not 0.0 < region_fraction <= 1.0:
        raise ValueError(
            f"region_fraction must be in (0, 1], got {region_fraction}"
        )
    if network.node_count == 0:
        raise ValueError("cannot select query points on an empty network")
    rng = random.Random(seed)
    node_ids = sorted(network.node_ids())
    box = network.mbr()

    anchor = network.node_point(rng.choice(node_ids))
    fraction = region_fraction
    while True:
        side_x = box.width * fraction**0.5
        side_y = box.height * fraction**0.5
        window = MBR(
            max(box.min_x, anchor.x - side_x / 2),
            max(box.min_y, anchor.y - side_y / 2),
            min(box.max_x, anchor.x + side_x / 2),
            min(box.max_y, anchor.y + side_y / 2),
        )
        inside = [
            node_id
            for node_id in node_ids
            if window.contains_point(network.node_point(node_id))
        ]
        if len(inside) >= count:
            break
        if fraction >= 1.0:
            # An anchor-centred window clips at the boundary even at
            # full size; fall back to the whole network.
            inside = node_ids
            break
        fraction = min(1.0, fraction * 2.0)

    if len(inside) < count:
        raise ValueError(
            f"network has only {len(inside)} junctions, cannot pick {count} "
            "query points"
        )
    chosen = rng.sample(inside, count)
    return [network.location_at_node(node_id) for node_id in chosen]


def select_query_points_on_edges(
    network: RoadNetwork,
    count: int,
    region_fraction: float = 0.10,
    seed: int = 0,
) -> list[NetworkLocation]:
    """Like :func:`select_query_points` but anchored mid-edge.

    Exercises the on-edge query-location code paths (users rarely stand
    exactly on a junction).
    """
    rng = random.Random(seed)
    node_locations = select_query_points(
        network, count, region_fraction=region_fraction, seed=seed
    )
    locations = []
    for loc in node_locations:
        assert loc.node_id is not None
        incident = network.neighbors(loc.node_id)
        if not incident:
            locations.append(loc)
            continue
        _, edge_id = incident[rng.randrange(len(incident))]
        edge = network.edge(edge_id)
        offset = edge.length * rng.uniform(0.25, 0.75)
        locations.append(network.location_on_edge(edge_id, offset))
    return locations
