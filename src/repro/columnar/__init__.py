"""The columnar data plane: array-backed stores and batch kernels.

The paper's algorithms spend their time comparing distance vectors.
Representing every candidate as a per-object Python tuple makes each
comparison pay interpreter overhead for allocation and boxing; this
package keeps vectors in flat ``array('d')`` buffers instead and runs
dominance, SFS and batch-distance work over whole blocks at a time.

Layer rank: between ``geometry`` and ``index`` in the DAG (see
:mod:`repro.analysis.importgraph`); it may import only ``obs`` and the
stdlib, so every higher layer — index, skyline, core, engine, datasets,
bench — can build on it.

Modules
-------
* :mod:`repro.columnar.kernels` — allocation-free batch kernels over
  flat float buffers (dominance, block SFS, batch Euclidean).  The
  ``REPRO-PERF01`` lint rule enforces the no-per-element-allocation
  discipline inside this package.
* :mod:`repro.columnar.store` — the column containers: row-major
  :class:`~repro.columnar.store.VectorTable`, planar
  :class:`~repro.columnar.store.CoordinateColumns`, id-handled
  :class:`~repro.columnar.store.CandidateBlock` and the confirmed-set
  mirror :class:`~repro.columnar.store.SkylineBlock`.
* :mod:`repro.columnar.curve` — Hilbert curve index and sort order
  (shared by the network page-clustering and the R-tree bulk load).
"""

from repro.columnar.curve import hilbert_index, hilbert_sort_indices
from repro.columnar.kernels import (
    batch_euclidean,
    block_skyline,
    dominates_block,
    dominates_block_lb,
    dominates_flat,
    fill_column,
    is_covered_by_any_block,
    is_dominated_by_any_block,
    is_dominated_by_any_block_lb,
)
from repro.columnar.store import (
    CandidateBlock,
    CoordinateColumns,
    SkylineBlock,
    VectorTable,
)

__all__ = [
    "CandidateBlock",
    "CoordinateColumns",
    "SkylineBlock",
    "VectorTable",
    "batch_euclidean",
    "block_skyline",
    "dominates_block",
    "dominates_block_lb",
    "dominates_flat",
    "fill_column",
    "hilbert_index",
    "hilbert_sort_indices",
    "is_covered_by_any_block",
    "is_dominated_by_any_block",
    "is_dominated_by_any_block_lb",
]
