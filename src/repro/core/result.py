"""Result types shared by every skyline algorithm."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.stats import QueryStats
from repro.network.objects import SpatialObject


@dataclass(frozen=True, slots=True)
class SkylinePoint:
    """One answer: an object with its full evaluation vector.

    ``vector`` holds the network distances to every query point, in
    query order, followed by the object's static attributes (if any).
    """

    obj: SpatialObject
    vector: tuple[float, ...]

    @property
    def object_id(self) -> int:
        return self.obj.object_id


@dataclass
class SkylineResult:
    """The points of a multi-source network skyline query, plus costs.

    Points appear in the order the algorithm confirmed them (LBC and
    incremental EDC report progressively; the order is part of the
    paper's user-preference story).
    """

    points: list[SkylinePoint] = field(default_factory=list)
    stats: QueryStats = field(default_factory=QueryStats)
    trace: object | None = field(default=None, compare=False, repr=False)
    """The run's root :class:`repro.obs.tracing.Span` (``query.<algo>``).

    Always populated by :meth:`SkylineAlgorithm.run`; consumers that
    want the tree (the ``repro trace`` CLI, the experiment harness)
    read it here, everyone else ignores it.  Typed loosely so the
    result module keeps zero telemetry imports.
    """

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def object_ids(self) -> list[int]:
        """Sorted object ids — the canonical form for equality checks."""
        return sorted(p.object_id for p in self.points)

    def vectors_by_id(self) -> dict[int, tuple[float, ...]]:
        """Object id → evaluation vector."""
        return {p.object_id: p.vector for p in self.points}

    def same_answer(self, other: "SkylineResult", tol: float = 1e-9) -> bool:
        """True when both results contain the same points and vectors."""
        if self.object_ids() != other.object_ids():
            return False
        mine = self.vectors_by_id()
        theirs = other.vectors_by_id()
        for object_id, vector in mine.items():
            other_vector = theirs[object_id]
            if len(vector) != len(other_vector):
                return False
            for a, b in zip(vector, other_vector):
                if a == b:  # handles inf == inf
                    continue
                if abs(a - b) > tol * max(1.0, abs(a), abs(b)):
                    return False
        return True
