"""Page-clustered layout of the oracle's query-time records.

The paper's cost model charges every structure through the 4 KiB page /
LRU buffer simulation; a preprocessed index is no exception, or its
"near-free" lookups would be free in a way no disk ever is.  Each
node's query-time record — its upward adjacency for a ``ch`` index,
its hub label for a ``hublabel`` index — is sized analogously to the
adjacency records of :class:`~repro.network.storage.NetworkStore` and
packed into pages along the same Hilbert order of the junction
coordinates, so spatially clustered lookups (a query's seed junctions
and its candidates' endpoints) share pages.

Reading a node's record is one logical page access through a
:class:`~repro.storage.buffer.BufferPool` with ``component="oracle"``:
physical misses are charged to the active span as ``oracle_pages`` and
the per-page heat shows up in ``repro heatmap`` beside the other pools.
"""

from __future__ import annotations

from repro.columnar.curve import hilbert_index
from repro.network.graph import RoadNetwork
from repro.oracle.index import OracleIndex
from repro.storage.buffer import DEFAULT_BUFFER_BYTES, BufferPool
from repro.storage.disk import DiskManager
from repro.storage.page import DEFAULT_PAGE_SIZE, PAGE_HEADER_SIZE
from repro.storage.stats import IOStats

ORACLE_RECORD_BASE_BYTES = 12
"""Node id (4) + entry count (4) + record header (4)."""

ORACLE_ENTRY_BYTES = 12
"""Hub/neighbor id (4) + distance (8)."""


class OracleStore:
    """Simulated-disk residence of one index's query-time records."""

    def __init__(
        self,
        index: OracleIndex,
        network: RoadNetwork,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
        stats: IOStats | None = None,
        hilbert_order: int = 10,
        policy: str = "lru",
    ) -> None:
        self.kind = index.kind
        self.disk = DiskManager(page_size=page_size)
        self.pool = BufferPool(
            self.disk,
            capacity_bytes=buffer_bytes,
            stats=stats,
            policy=policy,
            component="oracle",
        )
        self._page_of_node: dict[int, int] = {}
        self._pack(index, network, page_size, hilbert_order)

    def _entry_count(self, index: OracleIndex, node_id: int) -> int:
        if index.kind == "hublabel":
            assert index.labels is not None
            return len(index.labels.get(node_id, ()))
        return len(index.upward.get(node_id, ()))

    def _pack(
        self,
        index: OracleIndex,
        network: RoadNetwork,
        page_size: int,
        hilbert_order: int,
    ) -> None:
        if not index.order:
            return
        box = network.mbr()
        side = (1 << hilbert_order) - 1
        width = box.width or 1.0
        height = box.height or 1.0

        def key(node_id: int) -> int:
            p = network.node_point(node_id)
            gx = int((p.x - box.min_x) / width * side)
            gy = int((p.y - box.min_y) / height * side)
            return hilbert_index(gx, gy, hilbert_order)

        ordered = sorted(index.order, key=key)
        page = self.disk.allocate()
        for node_id in ordered:
            record_size = (
                ORACLE_RECORD_BASE_BYTES
                + ORACLE_ENTRY_BYTES * self._entry_count(index, node_id)
            )
            record_size = min(record_size, page_size - PAGE_HEADER_SIZE)
            if not page.fits(record_size):
                page = self.disk.allocate()
            page.add(node_id, record_size)
            self._page_of_node[node_id] = page.page_id

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def touch(self, node_id: int) -> None:
        """Charge the page access for reading one node's oracle record."""
        self.pool.fetch(self._page_of_node[node_id])

    def page_of(self, node_id: int) -> int:
        return self._page_of_node[node_id]

    @property
    def stats(self) -> IOStats:
        return self.pool.stats

    @property
    def page_count(self) -> int:
        return self.disk.page_count

    def reset(self, cold: bool = True) -> None:
        """Zero the counters and (by default) empty the buffer."""
        self.pool.reset_stats()
        if cold:
            self.pool.clear()
