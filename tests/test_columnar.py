"""The columnar plane: kernels vs the scalar reference, stores, curve.

The block kernels must be *bit-identical* to the quadratic scalar
reference — including under float-sum ties, duplicate vectors and
lower-bound semantics — because the algorithm layers swap freely
between the two representations.  Every randomized case is seeded.
"""

from __future__ import annotations

import random
import tracemalloc
from array import array

import pytest

from repro.columnar.curve import hilbert_index, hilbert_sort_indices
from repro.columnar.kernels import (
    batch_euclidean,
    block_skyline,
    dominates_block,
    dominates_flat,
    is_covered_by_any_block,
    is_dominated_by_any_block,
    is_dominated_by_any_block_lb,
)
from repro.columnar.store import (
    CandidateBlock,
    CoordinateColumns,
    SkylineBlock,
    VectorTable,
)
from repro.geometry.point import Point
from repro.skyline.dominance import (
    dominates,
    dominates_lower_bounds,
    dominates_or_equal,
    is_dominated_by_any,
    skyline_of,
    skyline_of_scalar,
)
from repro.skyline.sfs import sfs_skyline_block, sfs_skyline_progressive


def _random_vectors(rng, count, width, quantize=None):
    """Random vectors; ``quantize`` forces heavy component/sum ties."""
    out = []
    for _ in range(count):
        if quantize:
            vec = tuple(rng.randrange(quantize) / quantize for _ in range(width))
        else:
            vec = tuple(rng.random() for _ in range(width))
        out.append(vec)
    return out


CASES = [
    (seed, count, width, quantize)
    for seed in (0, 1, 2)
    for count, width in ((1, 1), (17, 2), (64, 3), (128, 5))
    for quantize in (None, 4)
]


@pytest.mark.parametrize("seed,count,width,quantize", CASES)
def test_block_skyline_matches_scalar_reference(seed, count, width, quantize):
    rng = random.Random(seed)
    vectors = _random_vectors(rng, count, width, quantize)
    # Seed exact duplicates: none may dominate its twin.
    if count >= 8:
        vectors[3] = vectors[1]
        vectors[7] = vectors[1]
    table = VectorTable.from_vectors(vectors)
    block = block_skyline(table.data, len(table), table.width)
    assert sorted(block) == skyline_of_scalar(vectors)
    # And the thin views agree with themselves.
    assert skyline_of(vectors) == sorted(block)
    for index in block:
        assert table.row(index) == vectors[index]


@pytest.mark.parametrize("seed", [0, 5, 11])
def test_block_skyline_order_is_scalar_sfs_order(seed):
    rng = random.Random(seed)
    vectors = _random_vectors(rng, 60, 3, quantize=3)
    table = VectorTable.from_vectors(vectors)
    assert sfs_skyline_block(table) == list(
        sfs_skyline_progressive(vectors, None)
    )


def test_block_skyline_degenerate_shapes():
    assert block_skyline(array("d"), 0, 3) == []
    # Zero-width rows cannot dominate each other: everything survives.
    assert block_skyline(array("d"), 4, 0) == [0, 1, 2, 3]


@pytest.mark.parametrize("seed", [3, 4])
def test_membership_kernels_match_scalar(seed):
    rng = random.Random(seed)
    width = 4
    vectors = _random_vectors(rng, 40, width, quantize=5)
    table = VectorTable.from_vectors(vectors)
    probes = _random_vectors(rng, 60, width, quantize=5) + vectors[:10]
    for probe in probes:
        assert is_dominated_by_any_block(
            table.data, len(table), width, probe
        ) == is_dominated_by_any(probe, vectors)
        assert is_dominated_by_any_block_lb(
            table.data, len(table), width, probe
        ) == any(dominates_lower_bounds(v, probe) for v in vectors)
        assert is_covered_by_any_block(
            table.data, len(table), width, probe
        ) == any(dominates_or_equal(probe, v) for v in vectors)


def test_membership_kernel_offset_reads_one_row_of_a_buffer():
    table = VectorTable.from_vectors([(0.5, 0.5)])
    probes = array("d", [9.0, 9.0, 1.0, 1.0])
    assert is_dominated_by_any_block(table.data, 1, 2, probes, offset=2)
    assert is_dominated_by_any_block(table.data, 1, 2, probes, offset=0)
    assert not is_dominated_by_any_block(table.data, 1, 2, table.data)


@pytest.mark.parametrize("seed", [6, 7])
def test_dominates_block_mask_matches_scalar(seed):
    rng = random.Random(seed)
    width = 3
    vectors = _random_vectors(rng, 32, width, quantize=4)
    table = VectorTable.from_vectors(vectors)
    out = array("b", bytes(len(vectors)))
    for probe in _random_vectors(rng, 20, width, quantize=4):
        hits = dominates_block(probe, table.data, len(table), width, out)
        expect = [int(dominates(probe, v)) for v in vectors]
        assert list(out) == expect
        assert hits == sum(expect)


def test_dominates_flat_ties_and_equality():
    buf = array("d", [1.0, 2.0, 1.0, 2.0, 1.0, 3.0])
    assert not dominates_flat(buf, 0, buf, 2, 2)  # equal vectors
    assert dominates_flat(buf, 0, buf, 4, 2)  # tie then strict win
    assert not dominates_flat(buf, 4, buf, 0, 2)


@pytest.mark.parametrize("seed", [8, 9])
def test_batch_euclidean_matches_point_distance(seed):
    rng = random.Random(seed)
    count = 50
    xs = array("d", (rng.uniform(-5, 5) for _ in range(count)))
    ys = array("d", (rng.uniform(-5, 5) for _ in range(count)))
    qx, qy = rng.uniform(-5, 5), rng.uniform(-5, 5)
    q = Point(qx, qy)
    out = array("d", bytes(8 * count * 3))
    batch_euclidean(xs, ys, count, qx, qy, out, offset=1, stride=3)
    for i in range(count):
        assert out[1 + i * 3] == q.distance_to(Point(xs[i], ys[i]))


def test_vector_table_roundtrip_and_width_check():
    table = VectorTable(3)
    assert len(table) == 0
    handle = table.append((1.0, 2.0, 3.0))
    assert handle == 0
    assert table.row(0) == (1.0, 2.0, 3.0)
    assert list(table.rows()) == [(1.0, 2.0, 3.0)]
    with pytest.raises(ValueError, match="dimension mismatch"):
        table.append((1.0, 2.0))
    table.clear()
    assert len(table) == 0


def test_skyline_block_dominates_and_lb():
    sky = SkylineBlock(2)
    sky.rebuild([(1.0, 1.0), (0.0, 3.0)])
    assert sky.dominates((2.0, 2.0))
    assert not sky.dominates((1.0, 1.0))  # equality is not dominance
    assert not sky.dominates((0.5, 0.9))
    # Lower bounds: sound only when strictly under some member.
    assert sky.dominates_lb((1.5, 1.5))
    assert not sky.dominates_lb((1.0, 0.5))
    buf = array("d", [9.0, 9.0, 2.0, 2.0])
    assert sky.dominates(buf, offset=2)


def test_candidate_block_skyline_returns_row_indices():
    block = CandidateBlock(2)
    block.add(10, (1.0, 1.0))
    block.add(11, (2.0, 2.0))
    block.add(12, (0.0, 3.0))
    rows = block.skyline()
    assert sorted(rows) == [0, 2]
    assert [block.ids[r] for r in sorted(rows)] == [10, 12]


def test_coordinate_columns_and_bounds():
    cols = CoordinateColumns.from_points(
        [Point(0.0, 2.0), Point(4.0, 1.0), Point(3.0, 5.0)]
    )
    assert len(cols) == 3
    assert cols.bounds() == (0.0, 1.0, 4.0, 5.0)


def test_hilbert_index_locality_basics():
    # Distinct cells map to distinct indices at a fixed order.
    side = (1 << 4) - 1
    seen = {
        hilbert_index(x, y, 4) for x in range(side + 1) for y in range(side + 1)
    }
    assert len(seen) == (side + 1) ** 2


def test_hilbert_sort_indices_is_a_permutation():
    rng = random.Random(13)
    xs = array("d", (rng.random() for _ in range(100)))
    ys = array("d", (rng.random() for _ in range(100)))
    order = hilbert_sort_indices(xs, ys, 100)
    assert sorted(order) == list(range(100))
    # Deterministic for identical input.
    assert order == hilbert_sort_indices(xs, ys, 100)


def test_streaming_skyline_stays_under_memory_ceiling(monkeypatch):
    """10^5 objects streamed through the chunked pipeline.

    The point of the columnar plane: the working set is one chunk plus
    survivors, not the dataset.  tracemalloc bounds the *new* Python
    allocations made by the generate/load/distances/skyline pipeline.
    (The optional Hilbert index phase is excluded: it legitimately
    builds an in-memory permutation of all rows.)
    """
    pytest.importorskip("tracemalloc")
    import tempfile
    from pathlib import Path

    from repro.bench import xl as xl_mod
    from repro.bench.xl import XLWorkload, run_xl_workload

    monkeypatch.setattr(xl_mod, "INDEX_PHASE_MAX_OBJECTS", 0)
    workload = XLWorkload(
        objects=100_000, queries=2, attributes=0, chunk_size=4_096
    )
    with tempfile.TemporaryDirectory() as tmp:
        tracemalloc.start()
        try:
            record = run_xl_workload(workload, tmp)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert record["counters"]["rows"] == 100_000
        assert record["counters"]["chunks"] == 25
        assert record["counters"]["skyline_count"] >= 1
        # A materialised copy of the dataset alone would need
        # 100k rows x 2 doubles = 1.6 MB before tuple overhead (~56
        # bytes per float object + tuple headers => tens of MB).
        assert peak < 2 * 1024 * 1024, f"peak {peak} bytes"
        assert not list(Path(tmp).iterdir())  # column file cleaned up
