"""Text and JSON renderers for lint results."""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.analysis.walker import Finding


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    baselined: int = 0
    errors: list[str] = field(default_factory=list)
    unused_suppressions: list[tuple[str, int]] = field(default_factory=list)
    files_checked: int = 0

    @property
    def exit_code(self) -> int:
        if self.errors:
            return 2
        return 1 if self.findings else 0


def _display_path(path: str) -> str:
    try:
        rel = os.path.relpath(path)
    except ValueError:  # pragma: no cover - cross-drive on win32
        return path
    return rel.replace(os.sep, "/") if not rel.startswith("..") else path


def render_text(result: LintResult) -> str:
    lines: list[str] = []
    for finding in sorted(result.findings, key=Finding.sort_key):
        lines.append(
            f"{_display_path(finding.path)}:{finding.line}:"
            f"{finding.col + 1}: {finding.rule_id} {finding.message}"
        )
    for path, line in result.unused_suppressions:
        lines.append(
            f"{_display_path(path)}:{line}: warning: unused "
            "`# repro: ignore` suppression (no finding matched)"
        )
    for error in result.errors:
        lines.append(f"error: {error}")
    total = len(result.findings)
    summary = (
        f"{result.files_checked} files checked, "
        f"{total} finding{'s' if total != 1 else ''}"
    )
    if result.baselined:
        summary += f" ({result.baselined} baselined)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    payload = {
        "files_checked": result.files_checked,
        "findings": [
            {
                "rule_id": finding.rule_id,
                "path": _display_path(finding.path),
                "line": finding.line,
                "col": finding.col,
                "message": finding.message,
            }
            for finding in sorted(result.findings, key=Finding.sort_key)
        ],
        "baselined": result.baselined,
        "unused_suppressions": [
            {"path": _display_path(path), "line": line}
            for path, line in result.unused_suppressions
        ],
        "errors": list(result.errors),
        "exit_code": result.exit_code,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
