"""Static lock-order analysis (``REPRO-ORDER01``).

Builds a *lock-acquisition graph* over the whole tree:

* **Lock identities** come from assignments of ``threading.Lock()``,
  ``RLock()``, ``Condition()``, ``Semaphore()`` or the repo's own
  :class:`~repro.concurrency.ReadWriteLock` to ``self.<attr>`` (keyed
  ``module.Class.attr``) or to a module-level name (``module.name``).
* **Edges** ``A -> B`` mean "B is acquired while A is held", found two
  ways: a ``with`` on B nested statically inside a ``with`` on A, and
  *call-through* — while holding A the function calls a same-module
  method whose transitive closure acquires B (computed by fixpoint).
* **Self-edges are dropped**: both :class:`threading.RLock` and the
  repo's ReadWriteLock are reentrant by design.

Any strongly-connected component of two or more locks is a potential
deadlock — two threads taking the component's locks in different
orders can wait on each other forever — and is reported with a
``file:line`` witness per edge.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.rules import Rule, register
from repro.analysis.walker import (
    Finding,
    ModuleInfo,
    dotted_name,
    enclosing_class,
    enclosing_function,
)

_LOCK_CONSTRUCTORS = frozenset(
    {
        "Lock",
        "RLock",
        "Condition",
        "Semaphore",
        "BoundedSemaphore",
        "ReadWriteLock",
    }
)

#: with-item context-manager method calls that acquire the receiver.
_CONTEXT_METHODS = frozenset(
    {"write_locked", "read_locked", "reading", "mutating"}
)


@dataclass
class _Acquisition:
    lock: str
    path: str
    line: int
    held: tuple[str, ...]  # locks statically held at this point


@dataclass
class _CallSite:
    callee_keys: tuple[tuple[str, str | None, str], ...]
    path: str
    line: int
    held: tuple[str, ...]


@dataclass
class _FunctionFacts:
    key: tuple[str, str | None, str]  # (module, class, function)
    acquisitions: list[_Acquisition] = field(default_factory=list)
    calls: list[_CallSite] = field(default_factory=list)


class _LockIndex:
    """Resolves lock expressions to stable identities."""

    def __init__(self) -> None:
        self.by_owner: dict[tuple[str, str | None, str], str] = {}
        self.by_attr: dict[str, set[str]] = {}
        self.definitions: dict[str, tuple[str, int]] = {}

    def define(
        self,
        module: str,
        klass: str | None,
        attr: str,
        path: str,
        line: int,
    ) -> None:
        lock_id = (
            f"{module}.{klass}.{attr}" if klass else f"{module}.{attr}"
        )
        self.by_owner[(module, klass, attr)] = lock_id
        self.by_attr.setdefault(attr, set()).add(lock_id)
        self.definitions.setdefault(lock_id, (path, line))

    def resolve(
        self, module: str, klass: str | None, expr: ast.expr
    ) -> str | None:
        dotted = dotted_name(expr)
        if dotted is None:
            return None
        parts = dotted.split(".")
        if parts[0] == "self" and len(parts) == 2:
            exact = self.by_owner.get((module, klass, parts[1]))
            if exact:
                return exact
            candidates = self.by_attr.get(parts[1], set())
            if len(candidates) == 1:
                return next(iter(candidates))
            return None
        if len(parts) == 1:
            return self.by_owner.get((module, None, parts[0]))
        return None


def _lock_expr(expr: ast.expr) -> ast.expr | None:
    """The receiver whose lock a with-item takes, if any.

    ``self._lock`` -> itself; ``self._rwlock.write_locked()`` ->
    ``self._rwlock``; ``self.workspace.mutating()`` ->
    ``self.workspace`` (resolved further by call-through if the
    receiver is not itself a lock).
    """
    if isinstance(expr, ast.Call):
        if (
            isinstance(expr.func, ast.Attribute)
            and expr.func.attr in _CONTEXT_METHODS
        ):
            return expr.func.value
        return None
    if isinstance(expr, (ast.Attribute, ast.Name)):
        return expr
    return None


def _collect_lock_defs(info: ModuleInfo, index: _LockIndex) -> None:
    for node in ast.walk(info.tree):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if not (
            isinstance(value, ast.Call)
            and (
                (
                    isinstance(value.func, ast.Attribute)
                    and value.func.attr in _LOCK_CONSTRUCTORS
                )
                or (
                    isinstance(value.func, ast.Name)
                    and value.func.id in _LOCK_CONSTRUCTORS
                )
            )
        ):
            continue
        for target in node.targets:
            dotted = dotted_name(target)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if parts[0] == "self" and len(parts) == 2:
                klass = enclosing_class(node)
                if klass is not None:
                    index.define(
                        info.module,
                        klass.name,
                        parts[1],
                        info.path,
                        node.lineno,
                    )
            elif len(parts) == 1 and enclosing_function(node) is None:
                index.define(
                    info.module, None, parts[0], info.path, node.lineno
                )


def _callee_keys(
    info: ModuleInfo, klass: str | None, call: ast.Call
) -> tuple[tuple[str, str | None, str], ...]:
    func = call.func
    if isinstance(func, ast.Name):
        return ((info.module, None, func.id),)
    if isinstance(func, ast.Attribute):
        receiver = dotted_name(func.value)
        if receiver == "self" and klass is not None:
            return (
                (info.module, klass, func.attr),
                (info.module, None, func.attr),
            )
    return ()


def _collect_function_facts(
    info: ModuleInfo, index: _LockIndex
) -> list[_FunctionFacts]:
    facts: list[_FunctionFacts] = []

    def visit_function(
        func: ast.FunctionDef | ast.AsyncFunctionDef, klass: str | None
    ) -> None:
        record = _FunctionFacts(key=(info.module, klass, func.name))
        facts.append(record)

        def visit(node: ast.AST, held: tuple[str, ...]) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return  # nested defs get their own facts
            if isinstance(node, (ast.With, ast.AsyncWith)):
                inner = held
                for item in node.items:
                    expr = _lock_expr(item.context_expr)
                    if expr is None:
                        continue
                    lock = index.resolve(info.module, klass, expr)
                    if lock is None:
                        continue
                    record.acquisitions.append(
                        _Acquisition(lock, info.path, node.lineno, inner)
                    )
                    inner = inner + (lock,)
                for stmt in node.body:
                    visit(stmt, inner)
                return
            if isinstance(node, ast.Call):
                keys = _callee_keys(info, klass, node)
                if keys:
                    record.calls.append(
                        _CallSite(keys, info.path, node.lineno, held)
                    )
            for child in ast.iter_child_nodes(node):
                visit(child, held)

        for stmt in func.body:
            visit(stmt, ())

    for node in ast.walk(info.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            klass = enclosing_class(node)
            visit_function(node, klass.name if klass else None)
    return facts


@register
class LockOrderCycle(Rule):
    """The global lock-acquisition graph must be acyclic."""

    id = "REPRO-ORDER01"
    summary = (
        "cycle in the static lock-acquisition graph (lock B taken "
        "while holding A on one path, A while holding B on another); "
        "two threads interleaving those paths deadlock"
    )
    scope = "project"

    def check_project(
        self, modules: list[ModuleInfo]
    ) -> Iterator[Finding]:
        index = _LockIndex()
        for info in modules:
            _collect_lock_defs(info, index)
        facts: dict[tuple[str, str | None, str], _FunctionFacts] = {}
        for info in modules:
            for record in _collect_function_facts(info, index):
                facts[record.key] = record

        # Transitive lock closure per function, by fixpoint.
        closure: dict[tuple[str, str | None, str], set[str]] = {
            key: {a.lock for a in record.acquisitions}
            for key, record in facts.items()
        }
        changed = True
        while changed:
            changed = False
            for key, record in facts.items():
                acc = closure[key]
                before = len(acc)
                for call in record.calls:
                    for callee in call.callee_keys:
                        if callee in closure:
                            acc |= closure[callee]
                            break
                if len(acc) != before:
                    changed = True

        # Edge set with one witness per (A, B) pair.
        edges: dict[tuple[str, str], tuple[str, int]] = {}

        def add_edge(a: str, b: str, path: str, line: int) -> None:
            if a != b:  # reentrancy: self-edges are fine
                edges.setdefault((a, b), (path, line))

        for record in facts.values():
            for acq in record.acquisitions:
                for held in acq.held:
                    add_edge(held, acq.lock, acq.path, acq.line)
            for call in record.calls:
                if not call.held:
                    continue
                acquired: set[str] = set()
                for callee in call.callee_keys:
                    if callee in closure:
                        acquired = closure[callee]
                        break
                for lock in acquired:
                    for held in call.held:
                        add_edge(held, lock, call.path, call.line)

        adjacency: dict[str, set[str]] = {}
        for (a, b) in edges:
            adjacency.setdefault(a, set()).add(b)
            adjacency.setdefault(b, set())
        for component in _sccs(adjacency):
            if len(component) < 2:
                continue
            members = set(component)
            cycle = " <-> ".join(sorted(component))
            for (a, b), (path, line) in sorted(edges.items()):
                if a in members and b in members:
                    yield Finding(
                        self.id,
                        path,
                        line,
                        0,
                        f"lock-order cycle [{cycle}]: {b} is acquired "
                        f"here while {a} is held, and the reverse "
                        "order exists on another path",
                    )


def _sccs(adjacency: dict[str, set[str]]) -> list[list[str]]:
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    out: list[list[str]] = []
    counter = 0

    for root in adjacency:
        if root in index:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work.pop()
            if child_index == 0:
                index[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = sorted(adjacency.get(node, ()))
            for position in range(child_index, len(children)):
                child = children[position]
                if child not in index:
                    work.append((node, position + 1))
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            if lowlink[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                out.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return out
