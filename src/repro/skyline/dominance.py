"""Dominance — the Pareto order at the heart of every skyline query.

A vector ``a`` *dominates* ``b`` (minimisation convention, as in the
paper) when ``a[i] <= b[i]`` for every dimension and ``a[i] < b[i]``
for at least one.  Skyline = the set of vectors dominated by nobody.

Two extra notions matter for the road-network algorithms:

* **Lower-bound dominance** (:func:`dominates_lower_bounds`): LBC keeps
  only *lower bounds* of a candidate's distances.  Because a lower
  bound never exceeds the true value, ``s <= lb`` pointwise implies
  ``s <= true`` pointwise; strictness must however be certified on a
  dimension where it provably carries over to the true value.
* **Region dominance**: R-tree pruning compares a skyline vector
  against the vector of per-query *minimum* distances to an MBR — a
  pointwise lower bound over everything inside the subtree, so the same
  :func:`dominates_lower_bounds` test applies.
"""

from __future__ import annotations

from typing import Iterable, Sequence

Vector = Sequence[float]


def dominates(a: Vector, b: Vector) -> bool:
    """True if ``a`` dominates ``b`` (<= everywhere, < somewhere)."""
    if len(a) != len(b):
        raise ValueError(f"dimension mismatch: {len(a)} vs {len(b)}")
    strictly_less = False
    for ai, bi in zip(a, b):
        if ai > bi:
            return False
        if ai < bi:
            strictly_less = True
    return strictly_less


def dominates_or_equal(a: Vector, b: Vector) -> bool:
    """True if ``a <= b`` in every dimension (ties allowed everywhere)."""
    if len(a) != len(b):
        raise ValueError(f"dimension mismatch: {len(a)} vs {len(b)}")
    return all(ai <= bi for ai, bi in zip(a, b))


def dominates_lower_bounds(vector: Vector, bounds: Vector) -> bool:
    """Sound dominance test against a vector of *lower bounds*.

    ``bounds[i]`` is a lower bound of some unknown true value ``t[i]``.
    Returns True only when ``vector`` is guaranteed to dominate ``t``:
    ``vector[i] <= bounds[i]`` everywhere (hence ``<= t[i]``), and
    ``vector[i] < bounds[i]`` somewhere (hence ``< t[i]`` there).

    When this returns False the candidate might still be dominated —
    the caller must tighten the bounds and retry (exactly LBC's
    expand-one-step loop).  Once every bound is exact the test
    coincides with :func:`dominates`, so the loop terminates with the
    correct verdict.
    """
    if len(vector) != len(bounds):
        raise ValueError(f"dimension mismatch: {len(vector)} vs {len(bounds)}")
    strict = False
    for vi, lbi in zip(vector, bounds):
        if vi > lbi:
            return False
        if vi < lbi:
            strict = True
    return strict


def is_dominated_by_any(vector: Vector, others: Iterable[Vector]) -> bool:
    """True if any vector in ``others`` dominates ``vector``."""
    return any(dominates(other, vector) for other in others)


def skyline_of(vectors: Sequence[Vector]) -> list[int]:
    """Indices of the skyline members of ``vectors`` (quadratic scan).

    The reference implementation every algorithm is tested against.
    Duplicate vectors are all reported (none dominates its twin).
    """
    result: list[int] = []
    for i, candidate in enumerate(vectors):
        dominated = False
        for j, other in enumerate(vectors):
            if i != j and dominates(other, candidate):
                dominated = True
                break
        if not dominated:
            result.append(i)
    return result


def dominance_count(vectors: Sequence[Vector], target: Vector) -> int:
    """How many vectors dominate ``target`` (diagnostics/tests)."""
    return sum(1 for v in vectors if dominates(v, target))
