"""``python -m repro.analysis`` — run the linter."""

import sys

from repro.analysis.cli import main

sys.exit(main())
