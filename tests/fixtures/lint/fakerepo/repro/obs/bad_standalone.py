"""Seeded foundation leak: obs importing a sibling package."""

from repro.network import graph  # EXPECT: REPRO-ARCH01,REPRO-ARCH03


def peek(network):
    return graph.node_count(network)
