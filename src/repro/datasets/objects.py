"""Workload object extraction.

Section 6.1: "The data object set D consists of the points extracted
uniformly from the edges ...  The size of D is a percentage of |E|, and
the ratio ω = |D|/|E| is called the object density."  Edges are chosen
uniformly at random (so a dense road area carries more objects, as in
the paper) and the offset along each chosen edge is uniform.

Static attributes (the hotel-price extension) are attached through
:class:`AttributeSpec` generators.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.network.graph import RoadNetwork
from repro.network.objects import ObjectSet, SpatialObject

OMEGA_LEVELS = (0.05, 0.20, 0.50, 1.00, 2.00)
"""The paper's five object densities: 5 %, 20 %, 50 %, 100 %, 200 %."""


@dataclass(frozen=True)
class AttributeSpec:
    """One static attribute: a name and a non-negative sampler."""

    name: str
    sampler: Callable[[random.Random], float]

    @classmethod
    def uniform(cls, name: str, low: float, high: float) -> "AttributeSpec":
        if low < 0 or high < low:
            raise ValueError(f"need 0 <= low <= high, got [{low}, {high}]")
        return cls(name=name, sampler=lambda rng: rng.uniform(low, high))


def extract_objects(
    network: RoadNetwork,
    omega: float,
    seed: int = 0,
    attributes: Sequence[AttributeSpec] = (),
) -> ObjectSet:
    """Extract ``round(omega * |E|)`` objects uniformly from the edges."""
    if omega <= 0:
        raise ValueError(f"object density must be positive, got {omega}")
    count = max(1, int(round(omega * network.edge_count)))
    return extract_n_objects(network, count, seed=seed, attributes=attributes)


def extract_n_objects(
    network: RoadNetwork,
    count: int,
    seed: int = 0,
    attributes: Sequence[AttributeSpec] = (),
) -> ObjectSet:
    """Extract an exact number of objects uniformly from the edges."""
    if count < 1:
        raise ValueError(f"need at least one object, got {count}")
    if network.edge_count == 0:
        raise ValueError("cannot place objects on a network without edges")
    rng = random.Random(seed)
    edge_ids = sorted(network.edge_ids())
    objects = []
    for object_id in range(count):
        edge = network.edge(rng.choice(edge_ids))
        # Strictly interior offsets keep the location on the edge (an
        # offset of exactly 0 or length degrades to a node location,
        # which is also supported but not what "extracted from edges"
        # means).
        offset = edge.length * rng.uniform(0.001, 0.999)
        location = network.location_on_edge(edge.edge_id, offset)
        attr_values = tuple(spec.sampler(rng) for spec in attributes)
        objects.append(
            SpatialObject(
                object_id=object_id, location=location, attributes=attr_values
            )
        )
    return ObjectSet.build(network, objects)
