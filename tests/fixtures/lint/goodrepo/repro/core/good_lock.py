"""Lock discipline done right."""


class GoodWorkspace:
    def add_object(self, obj):
        with self.mutating():
            self.objects.add(obj)
            self.object_rtree.insert_point(obj.object_id, obj.point)

    def mutating(self):
        raise NotImplementedError


def careful(lock):
    lock.acquire()
    try:
        return 42
    finally:
        lock.release()


def idiomatic(lock):
    with lock:
        return 42
