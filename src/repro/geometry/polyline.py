"""Polylines: multi-segment road edge geometry.

The paper notes that a road edge "can be a straight line or a polyline".
The network model stores an optional polyline per edge; its arc length is
the edge weight, and object offsets along the edge are resolved to planar
coordinates by walking the polyline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry.mbr import MBR
from repro.geometry.point import Point
from repro.geometry.segment import Segment


@dataclass(frozen=True)
class Polyline:
    """An immutable chain of two or more vertices."""

    vertices: tuple[Point, ...]
    _cumulative: tuple[float, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(self.vertices) < 2:
            raise ValueError("a polyline needs at least two vertices")
        cumulative = [0.0]
        for i in range(len(self.vertices) - 1):
            step = self.vertices[i].distance_to(self.vertices[i + 1])
            cumulative.append(cumulative[-1] + step)
        object.__setattr__(self, "_cumulative", tuple(cumulative))

    @classmethod
    def straight(cls, a: Point, b: Point) -> "Polyline":
        """The degenerate two-vertex polyline from ``a`` to ``b``."""
        return cls((a, b))

    @property
    def start(self) -> Point:
        return self.vertices[0]

    @property
    def end(self) -> Point:
        return self.vertices[-1]

    @property
    def length(self) -> float:
        """Total arc length."""
        return self._cumulative[-1]

    def segments(self) -> tuple[Segment, ...]:
        """The chain as individual segments."""
        return tuple(
            Segment(self.vertices[i], self.vertices[i + 1])
            for i in range(len(self.vertices) - 1)
        )

    def point_at(self, offset: float) -> Point:
        """The point at arc length ``offset`` from the start (clamped)."""
        if offset <= 0.0:
            return self.start
        if offset >= self.length:
            return self.end
        # Binary search over the cumulative arc-length table.
        lo, hi = 0, len(self._cumulative) - 1
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            if self._cumulative[mid] <= offset:
                lo = mid
            else:
                hi = mid
        seg = Segment(self.vertices[lo], self.vertices[lo + 1])
        return seg.point_at(offset - self._cumulative[lo])

    def project(self, p: Point) -> tuple[float, Point]:
        """Closest point on the polyline to ``p``.

        Returns ``(offset, closest)`` with ``offset`` measured from the
        start vertex along the arc.
        """
        best_offset = 0.0
        best_point = self.start
        best_dist = p.distance_to(self.start)
        for i in range(len(self.vertices) - 1):
            seg = Segment(self.vertices[i], self.vertices[i + 1])
            seg_offset, closest = seg.project(p)
            d = p.distance_to(closest)
            if d < best_dist:
                best_dist = d
                best_point = closest
                best_offset = self._cumulative[i] + seg_offset
        return (best_offset, best_point)

    def mbr(self) -> MBR:
        """Tightest axis-aligned bounding rectangle of the vertices."""
        return MBR.from_points(self.vertices)

    def reversed(self) -> "Polyline":
        """The polyline traversed from end to start."""
        return Polyline(tuple(reversed(self.vertices)))
