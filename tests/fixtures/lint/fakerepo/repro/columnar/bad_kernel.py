"""Seeded REPRO-PERF01 violations: per-row allocation in kernel loops."""


class RowHandle:
    def __init__(self, index):
        self.index = index


def bad_tuple_rows(data, count, width):
    out = []
    for i in range(count):
        row = tuple(data[i * width : (i + 1) * width])  # EXPECT: REPRO-PERF01
        out.append(row)
    return out


def bad_list_literal(xs, ys, count):
    pairs = []
    i = 0
    while i < count:
        pairs.append([xs[i], ys[i]])  # EXPECT: REPRO-PERF01
        i += 1
    return pairs


def bad_instantiation(count):
    handles = []
    for i in range(count):
        handles.append(RowHandle(i))  # EXPECT: REPRO-PERF01
    return handles


def bad_comprehension(blocks):
    totals = []
    for block in blocks:
        totals.append(sum(x * x for x in block))  # EXPECT: REPRO-PERF01
    return totals
