"""Landmark (ALT) lower bounds for road-network distances.

Goldberg & Harrelson's A*-with-landmarks idea, offered here as the
natural strengthening of the paper's path-distance lower bounds: pick a
few *landmark* junctions, precompute every junction's distance to each,
and bound any distance through the triangle inequality::

    dN(x, t)  >=  | dN(l, x) - dN(l, t) |        for every landmark l

The bound is consistent (``h(x) <= w(x,y) + h(y)``), so it plugs
straight into :class:`~repro.network.astar.AStarExpander` — and because
it is often far tighter than the Euclidean distance on high-detour
(large δ) networks, LBC's dominance tests fire earlier: exactly the
regime where the paper reports EDC and LBC losing efficiency.

The paper's Theorem 1 scopes instance optimality to algorithms using
*no pre-computed distance information*; a landmark table is
pre-computation, so LBC-with-landmarks trades the theorem's scope for
measured speed.  The precomputation is ``count`` full Dijkstra runs and
``O(count · |V|)`` memory.

For an on-edge target ``t`` on ``(u, v)`` at offsets ``(a, b)``, every
path enters via an endpoint, so
``dN(x, t) >= min(h(x, u) + a, h(x, v) + b)`` — also consistent (the
minimum of consistent functions shifted by constants is consistent).
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.network.dijkstra import DijkstraExpander
from repro.network.graph import NetworkLocation, RoadNetwork


class LandmarkHeuristic:
    """Precomputed landmark distance tables with an ALT bound.

    Instances are callables matching
    :data:`repro.network.astar.HeuristicFn`.
    """

    def __init__(
        self,
        network: RoadNetwork,
        count: int = 8,
        seed: int = 0,
        strategy: str = "farthest",
    ) -> None:
        if count < 1:
            raise ValueError(f"need at least one landmark, got {count}")
        if strategy not in ("farthest", "random"):
            raise ValueError(f"unknown landmark strategy {strategy!r}")
        self.network = network
        node_ids = sorted(network.node_ids())
        if not node_ids:
            raise ValueError("cannot place landmarks on an empty network")
        count = min(count, len(node_ids))
        rng = random.Random(seed)

        self.landmarks: list[int] = []
        self._tables: list[dict[int, float]] = []

        first = rng.choice(node_ids)
        self._add_landmark(first)
        while len(self.landmarks) < count:
            if strategy == "random":
                remaining = [n for n in node_ids if n not in set(self.landmarks)]
                if not remaining:
                    break
                self._add_landmark(rng.choice(remaining))
            else:
                candidate = self._farthest_node(node_ids)
                if candidate is None:
                    break
                self._add_landmark(candidate)

    def _add_landmark(self, node_id: int) -> None:
        expander = DijkstraExpander(
            self.network, self.network.location_at_node(node_id)
        )
        while expander.expand_next() is not None:
            pass
        self.landmarks.append(node_id)
        self._tables.append(dict(expander.settled))

    def _farthest_node(self, node_ids: Sequence[int]) -> int | None:
        """The junction maximising its minimum distance to the chosen
        landmarks (classic farthest-point sampling; good spread)."""
        best_node = None
        best_score = -1.0
        chosen = set(self.landmarks)
        for node_id in node_ids:
            if node_id in chosen:
                continue
            score = min(
                table.get(node_id, float("inf")) for table in self._tables
            )
            if score == float("inf"):
                # Other component: adopting it extends coverage most.
                return node_id
            if score > best_score:
                best_score = score
                best_node = node_id
        return best_node

    # ------------------------------------------------------------------
    # Bounds
    # ------------------------------------------------------------------
    def node_to_node(self, x: int, t: int) -> float:
        """ALT lower bound between two junctions."""
        best = 0.0
        for table in self._tables:
            dx = table.get(x)
            dt = table.get(t)
            if dx is None or dt is None:
                # Landmark sees only one of the two: in the same
                # component the bound contributes nothing safe beyond 0.
                continue
            gap = dx - dt
            if gap < 0.0:
                gap = -gap
            if gap > best:
                best = gap
        return best

    def __call__(self, node_id: int, target: NetworkLocation) -> float:
        """HeuristicFn: lower bound from a junction to any location."""
        if target.node_id is not None:
            return self.node_to_node(node_id, target.node_id)
        edge = self.network.edge(target.edge_id)
        via_u = self.node_to_node(node_id, edge.u) + target.offset
        via_v = self.node_to_node(node_id, edge.v) + (
            edge.length - target.offset
        )
        return min(via_u, via_v)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def tightness_sample(
        self, pairs: int = 100, seed: int = 0
    ) -> tuple[float, float]:
        """Mean (euclidean/true, landmark/true) bound quality on samples.

        Values in (0, 1]; closer to 1 is tighter.  Used by tests to
        assert the landmark bound beats Euclidean on detour-heavy
        networks.
        """
        rng = random.Random(seed)
        node_ids = sorted(self.network.node_ids())
        euclid_total = landmark_total = 0.0
        counted = 0
        attempts = 0
        while counted < pairs and attempts < pairs * 4:
            attempts += 1
            a, b = rng.sample(node_ids, 2)
            expander = DijkstraExpander(
                self.network, self.network.location_at_node(a)
            )
            true = expander.distance_to_node(b)
            if not (0.0 < true < float("inf")):
                continue
            euclid = self.network.node_point(a).distance_to(
                self.network.node_point(b)
            )
            euclid_total += euclid / true
            landmark_total += self.node_to_node(a, b) / true
            counted += 1
        if counted == 0:
            return (1.0, 1.0)
        return (euclid_total / counted, landmark_total / counted)
