"""Tests for the command-line interface."""

import xml.etree.ElementTree as ET

import pytest

from repro.cli import ALGORITHMS, build_parser, main


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    base = tmp_path_factory.mktemp("cli")
    net = base / "net.net"
    obj = base / "obj.obj"
    code = main(
        [
            "generate",
            "--nodes", "200",
            "--seed", "3",
            "--out", str(net),
            "--objects", str(obj),
            "--omega", "0.4",
        ]
    )
    assert code == 0
    return net, obj


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_algorithms_exposed(self):
        assert set(ALGORITHMS) == {
            "CE", "EDC", "EDC-inc", "LBC", "LBC-lazy", "LBC-rr", "naive",
        }


class TestGenerate:
    def test_generate_preset(self, tmp_path, capsys):
        out = tmp_path / "ca.net"
        code = main(
            ["generate", "--preset", "CA", "--scale", "0.05", "--out", str(out)]
        )
        assert code == 0
        assert out.exists()
        assert "junctions" in capsys.readouterr().out

    def test_generate_without_source_fails(self, tmp_path, capsys):
        code = main(["generate", "--out", str(tmp_path / "x.net")])
        assert code == 2
        assert "preset or --nodes" in capsys.readouterr().err

    def test_generated_files_load(self, dataset):
        from repro.datasets import load_network, load_objects

        net_path, obj_path = dataset
        network = load_network(net_path)
        objects = load_objects(network, obj_path)
        assert network.node_count == 200
        assert len(objects) == round(0.4 * network.edge_count)


class TestInfo:
    def test_info_output(self, dataset, capsys):
        net_path, _ = dataset
        assert main(["info", str(net_path)]) == 0
        out = capsys.readouterr().out
        assert "junctions:      200" in out
        assert "connected:" in out

    def test_info_with_delta(self, dataset, capsys):
        net_path, _ = dataset
        assert main(["info", str(net_path), "--delta"]) == 0
        assert "delta" in capsys.readouterr().out


class TestQuery:
    def test_query_with_random_queries(self, dataset, capsys):
        net_path, obj_path = dataset
        code = main(
            [
                "query", str(net_path), str(obj_path),
                "--random-queries", "3", "--seed", "9", "--stats",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "skyline points (LBC)" in out
        assert "candidates=" in out

    def test_query_with_explicit_nodes(self, dataset, capsys):
        net_path, obj_path = dataset
        code = main(
            [
                "query", str(net_path), str(obj_path),
                "--query-nodes", "1", "17", "--algorithm", "CE",
            ]
        )
        assert code == 0
        assert "(CE)" in capsys.readouterr().out

    def test_query_unknown_node_fails(self, dataset, capsys):
        net_path, obj_path = dataset
        code = main(
            ["query", str(net_path), str(obj_path), "--query-nodes", "99999"]
        )
        assert code == 2
        assert "unknown junction" in capsys.readouterr().err

    def test_all_algorithms_agree_via_cli(self, dataset, capsys):
        net_path, obj_path = dataset
        answers = {}
        for name in ("CE", "EDC", "LBC", "naive"):
            main(
                [
                    "query", str(net_path), str(obj_path),
                    "--query-nodes", "5", "40", "90",
                    "--algorithm", name,
                ]
            )
            out = capsys.readouterr().out
            ids = sorted(
                int(line.split()[0])
                for line in out.splitlines()
                if line.strip() and line.split()[0].isdigit()
            )
            answers[name] = ids
        assert len({tuple(v) for v in answers.values()}) == 1

    def test_query_writes_svg(self, dataset, tmp_path, capsys):
        net_path, obj_path = dataset
        svg = tmp_path / "q.svg"
        code = main(
            [
                "query", str(net_path), str(obj_path),
                "--random-queries", "2", "--svg", str(svg),
            ]
        )
        assert code == 0
        ET.fromstring(svg.read_text())


class TestRoute:
    def test_route_between_junctions(self, dataset, capsys):
        net_path, _ = dataset
        assert main(["route", str(net_path), "0", "50"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("0 ")
        assert "distance:" in out

    def test_route_unknown_node(self, dataset, capsys):
        net_path, _ = dataset
        assert main(["route", str(net_path), "0", "99999"]) == 2


def _write_trace_file(directory, name="trace-0001.json"):
    import json

    from repro.obs import tracing

    with tracing.span("request.cli-test") as root:
        with tracing.span("query.lbc") as child:
            child.record("nodes_settled", 4.0)
    path = directory / name
    path.write_text(json.dumps(root.to_dict()))
    return path


def _write_flight_record(directory):
    from repro.obs import FlightRecorder, tracing

    recorder = FlightRecorder(dump_dir=str(directory))
    with tracing.span("request.cli-test") as root:
        root.record("nodes_settled", 2.0)
    recorder.record(root, outcome="completed", latency_s=0.01)
    path = recorder.dump("manual", force=True)
    assert path is not None
    return path


class TestTraceLast:
    def test_renders_newest_trace_export(self, tmp_path, capsys):
        _write_trace_file(tmp_path)
        code = main(["trace", "--last", "--trace-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "trace-0001.json:" in out
        assert "request.cli-test" in out
        assert "query.lbc" in out

    def test_prefers_the_most_recent_file(self, tmp_path, capsys):
        import os

        old = _write_trace_file(tmp_path, "trace-old.json")
        os.utime(old, (1, 1))
        _write_flight_record(tmp_path)
        code = main(["trace", "--last", "--trace-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "flightrecord-" in out
        assert "recent completed traces" in out

    def test_last_without_trace_dir_is_an_error(self, capsys):
        assert main(["trace", "--last"]) == 2
        assert "--trace-dir" in capsys.readouterr().err

    def test_empty_trace_dir_is_an_error(self, tmp_path, capsys):
        assert main(["trace", "--last", "--trace-dir", str(tmp_path)]) == 2
        assert "no trace-" in capsys.readouterr().err

    def test_trace_without_inputs_or_last_is_an_error(self, capsys):
        assert main(["trace"]) == 2
        assert "unless --last" in capsys.readouterr().err


class TestBlackbox:
    def test_renders_a_dump_by_path(self, tmp_path, capsys):
        path = _write_flight_record(tmp_path)
        code = main(["blackbox", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "flight record" in out
        assert "request.cli-test" in out
        assert "thread stacks" in out

    def test_dir_mode_picks_latest_and_no_threads(self, tmp_path, capsys):
        _write_flight_record(tmp_path)
        code = main(["blackbox", "--dir", str(tmp_path), "--no-threads"])
        assert code == 0
        out = capsys.readouterr().out
        assert "request.cli-test" in out
        assert "thread stacks" not in out

    def test_without_path_or_dir_is_an_error(self, capsys):
        assert main(["blackbox"]) == 2
        assert "--dir" in capsys.readouterr().err

    def test_empty_dir_is_an_error(self, tmp_path, capsys):
        assert main(["blackbox", "--dir", str(tmp_path)]) == 2
        assert "no flightrecord-" in capsys.readouterr().err

    def test_non_flight_record_json_is_an_error(self, tmp_path, capsys):
        trace = _write_trace_file(tmp_path)
        assert main(["blackbox", str(trace)]) == 2
        assert "error:" in capsys.readouterr().err


class TestJSONOutput:
    def test_query_writes_json(self, dataset, tmp_path, capsys):
        import json

        net_path, obj_path = dataset
        out = tmp_path / "result.json"
        code = main(
            [
                "query", str(net_path), str(obj_path),
                "--query-nodes", "5", "40",
                "--json", str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["algorithm"] == "LBC"
        assert len(payload["query_points"]) == 2
        assert payload["skyline"]
        for point in payload["skyline"]:
            assert len(point["vector"]) == 2
        assert payload["stats"]["|Q|"] == 2
