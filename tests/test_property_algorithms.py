"""Hypothesis-driven equivalence of all algorithms against the oracle.

Random networks (including disconnected ones), random on-edge objects
with optional static attributes, random node/edge query points — every
algorithm must return exactly the naive baseline's skyline, points and
vectors alike.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CE, EDC, EDCIncremental, LBC, LBCLazy, NaiveSkyline, Workspace
from repro.geometry import Point
from repro.network import ObjectSet, RoadNetwork, SpatialObject


@st.composite
def workloads(draw):
    seed = draw(st.integers(min_value=0, max_value=10**6))
    rng = random.Random(seed)
    disconnected = draw(st.booleans())
    attribute_count = draw(st.integers(min_value=0, max_value=2))
    query_count = draw(st.integers(min_value=1, max_value=4))
    object_count = draw(st.integers(min_value=1, max_value=25))

    network = RoadNetwork()

    def add_component(base, count, ox, oy):
        pts = [
            Point(ox + rng.random() * 0.4, oy + rng.random() * 0.4)
            for _ in range(count)
        ]
        for i, p in enumerate(pts):
            network.add_node(base + i, p)
        order = list(range(count))
        rng.shuffle(order)
        for a, b in zip(order, order[1:]):
            chord = pts[a].distance_to(pts[b])
            network.add_edge(
                base + a, base + b, length=max(chord, 1e-9) * (1 + rng.random())
            )
        for _ in range(count // 2):
            a, b = rng.sample(range(count), 2)
            chord = pts[a].distance_to(pts[b])
            network.add_edge(
                base + a, base + b, length=max(chord, 1e-9) * (1 + rng.random())
            )

    n1 = rng.randrange(8, 20)
    add_component(0, n1, 0.0, 0.0)
    total_nodes = n1
    if disconnected:
        n2 = rng.randrange(5, 15)
        add_component(n1, n2, 0.55, 0.55)
        total_nodes += n2

    edge_ids = sorted(network.edge_ids())
    objects = []
    for i in range(object_count):
        edge = network.edge(rng.choice(edge_ids))
        offset = edge.length * rng.uniform(0.05, 0.95)
        attributes = tuple(rng.random() for _ in range(attribute_count))
        objects.append(
            SpatialObject(i, network.location_on_edge(edge.edge_id, offset), attributes)
        )
    object_set = ObjectSet.build(network, objects)

    queries = []
    for _ in range(query_count):
        if rng.random() < 0.5:
            queries.append(network.location_at_node(rng.randrange(total_nodes)))
        else:
            edge = network.edge(rng.choice(edge_ids))
            queries.append(
                network.location_on_edge(
                    edge.edge_id, edge.length * rng.uniform(0.1, 0.9)
                )
            )
    return network, object_set, queries


@settings(max_examples=25, deadline=None)
@given(workloads())
def test_all_algorithms_match_oracle(workload):
    network, object_set, queries = workload
    workspace = Workspace.build(network, object_set, paged=False)
    reference = NaiveSkyline().run(workspace, queries)
    for algorithm in (CE(), EDC(), EDCIncremental(), LBC(), LBCLazy()):
        result = algorithm.run(workspace, queries)
        assert result.same_answer(reference), (
            f"{algorithm.name}: {result.object_ids()} != {reference.object_ids()}"
        )


@settings(max_examples=10, deadline=None)
@given(workloads())
def test_lbc_source_choice_irrelevant_to_answer(workload):
    network, object_set, queries = workload
    workspace = Workspace.build(network, object_set, paged=False)
    results = [
        LBC(source_index=i).run(workspace, queries) for i in range(len(queries))
    ]
    for other in results[1:]:
        assert other.same_answer(results[0])


@settings(max_examples=10, deadline=None)
@given(workloads())
def test_skyline_never_empty(workload):
    network, object_set, queries = workload
    workspace = Workspace.build(network, object_set, paged=False)
    assert len(NaiveSkyline().run(workspace, queries)) >= 1
