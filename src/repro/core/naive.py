"""The exhaustive baseline: full distance matrix, then BNL.

Not one of the paper's algorithms — it is the correctness oracle every
property test compares against, and the cost straw man: one complete
Dijkstra traversal per query point, touching the entire reachable
network regardless of where the skyline lies.
"""

from __future__ import annotations

import math

from repro.core.base import SkylineAlgorithm, _ResponseTimer
from repro.core.query import Workspace
from repro.core.result import SkylinePoint
from repro.core.stats import QueryStats
from repro.network.dijkstra import DijkstraExpander
from repro.network.graph import NetworkLocation
from repro.skyline.bnl import bnl_skyline


class NaiveSkyline(SkylineAlgorithm):
    """Compute every network distance, then scan for the skyline."""

    name = "naive"

    def _execute(
        self,
        workspace: Workspace,
        queries: list[NetworkLocation],
        stats: QueryStats,
        timer: _ResponseTimer,
    ) -> list[SkylinePoint]:
        network = workspace.network
        objects = list(workspace.objects)
        stats.candidate_count = len(objects)

        vectors: list[list[float]] = [[] for _ in objects]
        for query in queries:
            expander = DijkstraExpander(network, query, store=workspace.store)
            # One full traversal answers every object's distance.
            while expander.expand_next() is not None:
                pass
            stats.nodes_settled += expander.nodes_settled
            for row, obj in zip(vectors, objects):
                row.append(self._object_distance(network, expander, obj))
                stats.distance_computations += 1

        full_vectors = [
            tuple(row) + obj.attributes for row, obj in zip(vectors, objects)
        ]
        winners = bnl_skyline(full_vectors)
        points = [
            SkylinePoint(obj=objects[i], vector=full_vectors[i]) for i in winners
        ]
        if points:
            timer.mark_first_result()
        return points

    @staticmethod
    def _object_distance(network, expander: DijkstraExpander, obj) -> float:
        """Distance to an object from a fully-expanded wavefront."""
        loc = obj.location
        if loc.node_id is not None:
            return expander.settled.get(loc.node_id, math.inf)
        assert loc.edge_id is not None
        edge = network.edge(loc.edge_id)
        best = math.inf
        settled_u = expander.settled.get(edge.u)
        if settled_u is not None:
            best = settled_u + loc.offset
        settled_v = expander.settled.get(edge.v)
        if settled_v is not None:
            best = min(best, settled_v + (edge.length - loc.offset))
        direct = network.direct_edge_distance(expander.source, loc)
        if direct is not None:
            best = min(best, direct)
        return best
