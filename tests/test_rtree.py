"""Unit and property tests for the R-tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import MBR, Point
from repro.index import RTree
from repro.storage import NodePager

coordinate = st.floats(min_value=0, max_value=100, allow_nan=False)
point_strategy = st.builds(Point, coordinate, coordinate)


def build_tree(points, max_entries=6, bulk=False, pager=None):
    entries = [(MBR.from_point(p), i) for i, p in enumerate(points)]
    if bulk:
        return RTree.bulk_load(entries, max_entries=max_entries, pager=pager)
    tree = RTree(max_entries=max_entries, pager=pager)
    for mbr, payload in entries:
        tree.insert(mbr, payload)
    return tree


class TestRTreeConstruction:
    def test_empty_tree(self):
        tree = RTree()
        assert len(tree) == 0
        assert tree.root_mbr is None
        assert list(tree.search(MBR(0, 0, 1, 1))) == []
        assert list(tree.nearest(Point(0, 0))) == []

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            RTree(max_entries=2)
        with pytest.raises(ValueError):
            RTree(max_entries=8, min_entries=1)
        with pytest.raises(ValueError):
            RTree(max_entries=8, min_entries=5)

    def test_insert_grows_and_validates(self):
        rng = random.Random(0)
        points = [Point(rng.random(), rng.random()) for _ in range(300)]
        tree = build_tree(points, max_entries=5)
        assert len(tree) == 300
        tree.validate()

    def test_bulk_load_validates(self):
        rng = random.Random(1)
        points = [Point(rng.random(), rng.random()) for _ in range(300)]
        tree = build_tree(points, max_entries=8, bulk=True)
        assert len(tree) == 300
        tree.validate()

    def test_bulk_load_empty(self):
        tree = RTree.bulk_load([])
        assert len(tree) == 0

    @pytest.mark.parametrize("count", [1, 2, 3, 5, 9, 17, 33, 100])
    def test_bulk_load_odd_sizes(self, count):
        rng = random.Random(count)
        points = [Point(rng.random(), rng.random()) for _ in range(count)]
        tree = build_tree(points, max_entries=8, bulk=True)
        tree.validate()
        assert len(list(tree.all_entries())) == count

    def test_root_mbr_covers_everything(self):
        points = [Point(0, 0), Point(5, 7), Point(-2, 3)]
        tree = build_tree(points)
        for p in points:
            assert tree.root_mbr.contains_point(p)


class TestWindowSearch:
    def test_matches_brute_force(self):
        rng = random.Random(2)
        points = [Point(rng.random() * 10, rng.random() * 10) for _ in range(400)]
        tree = build_tree(points, max_entries=6)
        window = MBR(2, 3, 6, 8)
        got = sorted(i for _, i in tree.search(window))
        expected = sorted(
            i for i, p in enumerate(points) if window.contains_point(p)
        )
        assert got == expected

    def test_boundary_points_included(self):
        tree = build_tree([Point(1, 1)])
        assert list(tree.search(MBR(1, 1, 2, 2))) != []

    def test_disjoint_window_empty(self):
        tree = build_tree([Point(1, 1), Point(2, 2)])
        assert list(tree.search(MBR(10, 10, 11, 11))) == []


class TestNearest:
    def test_streams_in_distance_order(self):
        rng = random.Random(3)
        points = [Point(rng.random(), rng.random()) for _ in range(250)]
        tree = build_tree(points, max_entries=5)
        q = Point(0.4, 0.6)
        got = [payload for _, _, payload in tree.nearest(q)]
        expected = sorted(range(len(points)), key=lambda i: points[i].distance_to(q))
        assert got == expected

    def test_incremental_consumption(self):
        points = [Point(i, 0) for i in range(10)]
        tree = build_tree(points)
        stream = tree.nearest(Point(0, 0))
        first = next(stream)
        assert first[2] == 0
        second = next(stream)
        assert second[2] == 1

    def test_prune_skips_subtrees(self):
        points = [Point(i * 0.1, 0) for i in range(50)]
        tree = build_tree(points, max_entries=4)
        q = Point(0, 0)
        kept = [
            payload
            for _, _, payload in tree.nearest(
                q, prune=lambda mbr, payload: mbr.mindist(q) > 1.0
            )
        ]
        assert kept == list(range(11))  # points at 0.0 .. 1.0


class TestAggregateNearest:
    def test_orders_by_sum_of_distances(self):
        rng = random.Random(4)
        points = [Point(rng.random(), rng.random()) for _ in range(150)]
        queries = [Point(0.2, 0.2), Point(0.8, 0.7)]
        tree = build_tree(points, max_entries=6)
        got = [payload for _, _, payload in tree.aggregate_nearest(queries)]
        expected = sorted(
            range(len(points)),
            key=lambda i: sum(points[i].distance_to(q) for q in queries),
        )
        assert got == expected

    def test_single_query_matches_nearest(self):
        rng = random.Random(5)
        points = [Point(rng.random(), rng.random()) for _ in range(80)]
        tree = build_tree(points)
        q = Point(0.5, 0.5)
        via_aggregate = [p for _, _, p in tree.aggregate_nearest([q])]
        via_nearest = [p for _, _, p in tree.nearest(q)]
        assert via_aggregate == via_nearest


class TestTraverse:
    def test_traverse_with_permissive_predicate_sees_all(self):
        points = [Point(i, i) for i in range(40)]
        tree = build_tree(points, max_entries=4)
        got = sorted(p for _, p in tree.traverse(lambda mbr, payload: True))
        assert got == list(range(40))

    def test_traverse_prunes_internal_entries(self):
        points = [Point(i, 0) for i in range(40)]
        tree = build_tree(points, max_entries=4)
        region = MBR(0, 0, 5, 0)
        got = sorted(
            p
            for _, p in tree.traverse(
                lambda mbr, payload: mbr.intersects(region)
            )
        )
        assert got == list(range(6))


class TestPagedRTree:
    def test_traversals_charge_pages(self):
        rng = random.Random(6)
        points = [Point(rng.random(), rng.random()) for _ in range(500)]
        pager = NodePager()
        tree = build_tree(points, max_entries=8, bulk=True, pager=pager)
        pager.pool.reset_stats()
        list(tree.search(MBR(0.4, 0.4, 0.6, 0.6)))
        assert pager.stats.logical_reads > 0

    def test_window_search_cheaper_than_full_scan(self):
        rng = random.Random(7)
        points = [Point(rng.random(), rng.random()) for _ in range(800)]
        pager = NodePager()
        tree = build_tree(points, max_entries=8, bulk=True, pager=pager)
        pager.pool.reset_stats()
        list(tree.search(MBR(0.45, 0.45, 0.55, 0.55)))
        window_cost = pager.stats.logical_reads
        pager.pool.reset_stats()
        list(tree.all_entries())
        scan_cost = pager.stats.logical_reads
        assert window_cost < scan_cost


class TestRTreeProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(point_strategy, min_size=0, max_size=120),
        st.booleans(),
    )
    def test_structure_and_full_scan(self, points, bulk):
        if bulk and not points:
            return
        tree = build_tree(points, max_entries=5, bulk=bulk)
        tree.validate()
        assert sorted(p for _, p in tree.all_entries()) == list(range(len(points)))

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(point_strategy, min_size=1, max_size=80),
        point_strategy,
    )
    def test_nearest_matches_brute_force(self, points, q):
        tree = build_tree(points, max_entries=5)
        got = [(round(d, 9), p) for d, _, p in tree.nearest(q)]
        expected = sorted(
            (round(points[i].distance_to(q), 9), i) for i in range(len(points))
        )
        assert [g[0] for g in got] == [e[0] for e in expected]
