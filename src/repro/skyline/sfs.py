"""Sort-Filter-Skyline (Chomicki, Godfrey, Gryz, Liang; ICDE 2003).

SFS improves BNL by pre-sorting tuples with a monotone preference
function (here: the sum of the vector's components, any monotone score
works).  After sorting, a tuple can only be dominated by tuples *before*
it, so one pass comparing against the confirmed skyline suffices and
results stream progressively in score order.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from repro.skyline.dominance import Vector, dominates


def sfs_skyline(
    vectors: Sequence[Vector],
    score: Callable[[Vector], float] | None = None,
) -> list[int]:
    """Indices of skyline members, computed with SFS.

    ``score`` must be strictly monotone in dominance: ``a`` dominating
    ``b`` implies ``score(a) < score(b)``.  The default — component sum
    — has that property.
    """
    return list(sfs_skyline_progressive(vectors, score))


def sfs_skyline_progressive(
    vectors: Sequence[Vector],
    score: Callable[[Vector], float] | None = None,
) -> Iterator[int]:
    """SFS as a generator, yielding indices in preference order."""
    if score is None:
        score = _component_sum
    order = sorted(range(len(vectors)), key=lambda i: (score(vectors[i]), i))
    skyline: list[int] = []
    for i in order:
        candidate = vectors[i]
        if not any(dominates(vectors[j], candidate) for j in skyline):
            skyline.append(i)
            yield i


def _component_sum(vector: Vector) -> float:
    return sum(vector)
