"""Declarative SLOs evaluated as multi-window burn rates.

An :class:`Objective` states a promise ("99% of queries finish within
250ms", "99.9% of queries succeed").  The :class:`SLOMonitor` samples
cumulative ``(good, total)`` pairs from caller-supplied sources — for
latency these come straight from a ``/metricsz`` histogram snapshot
via :func:`histogram_good_total` — and evaluates each objective with
the standard SRE *multi-window burn rate* test:

    burn = bad_fraction / error_budget,   error_budget = 1 - target

A burn of 1.0 spends the budget exactly at the end of the SLO period;
14.4 spends a 30-day budget in 2 days.  An objective is *violating*
when **both** a long window and its short companion exceed the
window's burn threshold — the long window gives significance, the
short one proves the problem is still happening (so alerts reset
quickly once a regression is fixed).

Everything is cumulative-counter arithmetic over an in-memory history,
so the monitor is cheap enough to observe every few seconds and is
fully deterministic under an injected clock, which is how the tests
drive it.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Any, Callable, NamedTuple

# (long window, short window, burn threshold) — the classic pairing of
# a significance window with a still-happening window.  Thresholds
# follow the SRE-workbook scaling for a 30-day budget: page fast when
# burning ~2 days' budget per hour, slower when burning ~5x budget.
DEFAULT_WINDOWS: tuple["BurnWindow", ...]


class BurnWindow(NamedTuple):
    """One (long, short) window pair with its burn-rate threshold."""

    long_s: float
    short_s: float
    max_burn: float


DEFAULT_WINDOWS = (
    BurnWindow(long_s=3600.0, short_s=300.0, max_burn=14.4),
    BurnWindow(long_s=21600.0, short_s=1800.0, max_burn=6.0),
)


class Objective:
    """One declarative service-level objective."""

    def __init__(
        self,
        name: str,
        *,
        target: float,
        threshold_s: float | None = None,
        description: str = "",
    ) -> None:
        if not 0.0 < target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {target}")
        self.name = name
        self.target = target
        self.threshold_s = threshold_s
        self.description = description

    @property
    def error_budget(self) -> float:
        return 1.0 - self.target

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "name": self.name,
            "target": self.target,
            "description": self.description,
        }
        if self.threshold_s is not None:
            payload["threshold_s"] = self.threshold_s
        return payload


class _Sample(NamedTuple):
    at: float
    good: float
    total: float


class _Tracked:
    __slots__ = ("objective", "source", "history")

    def __init__(
        self,
        objective: Objective,
        source: Callable[[], tuple[float, float]],
    ) -> None:
        self.objective = objective
        self.source = source
        self.history: list[_Sample] = []


def histogram_good_total(
    histogram, threshold_s: float
) -> tuple[float, float]:
    """``(good, total)`` from a cumulative latency histogram child.

    "Good" is the cumulative count of the smallest bucket whose bound
    is >= ``threshold_s`` — i.e. requests at or under the threshold,
    up to bucket granularity.  A threshold beyond the largest finite
    bucket counts everything as good (and is almost certainly a
    misconfiguration; pick a threshold on a bucket bound).
    """
    cumulative, _total_sum, count = histogram.snapshot()
    bounds = [*histogram.bounds, math.inf]
    for bound, cum in zip(bounds, cumulative):
        if bound >= threshold_s:
            return float(cum), float(count)
    return float(count), float(count)


class SLOMonitor:
    """Evaluates objectives as multi-window burn rates over samples.

    ``observe()`` appends one cumulative ``(good, total)`` sample per
    objective; ``report()`` takes a fresh sample implicitly and
    computes, for each window, the burn rate over that window's span
    of history.  History is trimmed to one sample older than the
    longest window, so memory is bounded by the observe cadence.
    """

    def __init__(
        self,
        *,
        windows: tuple[BurnWindow, ...] = DEFAULT_WINDOWS,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not windows:
            raise ValueError("at least one burn window is required")
        for window in windows:
            if window.short_s <= 0 or window.long_s < window.short_s:
                raise ValueError(f"malformed window {window}")
        self.windows = tuple(windows)
        self._clock = clock
        self._tracked: dict[str, _Tracked] = {}
        self._lock = threading.Lock()

    def add_objective(
        self,
        objective: Objective,
        source: Callable[[], tuple[float, float]],
    ) -> None:
        """Track ``objective`` against a cumulative ``(good, total)``
        source, sampling it once immediately as the baseline."""
        with self._lock:
            if objective.name in self._tracked:
                raise ValueError(f"objective {objective.name!r} already added")
            tracked = _Tracked(objective, source)
            self._tracked[objective.name] = tracked
        self._sample(tracked)

    def objectives(self) -> list[Objective]:
        with self._lock:
            return [t.objective for t in self._tracked.values()]

    def _sample(self, tracked: _Tracked) -> _Sample:
        good, total = tracked.source()
        sample = _Sample(self._clock(), float(good), float(total))
        horizon = max(w.long_s for w in self.windows)
        with self._lock:
            history = tracked.history
            history.append(sample)
            # Keep exactly one sample older than the horizon so every
            # window always has a baseline to difference against.
            cutoff = sample.at - horizon
            keep = 0
            while keep + 1 < len(history) and history[keep + 1].at <= cutoff:
                keep += 1
            del history[:keep]
        return sample

    def observe(self) -> None:
        """Sample every tracked objective's source once."""
        with self._lock:
            tracked = list(self._tracked.values())
        for entry in tracked:
            self._sample(entry)

    @staticmethod
    def _baseline(history: list[_Sample], since: float) -> _Sample:
        """Newest sample at or before ``since`` (else the oldest)."""
        chosen = history[0]
        for sample in history:
            if sample.at <= since:
                chosen = sample
            else:
                break
        return chosen

    def burn_rate(
        self, name: str, window_s: float, *, now: _Sample | None = None
    ) -> float:
        """Burn rate for one objective over the trailing ``window_s``.

        0.0 when no traffic arrived in the window (no data is not an
        outage; availability burn needs failures, not silence).
        """
        with self._lock:
            tracked = self._tracked[name]
            history = list(tracked.history)
        if now is None:
            now = self._sample(tracked)
            history.append(now)
        base = self._baseline(history, now.at - window_s)
        total = now.total - base.total
        good = now.good - base.good
        if total <= 0:
            return 0.0
        bad_fraction = max(0.0, (total - good) / total)
        return bad_fraction / tracked.objective.error_budget

    def report(self) -> dict[str, Any]:
        """Full evaluation of every objective (fresh samples taken)."""
        with self._lock:
            tracked = list(self._tracked.values())
        objectives: list[dict[str, Any]] = []
        for entry in tracked:
            now = self._sample(entry)
            with self._lock:
                history = list(entry.history)
            window_reports: list[dict[str, Any]] = []
            violating = False
            for window in self.windows:
                burns = {}
                for label, span in (
                    ("long", window.long_s),
                    ("short", window.short_s),
                ):
                    base = self._baseline(history, now.at - span)
                    total = now.total - base.total
                    good = now.good - base.good
                    if total <= 0:
                        burns[label] = 0.0
                        continue
                    bad = max(0.0, (total - good) / total)
                    burns[label] = bad / entry.objective.error_budget
                window_violating = (
                    burns["long"] >= window.max_burn
                    and burns["short"] >= window.max_burn
                )
                violating = violating or window_violating
                window_reports.append(
                    {
                        "long_s": window.long_s,
                        "short_s": window.short_s,
                        "max_burn": window.max_burn,
                        "long_burn": round(burns["long"], 4),
                        "short_burn": round(burns["short"], 4),
                        "violating": window_violating,
                    }
                )
            payload = entry.objective.to_dict()
            payload.update(
                {
                    "good": now.good,
                    "total": now.total,
                    "compliance": (
                        round(now.good / now.total, 6) if now.total else 1.0
                    ),
                    "windows": window_reports,
                    "violating": violating,
                }
            )
            objectives.append(payload)
        return {
            "objectives": objectives,
            "violating": any(o["violating"] for o in objectives),
        }
