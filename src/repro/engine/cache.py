"""Bounded LRU memo of settled network distances.

The :class:`DistanceMemo` is the engine's cross-query cache: every
``(source, target)`` pair whose exact distance has been settled once —
by any backend, on behalf of any algorithm — can be answered again
without touching the network store.  Distances are backend-independent
(every backend is exact), so the memo is keyed on locations only and a
fill from one backend serves them all.

The memo is deliberately dumb about invalidation: it only knows how to
drop everything.  The :class:`~repro.engine.engine.DistanceEngine`
decides *when* (object churn, edge-weight mutation), because only it
sees those events.

The memo is **thread-safe**: every structural operation (lookup with
its move-to-end, insert with its evictions, clear) runs under one
internal lock, so concurrent workers sharing an engine can never
corrupt the LRU order or lose counter updates.  Values are plain
floats, so the worst a racing pair of writers can do is insert the
same exact distance twice — which the lock prevents anyway.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.obs import tracing

DEFAULT_MEMO_CAPACITY = 65536

MemoKey = tuple


@dataclass
class MemoCounters:
    """Monotone counters; consumers snapshot and delta them per query."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0


class DistanceMemo:
    """A bounded least-recently-used map of distance-pair keys."""

    def __init__(self, capacity: int = DEFAULT_MEMO_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"memo capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[MemoKey, float] = OrderedDict()
        self._lock = threading.Lock()
        self.counters = MemoCounters()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: MemoKey) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: MemoKey) -> float | None:
        """The cached distance, refreshing recency; None on a miss."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.counters.misses += 1
                tracing.record("engine_misses")
                return None
            self._entries.move_to_end(key)
            self.counters.hits += 1
            tracing.record("engine_hits")
            return value

    def put(self, key: MemoKey, value: float) -> None:
        """Insert (or refresh) one settled distance, evicting LRU entries.

        Fills are not counted as hits or misses — only lookups are —
        so opportunistic recording (e.g. CE emissions) does not distort
        the hit ratio.
        """
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.counters.evictions += 1
                tracing.record("engine_evictions")

    def clear(self, count_invalidation: bool = True) -> None:
        """Drop every entry (a mutation made them unsafe)."""
        with self._lock:
            if self._entries and count_invalidation:
                self.counters.invalidations += 1
            self._entries.clear()
