"""Concurrency primitives shared across the layer stack.

One :class:`ReadWriteLock` per :class:`~repro.core.query.Workspace`
separates the two kinds of work the serving layer interleaves:

* **readers** — skyline query executions.  Any number may run at once;
  each holds the shared side for its whole execution, so a query only
  ever sees the dataset as it was when the query started ("snapshot
  isolation" at the granularity the library needs: a workspace is
  either entirely pre- or entirely post-mutation, never torn).
* **the writer** — object churn or edge-weight mutation.  Exclusive:
  it waits for in-flight queries to drain, applies the change, drives
  the engine's invalidation hooks exactly once, and bumps the
  workspace version.

The lock is **writer-preferring**: once a writer is waiting, new
readers queue behind it, so a steady query stream cannot starve
mutations (the failure mode of naive reader-preference).  The write
side is **reentrant** for the owning thread — compound mutations
(``move_object`` = remove + add) nest their own ``mutating()`` blocks —
and a thread holding the write lock may also take the read side (it
already has exclusivity).  Lock *upgrades* (read → write while still
holding the read side) are not supported and will deadlock; mutate
from outside any reading block.

This module deliberately imports nothing from the rest of the library
(stdlib ``threading`` only) and sits at the very bottom of the layer
DAG, so :class:`~repro.core.query.Workspace` and the serving layer can
share the lock without a dependency cycle.  It used to live at
``repro.service.snapshot``; :mod:`repro.service` still re-exports
:class:`ReadWriteLock` for compatibility.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager


class ReadWriteLock:
    """A writer-preferring, writer-reentrant readers-writer lock."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer: int | None = None  # owning thread ident
        self._writer_depth = 0
        self._writers_waiting = 0

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                # The exclusive holder may read its own snapshot.
                self._readers += 1
                return
            while self._writer is not None or self._writers_waiting > 0:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    @contextmanager
    def read_locked(self):
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------
    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                return
            self._writers_waiting += 1
            try:
                while self._writer is not None or self._readers > 0:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = me
            self._writer_depth = 1

    def release_write(self) -> None:
        with self._cond:
            if self._writer != threading.get_ident():
                raise RuntimeError("release_write by a non-owning thread")
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._cond.notify_all()

    @contextmanager
    def write_locked(self):
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()

    # ------------------------------------------------------------------
    # Introspection (tests, /statsz)
    # ------------------------------------------------------------------
    @property
    def caller_write_depth(self) -> int:
        """The calling thread's write-nesting depth (0 if not owner)."""
        with self._cond:
            if self._writer == threading.get_ident():
                return self._writer_depth
            return 0

    @property
    def active_readers(self) -> int:
        with self._cond:
            return self._readers

    @property
    def write_held(self) -> bool:
        with self._cond:
            return self._writer is not None
