"""Tests for the BNL and SFS Euclidean skyline baselines."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.skyline import (
    bnl_skyline,
    bnl_skyline_items,
    bnl_skyline_multipass,
    sfs_skyline,
    sfs_skyline_progressive,
    skyline_of,
)

dims = st.shared(st.integers(min_value=1, max_value=4), key="d")
values = st.floats(min_value=0, max_value=10, allow_nan=False)
vectors = dims.flatmap(lambda d: st.tuples(*([values] * d)))
vector_lists = st.lists(vectors, max_size=60)


class TestBNL:
    def test_empty(self):
        assert bnl_skyline([]) == []

    def test_single(self):
        assert bnl_skyline([(1, 2)]) == [0]

    def test_matches_reference(self):
        rng = random.Random(0)
        vs = [(rng.random(), rng.random()) for _ in range(100)]
        assert bnl_skyline(vs) == sorted(skyline_of(vs))

    def test_duplicates_survive(self):
        vs = [(1.0, 1.0), (1.0, 1.0), (0.5, 2.0), (2.0, 2.0)]
        assert bnl_skyline(vs) == [0, 1, 2]

    def test_items_wrapper(self):
        items = ["cheap-far", "pricey-near", "pricey-far"]
        table = {
            "cheap-far": (1.0, 9.0),
            "pricey-near": (9.0, 1.0),
            "pricey-far": (9.0, 9.0),
        }
        winners = bnl_skyline_items(items, key=lambda name: table[name])
        assert winners == ["cheap-far", "pricey-near"]


class TestMultipassBNL:
    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            bnl_skyline_multipass([(1, 2)], window_size=0)

    @pytest.mark.parametrize("window", [1, 2, 3, 7])
    def test_matches_single_pass(self, window):
        rng = random.Random(window)
        vs = [
            (rng.choice([rng.random(), float(rng.randrange(3))]),) * 2
            for _ in range(80)
        ]
        vs = [(a, rng.random()) for a, _ in vs]
        assert bnl_skyline_multipass(vs, window) == bnl_skyline(vs)

    @settings(max_examples=60, deadline=None)
    @given(vector_lists, st.integers(min_value=1, max_value=5))
    def test_property_matches_reference(self, vs, window):
        assert bnl_skyline_multipass(vs, window) == sorted(skyline_of(vs))


class TestSFS:
    def test_empty(self):
        assert sfs_skyline([]) == []

    def test_matches_reference(self):
        rng = random.Random(1)
        vs = [(rng.random(), rng.random(), rng.random()) for _ in range(120)]
        assert sorted(sfs_skyline(vs)) == sorted(skyline_of(vs))

    def test_progressive_yields_in_score_order(self):
        vs = [(3.0, 3.0), (1.0, 1.0), (0.5, 4.0)]
        order = list(sfs_skyline_progressive(vs))
        scores = [sum(vs[i]) for i in order]
        assert scores == sorted(scores)

    def test_custom_monotone_score(self):
        vs = [(1.0, 4.0), (2.0, 2.0), (4.0, 1.0)]
        got = sfs_skyline(vs, score=lambda v: max(v))
        assert sorted(got) == sorted(skyline_of(vs))

    @settings(max_examples=60, deadline=None)
    @given(vector_lists)
    def test_property_matches_reference(self, vs):
        assert sorted(sfs_skyline(vs)) == sorted(skyline_of(vs))

    @settings(max_examples=40, deadline=None)
    @given(vector_lists)
    def test_all_three_agree(self, vs):
        reference = sorted(skyline_of(vs))
        assert bnl_skyline(vs) == reference
        assert sorted(sfs_skyline(vs)) == reference
        assert bnl_skyline_multipass(vs, 3) == reference
