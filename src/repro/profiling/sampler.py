"""The sampling engine: frame capture, span attribution, aggregation.

``sys._current_frames()`` returns, for every live thread, the frame it
is executing *right now* — without cooperation from the sampled code.
The sampler thread polls it on a fixed interval and, for each sampled
thread, asks :func:`repro.obs.tracing.active_span_of_thread` which
tracing span that thread was inside.  The sample is then charged twice:

* to the span's *self* bucket (innermost span name), producing the
  per-phase flat profile;
* to a collapsed-stack key ``(span path..., frames...)``, producing
  flamegraph input where each Python stack hangs under the query phase
  that ran it.

Samples taken while a thread holds no active span (idle workers, pool
bookkeeping, the interpreter's own machinery) are counted but excluded
from the per-span tables, so attribution percentages are over the work
the tracing layer actually owns.

The sampler never touches the sampled threads: no signals, no settrace,
no allocation on their hot paths.  Its own cost is the poll loop, which
the overhead benchmark bounds at < 10 % for the default interval.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.obs import tracing

DEFAULT_INTERVAL_S = 0.002
"""Default sampling period (500 Hz) — fine enough to see phases of a
millisecond-scale query, coarse enough to stay well under the overhead
budget."""

UNATTRIBUTED = "(unattributed)"
"""Pseudo span name for samples taken outside any tracing span."""

_MAX_STACK = 64


def _frame_label(frame) -> str:
    """``<file stem>.<function>`` — compact, flamegraph-safe."""
    code = frame.f_code
    stem = os.path.basename(code.co_filename)
    if stem.endswith(".py"):
        stem = stem[:-3]
    return f"{stem}.{code.co_name}"


def _capture_stack(frame, limit: int = _MAX_STACK) -> tuple[str, ...]:
    """Frame labels from the outermost call down to the sampled leaf."""
    labels: list[str] = []
    while frame is not None and len(labels) < limit:
        labels.append(_frame_label(frame))
        frame = frame.f_back
    labels.reverse()
    return tuple(labels)


@dataclass
class ProfileReport:
    """Aggregated samples from one profiling session."""

    interval_s: float
    duration_s: float = 0.0
    total_samples: int = 0
    attributed_samples: int = 0
    self_samples: dict[str, int] = field(default_factory=dict)
    root_samples: dict[str, int] = field(default_factory=dict)
    collapsed: dict[tuple[str, ...], int] = field(default_factory=dict)

    @property
    def unattributed_samples(self) -> int:
        return self.total_samples - self.attributed_samples

    def self_seconds(self) -> dict[str, float]:
        """Estimated self time per innermost span (samples x interval)."""
        return {
            name: count * self.interval_s
            for name, count in self.self_samples.items()
        }

    def dominant_root(self) -> str | None:
        """The root span name that owned the most samples, if any."""
        if not self.root_samples:
            return None
        return max(self.root_samples.items(), key=lambda kv: (kv[1], kv[0]))[0]

    def collapsed_lines(self) -> list[str]:
        """``a;b;c count`` lines, heaviest stack first.

        The leading path components are span names (root span first),
        so the top frames of the rendered flamegraph are the tracing
        phases (``query.LBC``, ``lbc.resolve``, ...) and Python frames
        appear underneath the phase they ran in.
        """
        ordered = sorted(
            self.collapsed.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return [f"{';'.join(key)} {count}" for key, count in ordered]

    def write_collapsed(self, path: str) -> int:
        """Write the collapsed stacks to ``path``; returns line count."""
        lines = self.collapsed_lines()
        with open(path, "w") as handle:
            for line in lines:
                handle.write(line + "\n")
        return len(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "interval_s": self.interval_s,
            "duration_s": self.duration_s,
            "total_samples": self.total_samples,
            "attributed_samples": self.attributed_samples,
            "self_samples": dict(
                sorted(self.self_samples.items(), key=lambda kv: -kv[1])
            ),
            "root_samples": dict(
                sorted(self.root_samples.items(), key=lambda kv: -kv[1])
            ),
        }


class SamplingProfiler:
    """Background sampler; use as a context manager around a workload.

    ::

        profiler = SamplingProfiler(interval_s=0.002)
        with profiler:
            algorithm.run(workspace, queries)
        report = profiler.report
        report.write_collapsed("profile.collapsed")

    One profiler instance runs one session; create a new instance for a
    fresh report (keeping sessions immutable makes the determinism
    tests trivial).
    """

    def __init__(
        self,
        interval_s: float = DEFAULT_INTERVAL_S,
        max_stack: int = _MAX_STACK,
        keep_stacks: bool = True,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval must be positive, got {interval_s}")
        self.interval_s = interval_s
        self.max_stack = max_stack
        self.keep_stacks = keep_stacks
        self.report = ProfileReport(interval_s=interval_s)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._started_at = 0.0

    # -- lifecycle ----------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._loop, name="repro-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> ProfileReport:
        if self._thread is None:
            raise RuntimeError("profiler was never started")
        self._stop.set()
        self._thread.join()
        self.report.duration_s = time.perf_counter() - self._started_at
        return self.report

    def __enter__(self) -> "SamplingProfiler":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- sampling loop ------------------------------------------------

    def _loop(self) -> None:
        own_ident = threading.get_ident()
        report = self.report
        while not self._stop.wait(self.interval_s):
            frames = sys._current_frames()
            for thread_id, frame in frames.items():
                if thread_id == own_ident:
                    continue
                span = tracing.active_span_of_thread(thread_id)
                if span is None:
                    report.total_samples += 1
                    continue
                report.total_samples += 1
                report.attributed_samples += 1
                path = span.path()
                leaf = path[-1]
                report.self_samples[leaf] = (
                    report.self_samples.get(leaf, 0) + 1
                )
                root = path[0]
                report.root_samples[root] = (
                    report.root_samples.get(root, 0) + 1
                )
                if self.keep_stacks:
                    key = path + _capture_stack(frame, self.max_stack)
                    report.collapsed[key] = report.collapsed.get(key, 0) + 1
            # Drop the frames mapping promptly: it pins every thread's
            # live frame (and thus its locals) until released.
            del frames


def format_self_time_table(report: ProfileReport, top: int = 20) -> str:
    """Human-readable per-span self-time table, heaviest span first."""
    lines = [
        f"{report.total_samples} samples over {report.duration_s:.2f}s "
        f"(interval {report.interval_s * 1e3:.1f}ms, "
        f"{report.attributed_samples} attributed)",
        f"{'span':<28} {'samples':>8} {'self_s':>9} {'share':>7}",
    ]
    attributed = max(1, report.attributed_samples)
    ranked = sorted(
        report.self_samples.items(), key=lambda kv: (-kv[1], kv[0])
    )
    for name, count in ranked[:top]:
        lines.append(
            f"{name:<28} {count:>8d} {count * report.interval_s:>9.3f} "
            f"{count / attributed:>6.1%}"
        )
    if report.unattributed_samples:
        lines.append(
            f"{UNATTRIBUTED:<28} {report.unattributed_samples:>8d} "
            f"{report.unattributed_samples * report.interval_s:>9.3f} "
            f"{'':>7}"
        )
    return "\n".join(lines)
