"""Allocation-free kernel idioms REPRO-PERF01 must accept."""

from array import array


def good_flat_math(data, count, width, out):
    i = 0
    while i < count:
        base = i * width
        j = 0
        while j < width:
            out[base + j] = data[base + j] * 2.0
            j += 1
        i += 1
    return out


def good_swap_and_raise(order, count):
    x, y = 0.0, 1.0
    i = 0
    while i < count:
        x, y = y, x
        if order[i] < 0:
            raise ValueError(f"negative rank at {i}: {order[i]}")
        i += 1
    return x


def good_preallocated(count):
    scratch = array("d", bytes(8 * count))
    total = 0.0
    for i in range(count):
        scratch[i] = float(i)
        total += scratch[i]
    return total
