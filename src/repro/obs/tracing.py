"""Hierarchical tracing spans propagated via :mod:`contextvars`.

A :class:`Span` is a node in a per-query tree: it has a trace id shared
by the whole tree, its own span id, wall-clock + perf-counter timings,
free-form attributes, and a ``counts`` dict fed by the hot-path
:func:`record` helper.  Children attach to their parent *at creation
time*, so :meth:`Span.total` sees live counts from still-open children
— the first-result probe in :class:`~repro.core.base.SkylineAlgorithm`
relies on this.

Propagation is purely contextvar-based, which makes it work unchanged
across the service's worker threads: :func:`activate` pins a span as
the ambient parent for the current context, :func:`span` opens a child
under whatever is ambient, and :func:`record` charges counters to the
innermost active span (bubbling happens at read time via
:meth:`Span.total`, not at write time, so a single dict update is the
entire hot-path cost).

Work that must *not* be charged to the current query — e.g. the lazy
landmark-table build triggered by the first A*+landmarks query — runs
under :func:`suppressed`, which detaches the ambient span for the
duration.

:class:`Tracer` retains finished traces (bounded deque), optionally
samples, and serialises them as JSON files that ``repro trace`` can
render back into a tree via :func:`format_trace`.
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
import time
import uuid
from collections import deque
from contextvars import ContextVar
from typing import Any, Iterator

_CURRENT: ContextVar["Span | None"] = ContextVar("repro_obs_span", default=None)

# Thread id -> innermost active span, mirrored from the contextvar by
# the span()/activate()/suppressed() context managers.  The contextvar
# is invisible from outside the owning thread, so the sampling profiler
# (:mod:`repro.profiling`) reads this map instead to attribute a
# ``sys._current_frames()`` sample to the span the sampled thread was
# executing under.  Two dict writes per *span* (not per record()) keep
# the hot path untouched.
_ACTIVE_BY_THREAD: dict[int, "Span | None"] = {}


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


class Span:
    """One timed node in a trace tree with its own counters.

    Not locked: a span is written by exactly one thread (the one that
    opened it); cross-thread visibility of children is creation-time
    list append, which is safe under the GIL for the read patterns
    ``total``/``to_dict`` use.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "parent",
        "start_wall",
        "start_perf",
        "end_perf",
        "attributes",
        "counts",
        "children",
    )

    def __init__(
        self, name: str, parent: "Span | None" = None, **attributes: Any
    ) -> None:
        self.name = name
        self.trace_id = parent.trace_id if parent is not None else _new_id()
        self.span_id = _new_id()
        self.parent_id = parent.span_id if parent is not None else None
        self.parent = parent
        self.start_wall = time.time()
        self.start_perf = time.perf_counter()
        self.end_perf: float | None = None
        self.attributes: dict[str, Any] = dict(attributes)
        self.counts: dict[str, float] = {}
        self.children: list[Span] = []
        if parent is not None:
            parent.children.append(self)

    # -- lifecycle ----------------------------------------------------

    def finish(self) -> None:
        if self.end_perf is None:
            self.end_perf = time.perf_counter()

    @property
    def duration_s(self) -> float:
        end = self.end_perf if self.end_perf is not None else time.perf_counter()
        return end - self.start_perf

    # -- counters -----------------------------------------------------

    def record(self, key: str, value: float = 1.0) -> None:
        self.counts[key] = self.counts.get(key, 0.0) + value

    def own(self, key: str) -> float:
        """This span's directly charged count (children excluded)."""
        return self.counts.get(key, 0.0)

    def total(self, key: str) -> float:
        """This span's count plus all descendants', recursively."""
        value = self.counts.get(key, 0.0)
        for child in self.children:
            value += child.total(key)
        return value

    def totals(self) -> dict[str, float]:
        """All counter keys in the subtree, summed."""
        out: dict[str, float] = dict(self.counts)
        for child in self.children:
            for key, value in child.totals().items():
                out[key] = out.get(key, 0.0) + value
        return out

    # -- ancestry -----------------------------------------------------

    def path(self) -> tuple[str, ...]:
        """Span names from the root down to this span.

        The sampling profiler uses this as the prefix of a collapsed
        stack line, so a flamegraph groups Python frames under the
        query phase that was executing when the sample was taken.
        """
        names: list[str] = []
        node: Span | None = self
        while node is not None:
            names.append(node.name)
            node = node.parent
        return tuple(reversed(names))

    def prune(self) -> None:
        """Detach accumulated children, folding their recursive totals
        into this span's own counts first so ``totals()`` is unchanged.

        For long-running driver spans (a whole ``repro experiment``
        run) that exist for timing/attribution only: thousands of
        finished per-query subtrees would otherwise stay reachable for
        the driver's entire lifetime.
        """
        for child in self.children:
            for key, value in child.totals().items():
                self.counts[key] = self.counts.get(key, 0.0) + value
        for child in self.children:
            child.parent = None
        self.children = []

    # -- serialisation ------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_wall": self.start_wall,
            "duration_s": self.duration_s,
            "attributes": dict(self.attributes),
            "counts": dict(self.counts),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        span = cls.__new__(cls)
        span.name = data["name"]
        span.trace_id = data["trace_id"]
        span.span_id = data["span_id"]
        span.parent_id = data.get("parent_id")
        span.start_wall = data.get("start_wall", 0.0)
        span.start_perf = 0.0
        span.end_perf = data.get("duration_s", 0.0)
        span.attributes = dict(data.get("attributes", {}))
        span.counts = dict(data.get("counts", {}))
        span.parent = None
        span.children = [cls.from_dict(c) for c in data.get("children", [])]
        for child in span.children:
            child.parent = span
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, counts={self.counts}, "
            f"children={len(self.children)})"
        )


# -- ambient-context helpers ------------------------------------------


def current_span() -> Span | None:
    """The innermost active span in this context, if any."""
    return _CURRENT.get()


def active_span_of_thread(thread_id: int) -> Span | None:
    """The innermost span thread ``thread_id`` is currently under.

    Cross-thread read for the sampling profiler; anything inside the
    running thread should use :func:`current_span` instead.  Reads the
    mirror map the context managers below maintain, so it only sees
    spans opened through :func:`span`/:func:`activate` (which is all of
    them).
    """
    return _ACTIVE_BY_THREAD.get(thread_id)


def active_spans() -> dict[int, Span]:
    """Snapshot of every thread's innermost active span.

    Cross-thread read (flight recorder, ``/debugz``): the dict copy is
    atomic under the GIL; the spans inside are live and may still be
    mutating.
    """
    return {
        ident: node
        for ident, node in dict(_ACTIVE_BY_THREAD).items()
        if node is not None
    }


def active_roots() -> dict[int, Span]:
    """Like :func:`active_spans` but walked up to each tree's root.

    The flight recorder dumps whole in-flight trees, not just the leaf
    phase a thread happens to be inside.
    """
    roots: dict[int, Span] = {}
    for ident, node in active_spans().items():
        while node.parent is not None:
            node = node.parent
        roots[ident] = node
    return roots


def _set_active(node: Span | None) -> int:
    ident = threading.get_ident()
    if node is None:
        _ACTIVE_BY_THREAD.pop(ident, None)
    else:
        _ACTIVE_BY_THREAD[ident] = node
    return ident


def _restore_active(ident: int, node: Span | None) -> None:
    if node is None:
        _ACTIVE_BY_THREAD.pop(ident, None)
    else:
        _ACTIVE_BY_THREAD[ident] = node


def record(key: str, value: float = 1.0) -> None:
    """Charge ``value`` to the innermost active span (no-op outside one).

    This is *the* hot path — called once per settled node, per buffer
    miss, per memo probe — so it is a contextvar read plus one dict
    update and nothing else.
    """
    span = _CURRENT.get()
    if span is not None:
        span.counts[key] = span.counts.get(key, 0.0) + value


@contextlib.contextmanager
def span(name: str, **attributes: Any) -> Iterator[Span]:
    """Open a child span under the ambient one (or a new root)."""
    previous = _CURRENT.get()
    node = Span(name, parent=previous, **attributes)
    token = _CURRENT.set(node)
    ident = _set_active(node)
    try:
        yield node
    finally:
        node.finish()
        _CURRENT.reset(token)
        _restore_active(ident, previous)


@contextlib.contextmanager
def activate(node: Span | None) -> Iterator[Span | None]:
    """Pin an existing span as this context's ambient parent.

    Used by the service to re-enter a request's span from a worker
    thread, and by ``execute_plan`` to attribute each execution unit to
    the request it serves.  ``activate(None)`` is a harmless no-op
    context, so call sites don't need to branch on tracing-enabled.
    """
    previous = _CURRENT.get()
    token = _CURRENT.set(node)
    ident = _set_active(node)
    try:
        yield node
    finally:
        _CURRENT.reset(token)
        _restore_active(ident, previous)


@contextlib.contextmanager
def suppressed() -> Iterator[None]:
    """Detach the ambient span for the duration.

    For shared, amortised work that must not be billed to whichever
    query happened to trigger it (lazy landmark-table builds, cache
    warmups): inside this context, :func:`record` and :func:`span`
    behave as if no trace were active — and the profiler attributes
    samples taken here to no span.
    """
    previous = _CURRENT.get()
    token = _CURRENT.set(None)
    ident = _set_active(None)
    try:
        yield
    finally:
        _CURRENT.reset(token)
        _restore_active(ident, previous)


# -- tracer: retention + export ---------------------------------------


class Tracer:
    """Retains finished root spans and writes them out as JSON.

    ``sample_rate`` keeps every Nth trace (1 = all); ``retention`` is
    the bounded in-memory deque size; ``export_dir`` (optional) gets a
    ``trace-<trace_id>.json`` file per retained trace at save time.
    """

    def __init__(
        self,
        retention: int = 128,
        sample_rate: int = 1,
        export_dir: str | None = None,
    ) -> None:
        if sample_rate < 1:
            raise ValueError("sample_rate must be >= 1")
        self.sample_rate = sample_rate
        self.export_dir = export_dir
        self._traces: deque[Span] = deque(maxlen=retention)
        self._seen = 0
        self._lock = threading.Lock()

    def finish(self, root: Span) -> None:
        """Submit a finished root span for retention (thread-safe)."""
        root.finish()
        with self._lock:
            self._seen += 1
            if (self._seen - 1) % self.sample_rate == 0:
                self._traces.append(root)

    def traces(self) -> list[Span]:
        with self._lock:
            return list(self._traces)

    def last(self) -> Span | None:
        with self._lock:
            return self._traces[-1] if self._traces else None

    def save(self, directory: str | None = None) -> list[str]:
        """Write retained traces as JSON files; returns the paths."""
        directory = directory or self.export_dir
        if directory is None:
            raise ValueError("no export directory configured")
        os.makedirs(directory, exist_ok=True)
        paths: list[str] = []
        for root in self.traces():
            path = os.path.join(directory, f"trace-{root.trace_id}.json")
            with open(path, "w") as handle:
                json.dump(root.to_dict(), handle, indent=1)
            paths.append(path)
        return paths

    @staticmethod
    def load(path: str) -> Span:
        with open(path) as handle:
            return Span.from_dict(json.load(handle))


# -- rendering --------------------------------------------------------

_TREE_KEYS = ("network_pages", "nodes_settled")


def format_trace(
    root: Span,
    keys: tuple[str, ...] = _TREE_KEYS,
    max_depth: int = 8,
) -> str:
    """Render a span tree as indented text with per-span counters.

    Sibling spans sharing a name are aggregated into one line with a
    ``×count`` multiplier — an LBC query opens one ``lbc.resolve`` span
    per candidate, and a thousand identical lines helps nobody.
    """
    lines: list[str] = []

    def describe(spans: list[Span], depth: int) -> None:
        if depth > max_depth or not spans:
            return
        first = spans[0]
        label = first.name
        if len(spans) > 1:
            label += f" ×{len(spans)}"
        duration = sum(s.duration_s for s in spans)
        parts = [f"{'  ' * depth}{label}", f"{duration * 1e3:.2f}ms"]
        for key in keys:
            total = sum(s.total(key) for s in spans)
            if total:
                parts.append(f"{key}={int(total) if total == int(total) else total}")
        extra_keys = sorted(
            k
            for s in spans
            for k in s.counts
            if k not in keys and s.counts[k]
        )
        for key in dict.fromkeys(extra_keys):
            total = sum(s.own(key) for s in spans)
            parts.append(f"{key}={int(total) if total == int(total) else total}")
        lines.append("  ".join(parts))
        # Group each generation of children by name, preserving order.
        grouped: dict[str, list[Span]] = {}
        for parent in spans:
            for child in parent.children:
                grouped.setdefault(child.name, []).append(child)
        for name in grouped:
            describe(grouped[name], depth + 1)

    header = f"trace {root.trace_id}"
    if root.attributes:
        attrs = " ".join(f"{k}={v}" for k, v in sorted(root.attributes.items()))
        header += f"  [{attrs}]"
    lines.append(header)
    describe([root], 0)
    return "\n".join(lines)
