"""The road-network graph model.

Following Section 3 of the paper, a road network is a graph
``G = (E, V)``: nodes are road junctions with planar coordinates, edges
are non-directional road segments with a positive length (an edge "can
be a straight line or a polyline").  Data objects and query points are
*locations* — either exactly at a node or somewhere along an edge at an
offset from one endpoint.

Every edge must satisfy ``length >= euclidean(u, v)``: this is what
makes the Euclidean distance an admissible (and consistent) A*
heuristic, which both the paper's A* usage and LBC's path-distance
lower bounds rely on.  :meth:`RoadNetwork.add_edge` enforces it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.geometry.mbr import MBR
from repro.geometry.point import Point
from repro.geometry.polyline import Polyline

_LENGTH_SLACK = 1e-9
"""Tolerance for float round-off in the length >= chord validation."""


@dataclass(frozen=True, slots=True)
class Edge:
    """A non-directional road segment between junctions ``u`` and ``v``."""

    edge_id: int
    u: int
    v: int
    length: float
    geometry: Polyline | None = None

    def other_end(self, node_id: int) -> int:
        """The endpoint that is not ``node_id``."""
        if node_id == self.u:
            return self.v
        if node_id == self.v:
            return self.u
        raise ValueError(f"node {node_id} is not an endpoint of edge {self.edge_id}")

    def is_incident_to(self, node_id: int) -> bool:
        return node_id == self.u or node_id == self.v


@dataclass(frozen=True, slots=True)
class NetworkLocation:
    """A position on the network: a node, or a point along an edge.

    On-edge locations record the arc-length ``offset`` from the edge's
    ``u`` endpoint; ``point`` is the resolved planar coordinate (used by
    Euclidean heuristics and by the R-tree over objects).
    """

    point: Point
    node_id: int | None = None
    edge_id: int | None = None
    offset: float = 0.0

    def __post_init__(self) -> None:
        if (self.node_id is None) == (self.edge_id is None):
            raise ValueError("a location is either at a node or on an edge")

    @property
    def is_node(self) -> bool:
        return self.node_id is not None


class RoadNetwork:
    """An undirected, embedded, weighted graph of road junctions.

    Parallel edges are allowed (real road data has them); self-loops
    are rejected because a zero-progress loop never participates in a
    shortest path and complicates on-edge distance semantics.
    """

    def __init__(self) -> None:
        self._points: dict[int, Point] = {}
        self._edges: dict[int, Edge] = {}
        # node -> list of (neighbor node id, edge id)
        self._adjacency: dict[int, list[tuple[int, int]]] = {}
        self._next_edge_id = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node_id: int, point: Point) -> None:
        """Register a junction.  Re-adding an id must keep its point."""
        existing = self._points.get(node_id)
        if existing is not None:
            if existing != point:
                raise ValueError(
                    f"node {node_id} already exists at {existing}, not {point}"
                )
            return
        self._points[node_id] = point
        self._adjacency[node_id] = []

    def add_edge(
        self,
        u: int,
        v: int,
        length: float | None = None,
        geometry: Polyline | None = None,
        edge_id: int | None = None,
    ) -> Edge:
        """Add a road segment between existing junctions ``u`` and ``v``.

        ``length`` defaults to the geometry's arc length, or to the
        straight-line distance when no geometry is given.  Lengths
        shorter than the straight-line distance are rejected (they would
        break A* admissibility).
        """
        if u not in self._points or v not in self._points:
            missing = u if u not in self._points else v
            raise KeyError(f"cannot add edge: node {missing} does not exist")
        if u == v:
            raise ValueError(f"self-loop at node {u} is not supported")
        chord = self._points[u].distance_to(self._points[v])
        if length is None:
            length = geometry.length if geometry is not None else chord
        if length <= 0.0:
            raise ValueError(f"edge length must be positive, got {length}")
        if length < chord - _LENGTH_SLACK * max(1.0, chord):
            raise ValueError(
                f"edge ({u}, {v}) length {length} is shorter than the "
                f"Euclidean distance {chord} between its endpoints"
            )
        if geometry is not None:
            if geometry.start != self._points[u] or geometry.end != self._points[v]:
                raise ValueError(
                    f"edge ({u}, {v}) geometry endpoints do not match the nodes"
                )
        if edge_id is None:
            edge_id = self._next_edge_id
        elif edge_id in self._edges:
            raise ValueError(f"edge id {edge_id} already in use")
        self._next_edge_id = max(self._next_edge_id, edge_id) + 1
        edge = Edge(edge_id=edge_id, u=u, v=v, length=float(length), geometry=geometry)
        self._edges[edge_id] = edge
        self._adjacency[u].append((v, edge_id))
        self._adjacency[v].append((u, edge_id))
        return edge

    def update_edge_length(self, edge_id: int, length: float) -> Edge:
        """Change an edge's travel length (congestion-style reweighting).

        Only straight edges can be reweighted — a polyline's length *is*
        its arc length, and re-scaling it would desynchronise on-edge
        offsets from their planar points.  The new length must satisfy
        the same ``length >= chord`` admissibility rule as
        :meth:`add_edge`.  Callers owning derived state (expanders,
        distance caches, landmark tables) must invalidate it; the
        :class:`~repro.engine.engine.DistanceEngine` does so through
        ``Workspace.update_edge_length``.
        """
        edge = self.validate_edge_length(edge_id, length)
        updated = Edge(
            edge_id=edge_id, u=edge.u, v=edge.v, length=float(length), geometry=None
        )
        self._edges[edge_id] = updated
        return updated

    def validate_edge_length(self, edge_id: int, length: float) -> Edge:
        """Check a prospective reweighting without mutating anything.

        Raises the same errors :meth:`update_edge_length` would; callers
        holding state derived from the edge (object placements) can
        validate up front and stay consistent if the change is illegal.
        Returns the current edge.
        """
        edge = self._edges[edge_id]
        if edge.geometry is not None:
            raise ValueError(
                f"edge {edge_id} carries polyline geometry; its length is "
                "the arc length and cannot be reweighted"
            )
        chord = self._points[edge.u].distance_to(self._points[edge.v])
        if length <= 0.0:
            raise ValueError(f"edge length must be positive, got {length}")
        if length < chord - _LENGTH_SLACK * max(1.0, chord):
            raise ValueError(
                f"edge ({edge.u}, {edge.v}) length {length} is shorter than "
                f"the Euclidean distance {chord} between its endpoints"
            )
        return edge

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        return len(self._points)

    @property
    def edge_count(self) -> int:
        return len(self._edges)

    def node_ids(self) -> Iterator[int]:
        return iter(self._points)

    def edge_ids(self) -> Iterator[int]:
        return iter(self._edges)

    def edges(self) -> Iterator[Edge]:
        return iter(self._edges.values())

    def node_point(self, node_id: int) -> Point:
        return self._points[node_id]

    def has_node(self, node_id: int) -> bool:
        return node_id in self._points

    def edge(self, edge_id: int) -> Edge:
        return self._edges[edge_id]

    def neighbors(self, node_id: int) -> list[tuple[int, int]]:
        """``(neighbor id, edge id)`` pairs incident to ``node_id``."""
        return self._adjacency[node_id]

    def degree(self, node_id: int) -> int:
        return len(self._adjacency[node_id])

    def total_length(self) -> float:
        """Sum of all edge lengths (total road kilometres)."""
        return sum(e.length for e in self._edges.values())

    def mbr(self) -> MBR:
        """Bounding box of the junction coordinates."""
        return MBR.from_points(self._points.values())

    def edge_mbr(self, edge_id: int) -> MBR:
        """Bounding box of an edge's geometry (or of its endpoints)."""
        edge = self._edges[edge_id]
        if edge.geometry is not None:
            return edge.geometry.mbr()
        return MBR.from_points(
            (self._points[edge.u], self._points[edge.v])
        )

    # ------------------------------------------------------------------
    # Locations
    # ------------------------------------------------------------------
    def location_at_node(self, node_id: int) -> NetworkLocation:
        """The location exactly at a junction."""
        return NetworkLocation(point=self._points[node_id], node_id=node_id)

    def location_on_edge(self, edge_id: int, offset: float) -> NetworkLocation:
        """The location at arc length ``offset`` from the edge's ``u`` end.

        An offset of exactly 0 or the full length degrades to the
        corresponding node location, which keeps downstream seeding
        logic free of zero-length special cases.
        """
        edge = self._edges[edge_id]
        if not -_LENGTH_SLACK <= offset <= edge.length + _LENGTH_SLACK:
            raise ValueError(
                f"offset {offset} outside [0, {edge.length}] on edge {edge_id}"
            )
        offset = min(max(offset, 0.0), edge.length)
        if offset == 0.0:
            return self.location_at_node(edge.u)
        if offset == edge.length:
            return self.location_at_node(edge.v)
        return NetworkLocation(
            point=self.point_on_edge(edge_id, offset),
            edge_id=edge_id,
            offset=offset,
        )

    def point_on_edge(self, edge_id: int, offset: float) -> Point:
        """Planar coordinates of the point at ``offset`` along the edge."""
        edge = self._edges[edge_id]
        if edge.geometry is not None:
            return edge.geometry.point_at(offset)
        u_point = self._points[edge.u]
        v_point = self._points[edge.v]
        if edge.length == 0.0:
            return u_point
        # Straight edges may still have length > chord (a detour factor);
        # interpolate by fraction of arc length so offsets stay monotone.
        return u_point.lerp(v_point, offset / edge.length)

    def seed_frontier(self, location: NetworkLocation) -> list[tuple[int, float]]:
        """Initial ``(node, distance)`` seeds for a search from ``location``.

        A node location seeds itself at distance zero; an on-edge
        location seeds both endpoints at their along-edge offsets.
        """
        if location.node_id is not None:
            return [(location.node_id, 0.0)]
        assert location.edge_id is not None
        edge = self._edges[location.edge_id]
        return [(edge.u, location.offset), (edge.v, edge.length - location.offset)]

    def direct_edge_distance(
        self, a: NetworkLocation, b: NetworkLocation
    ) -> float | None:
        """Along-edge distance when both locations share an edge, else None.

        This covers the same-edge shortcut that node-seeded searches
        would otherwise miss (walking from one on-edge point to another
        without passing a junction).
        """
        if a.edge_id is None or a.edge_id != b.edge_id:
            return None
        return abs(a.offset - b.offset)

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    def connected_components(self) -> list[set[int]]:
        """Node sets of the connected components (iterative DFS)."""
        remaining = set(self._points)
        components: list[set[int]] = []
        while remaining:
            start = next(iter(remaining))
            component = {start}
            stack = [start]
            while stack:
                node = stack.pop()
                for neighbor, _ in self._adjacency[node]:
                    if neighbor in remaining and neighbor not in component:
                        component.add(neighbor)
                        stack.append(neighbor)
            remaining -= component
            components.append(component)
        return components

    def is_connected(self) -> bool:
        return self.node_count <= 1 or len(self.connected_components()) == 1

    def largest_component_subnetwork(self) -> "RoadNetwork":
        """A copy restricted to the largest connected component."""
        components = self.connected_components()
        if not components:
            return RoadNetwork()
        keep = max(components, key=len)
        sub = RoadNetwork()
        for node_id in keep:
            sub.add_node(node_id, self._points[node_id])
        for edge in self._edges.values():
            if edge.u in keep and edge.v in keep:
                sub.add_edge(
                    edge.u,
                    edge.v,
                    length=edge.length,
                    geometry=edge.geometry,
                    edge_id=edge.edge_id,
                )
        return sub

    def average_detour_factor(self, sample_edges: int | None = None) -> float:
        """Mean ``length / chord`` over edges — a cheap proxy for δ.

        The paper's δ (average network/Euclidean distance ratio over
        node pairs) drives EDC's behaviour; the per-edge detour factor
        correlates with it and is free to compute.
        """
        edges: Iterable[Edge] = self._edges.values()
        if sample_edges is not None:
            edges = list(self._edges.values())[:sample_edges]
        total = 0.0
        count = 0
        for edge in edges:
            chord = self._points[edge.u].distance_to(self._points[edge.v])
            if chord > 0.0:
                total += edge.length / chord
                count += 1
        return total / count if count else 1.0

    def validate(self) -> None:
        """Assert structural invariants (used by tests and generators)."""
        for edge in self._edges.values():
            if edge.u not in self._points or edge.v not in self._points:
                raise AssertionError(f"edge {edge.edge_id} references missing node")
            chord = self._points[edge.u].distance_to(self._points[edge.v])
            if edge.length < chord - _LENGTH_SLACK * max(1.0, chord):
                raise AssertionError(
                    f"edge {edge.edge_id} shorter than its chord"
                )
            if not math.isfinite(edge.length) or edge.length <= 0:
                raise AssertionError(f"edge {edge.edge_id} has bad length")
        for node_id, adjacency in self._adjacency.items():
            for neighbor, edge_id in adjacency:
                edge = self._edges.get(edge_id)
                if edge is None:
                    raise AssertionError(f"adjacency references missing edge {edge_id}")
                if not edge.is_incident_to(node_id) or (
                    edge.other_end(node_id) != neighbor
                ):
                    raise AssertionError(
                        f"adjacency of node {node_id} inconsistent with edge {edge_id}"
                    )
