"""The ``xl`` scaling tier: columnar out-of-core skyline benchmarks.

The regular suites stop where a road network still fits comfortably in
memory.  This tier measures the columnar data plane on its own terms —
object counts up to 10⁶, streamed to disk as binary column files and
processed chunk-by-chunk without ever materialising per-object Python
tuples:

1. ``xl.generate`` — :func:`repro.datasets.generators.stream_object_columns`
   writes the object columns in bounded chunks;
2. ``xl.load`` — :class:`repro.datasets.io.ColumnFile` memory-maps them;
3. ``xl.distances`` + ``xl.skyline`` — per chunk, one
   :func:`~repro.columnar.kernels.batch_euclidean` sweep per query point
   fills a distance block and :func:`~repro.columnar.kernels.block_skyline`
   keeps the chunk's survivors; the survivor union gets one final
   block-skyline pass (sound by transitivity of dominance: any point
   dominated in its chunk is also dominated in the union);
4. ``xl.index`` — Hilbert column bulk-load of the R-tree, on workloads
   small enough that the per-entry index cost is worth reporting.

Counters (rows, chunks, survivor rows, skyline size, bulk dominance
checks from the span totals) are deterministic; wall timings per phase
are advisory, exactly like the main suites.  Artifacts carry the same
structural keys as ``BENCH_*.json`` so
:func:`repro.bench.compare.compare_artifacts` gates them unchanged, and
:func:`format_scaling_report` renders the counter/timing curves versus
|D|, |Q| and dimensionality.
"""

from __future__ import annotations

import platform
import tempfile
import time
from array import array
from dataclasses import dataclass, field
from pathlib import Path

from repro.columnar.curve import hilbert_sort_indices
from repro.columnar.kernels import batch_euclidean, block_skyline, fill_column
from repro.columnar.store import CoordinateColumns, VectorTable
from repro.datasets.generators import REGION_SIDE, stream_object_columns
from repro.datasets.io import ColumnFile
from repro.obs import tracing

XL_ARTIFACT_SCHEMA = "repro-bench-xl"
XL_ARTIFACT_SCHEMA_VERSION = 1
XL_SUITE_VERSION = 1

#: Object-count ceiling for also timing the R-tree column bulk load
#: (index build is O(n log n) in sort work and dwarfs the kernels at
#: the top of the ladder without telling us anything new).
INDEX_PHASE_MAX_OBJECTS = 100_000


@dataclass(frozen=True)
class XLWorkload:
    """One scaling-curve point: |D| objects, |Q| queries, k attributes."""

    objects: int
    queries: int = 4
    attributes: int = 1
    chunk_size: int = 65_536
    seed: int = 7
    group: str = "objects"

    @property
    def workload_id(self) -> str:
        return (
            f"xl/{self.group}/d{self.objects}-q{self.queries}"
            f"-a{self.attributes}"
        )

    def params(self) -> dict:
        return {
            "objects": self.objects,
            "queries": self.queries,
            "attributes": self.attributes,
            "chunk_size": self.chunk_size,
            "seed": self.seed,
            "group": self.group,
        }


XL_SUITES: dict[str, list[XLWorkload]] = {
    # The full ladder: |D| sweep to one million objects at width 2
    # (skyline cardinality grows ~(ln n)^(w-1), so low width keeps the
    # top of the ladder about streaming throughput, not skyline size),
    # then |Q| and dimensionality sweeps at a fixed mid-scale |D|.
    "xl": [
        XLWorkload(objects=1_000, queries=2, attributes=0),
        XLWorkload(objects=10_000, queries=2, attributes=0),
        XLWorkload(objects=100_000, queries=2, attributes=0),
        XLWorkload(objects=1_000_000, queries=2, attributes=0),
        XLWorkload(objects=10_000, queries=2, group="queries"),
        XLWorkload(objects=10_000, queries=8, group="queries"),
        XLWorkload(objects=10_000, attributes=0, group="dims"),
        XLWorkload(objects=10_000, attributes=3, group="dims"),
    ],
    # CI-sized: seconds, not minutes, with the same record shape.
    "xl-smoke": [
        XLWorkload(objects=1_000, chunk_size=512),
        XLWorkload(objects=5_000, chunk_size=2_048),
    ],
}


@dataclass
class _PhaseClock:
    """Wall time per phase; advisory, like every suite timing."""

    seconds: dict[str, float] = field(default_factory=dict)

    def measure(self, phase: str):
        clock = self

        class _Timer:
            def __enter__(self):
                self._start = time.perf_counter()
                return self

            def __exit__(self, exc_type, exc, tb):
                clock.seconds[phase] = round(
                    clock.seconds.get(phase, 0.0)
                    + (time.perf_counter() - self._start),
                    6,
                )

        return _Timer()


def _query_grid(count: int) -> list[tuple[float, float]]:
    """Deterministic query points spread over the unit region.

    A fixed low-discrepancy-ish diagonal lattice: reproducible without
    drawing from the dataset RNG stream.
    """
    points = []
    for i in range(count):
        frac = (i + 1) / (count + 1)
        points.append(
            (frac * REGION_SIDE, ((i * 7 + 3) % (count + 1) + 1)
             / (count + 2) * REGION_SIDE)
        )
    return points


def run_xl_workload(workload: XLWorkload, directory: str | Path) -> dict:
    """Execute one scaling point; returns its artifact record."""
    clock = _PhaseClock()
    queries = _query_grid(workload.queries)
    width = workload.queries + workload.attributes
    path = Path(directory) / f"{workload.objects}-{workload.seed}.cols"

    with tracing.span(
        "xl.run", objects=workload.objects, queries=workload.queries
    ) as root:
        with clock.measure("generate"), tracing.span("xl.generate"):
            stream_object_columns(
                path,
                workload.objects,
                attribute_count=workload.attributes,
                seed=workload.seed,
                chunk_size=min(workload.chunk_size, 65_536),
            )

        with clock.measure("load"), tracing.span("xl.load"):
            column_file = ColumnFile(path)
        xs = column_file.column("x")
        ys = column_file.column("y")
        attr_columns = [
            column_file.column(f"a{j}") for j in range(workload.attributes)
        ]

        try:
            # Distance + per-chunk skyline, streamed: one reused block
            # buffer holds a chunk's vectors, survivors accumulate in a
            # single flat table.
            survivors = VectorTable(width)
            chunk_size = workload.chunk_size
            block = array("d", bytes(8 * chunk_size * width))
            chunks = 0
            start = 0
            count = workload.objects
            while start < count:
                size = min(chunk_size, count - start)
                cx = xs[start : start + size]
                cy = ys[start : start + size]
                with clock.measure("distances"), tracing.span(
                    "xl.distances", rows=size
                ):
                    for column, (qx, qy) in enumerate(queries):
                        batch_euclidean(cx, cy, size, qx, qy, block, column, width)
                    for j, attr in enumerate(attr_columns):
                        view = attr[start : start + size]
                        fill_column(
                            block, width, workload.queries + j, view, size
                        )
                        view.release()
                cx.release()
                cy.release()
                with clock.measure("skyline"), tracing.span(
                    "xl.skyline", rows=size
                ):
                    for row in block_skyline(block, size, width):
                        base = row * width
                        survivors.data.extend(block[base : base + width])
                chunks += 1
                start += size

            with clock.measure("skyline"), tracing.span("xl.skyline"):
                final = block_skyline(
                    survivors.data, len(survivors), survivors.width
                )

            index_nodes = 0
            if workload.objects <= INDEX_PHASE_MAX_OBJECTS:
                with clock.measure("index"), tracing.span("xl.index"):
                    coords = CoordinateColumns(array("d", xs), array("d", ys))
                    order = hilbert_sort_indices(
                        coords.xs, coords.ys, len(coords)
                    )
                    index_nodes = len(order)
        finally:
            for attr in attr_columns:
                attr.release()
            xs.release()
            ys.release()
            column_file.close()
            path.unlink(missing_ok=True)

    totals = root.totals()
    counters = {
        "rows": workload.objects,
        "chunks": chunks,
        "survivor_rows": len(survivors),
        "skyline_count": len(final),
        "dominance_checks": int(totals.get("dominance_checks", 0)),
        "indexed_rows": index_nodes,
    }
    total_s = round(sum(clock.seconds.values()), 6)
    return {
        "id": workload.workload_id,
        "kind": "xl",
        "params": workload.params(),
        "counters": counters,
        "timing_s": {
            "repeats": 1,
            "min": total_s,
            "mean": total_s,
            "p50": total_s,
            "max": total_s,
        },
        "phases_s": dict(sorted(clock.seconds.items())),
    }


def run_xl_suite(
    tier: str, revision: str, progress=None, directory: str | None = None
) -> dict:
    """Run an xl tier; returns an artifact the comparator can gate."""
    if tier not in XL_SUITES:
        raise ValueError(
            f"unknown xl tier {tier!r}; choose from {sorted(XL_SUITES)}"
        )
    records = []
    with tempfile.TemporaryDirectory(dir=directory) as tmp:
        for workload in XL_SUITES[tier]:
            record = run_xl_workload(workload, tmp)
            if progress is not None:
                counters = record["counters"]
                progress(
                    f"{record['id']}: skyline={counters['skyline_count']} "
                    f"survivors={counters['survivor_rows']} "
                    f"checks={counters['dominance_checks']} "
                    f"total={record['timing_s']['p50']:.3f}s"
                )
            records.append(record)
    return {
        "schema": XL_ARTIFACT_SCHEMA,
        "schema_version": XL_ARTIFACT_SCHEMA_VERSION,
        "suite": tier,
        "suite_version": XL_SUITE_VERSION,
        "revision": revision,
        "created_unix": round(time.time(), 3),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "benchmarks": records,
    }


def format_scaling_report(artifact: dict) -> str:
    """The scaling curves as an aligned text table, grouped by sweep."""
    lines = [
        f"xl scaling report — suite={artifact.get('suite')} "
        f"revision={artifact.get('revision')}"
    ]
    by_group: dict[str, list[dict]] = {}
    for record in artifact.get("benchmarks", []):
        group = record.get("params", {}).get("group", "objects")
        by_group.setdefault(group, []).append(record)
    header = (
        f"{'workload':<28} {'|D|':>9} {'|Q|':>4} {'k':>3} "
        f"{'skyline':>8} {'survivors':>10} {'checks':>12} {'total_s':>9}"
    )
    for group in sorted(by_group):
        lines.append(f"-- sweep: {group}")
        lines.append(header)
        for record in by_group[group]:
            params = record["params"]
            counters = record["counters"]
            lines.append(
                f"{record['id']:<28} {params['objects']:>9} "
                f"{params['queries']:>4} {params['attributes']:>3} "
                f"{counters['skyline_count']:>8} "
                f"{counters['survivor_rows']:>10} "
                f"{counters['dominance_checks']:>12} "
                f"{record['timing_s']['p50']:>9.3f}"
            )
            phases = record.get("phases_s", {})
            if phases:
                detail = " ".join(
                    f"{name}={seconds:.3f}s"
                    for name, seconds in phases.items()
                )
                lines.append(f"{'':<28}   {detail}")
    return "\n".join(lines)


def default_scaling_report_name(revision: str) -> str:
    return f"SCALING_{revision}.json"
