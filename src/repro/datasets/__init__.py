"""Workload generation: networks, objects, query points, presets."""

from repro.datasets.dimacs import DimacsFormatError, load_dimacs
from repro.datasets.io import (
    ColumnFile,
    ColumnFileError,
    ColumnFileWriter,
    NetworkFormatError,
    load_network,
    load_objects,
    save_network,
    save_objects,
)
from repro.datasets.generators import (
    REGION_SIDE,
    delaunay_road_network,
    estimate_delta,
    grid_network,
    network_density,
    stream_object_columns,
)
from repro.datasets.objects import (
    OMEGA_LEVELS,
    AttributeSpec,
    extract_n_objects,
    extract_objects,
)
from repro.datasets.presets import (
    AU,
    CA,
    DEFAULT_SCALE,
    DENSITY_ORDER,
    NA,
    PRESETS,
    NetworkPreset,
    build_preset,
)
from repro.datasets.queries import (
    select_query_points,
    select_query_points_on_edges,
)

__all__ = [
    "AU",
    "CA",
    "DEFAULT_SCALE",
    "DENSITY_ORDER",
    "NA",
    "OMEGA_LEVELS",
    "PRESETS",
    "REGION_SIDE",
    "AttributeSpec",
    "ColumnFile",
    "ColumnFileError",
    "ColumnFileWriter",
    "DimacsFormatError",
    "NetworkFormatError",
    "load_dimacs",
    "load_network",
    "load_objects",
    "save_network",
    "save_objects",
    "NetworkPreset",
    "build_preset",
    "delaunay_road_network",
    "estimate_delta",
    "extract_n_objects",
    "extract_objects",
    "grid_network",
    "network_density",
    "select_query_points",
    "select_query_points_on_edges",
    "stream_object_columns",
]
