"""Command-line entry point: ``repro lint`` / ``python -m repro.analysis``.

Exit codes: 0 clean (baselined findings do not fail the run), 1 new
findings, 2 operational errors (unparseable file, bad baseline).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro.analysis import all_rules, run_lint
from repro.analysis import baseline as baseline_mod
from repro.analysis.reporters import render_json, render_text
from repro.analysis.walker import load_module


def _default_paths() -> list[str]:
    here = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return [here]  # the installed/source repro package itself


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Architecture & concurrency linter for the repro codebase "
            "(import layering, page accounting, lock discipline, lock "
            "ordering, telemetry vocabulary)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help=(
            "only run matching rules (exact id, prefix like REPRO-LOCK, "
            "or glob); repeatable"
        ),
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="baseline file of accepted findings (suppresses matches)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite --baseline to cover the current findings and exit 0",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="write the report here as well as stdout",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id:>14}  [{rule.scope:>7}]  {rule.summary}")
        return 0

    paths = args.paths or _default_paths()
    if args.update_baseline:
        if not args.baseline:
            print(
                "error: --update-baseline requires --baseline FILE",
                file=sys.stderr,
            )
            return 2
        result = run_lint(paths, select=args.select)
        lines_by_path = {}
        for finding in result.findings:
            if finding.path not in lines_by_path:
                lines_by_path[finding.path] = load_module(
                    finding.path
                ).lines
        count = baseline_mod.save(
            args.baseline, result.findings, lines_by_path
        )
        print(f"baseline written: {count} findings -> {args.baseline}")
        return 0

    result = run_lint(paths, select=args.select, baseline_path=args.baseline)
    report = (
        render_json(result) if args.format == "json" else render_text(result)
    )
    print(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
            handle.write("\n")
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
