"""Quickstart: a multi-source skyline query on a synthetic road network.

Builds a small city-scale road network, drops data objects on its
edges, and asks: which objects are Pareto-optimal in network distance
to three user-given locations?  Runs the paper's instance-optimal LBC
algorithm and prints the answer with its cost statistics.

Run with::

    python examples/quickstart.py
"""

from repro import (
    LBC,
    Workspace,
    delaunay_road_network,
    extract_objects,
    select_query_points,
)


def main() -> None:
    # A ~2000-junction road network in a 1 km x 1 km region.
    network = delaunay_road_network(node_count=2000, edge_node_ratio=1.25, seed=42)
    print(
        f"network: {network.node_count} junctions, {network.edge_count} road "
        f"segments, {network.total_length():.1f} km of road"
    )

    # Objects (think: restaurants) at 20% of the edge count.
    objects = extract_objects(network, omega=0.20, seed=7)
    print(f"objects: {len(objects)}")

    # The workspace wires the dataset to its disk-simulated storage:
    # Hilbert-clustered adjacency pages, the object<->edge middle layer,
    # and an R-tree over the objects.
    workspace = Workspace.build(network, objects)

    # Three query points inside a small neighbourhood.
    queries = select_query_points(network, 3, region_fraction=0.10, seed=3)
    print("query points:", [f"({q.point.x:.3f}, {q.point.y:.3f})" for q in queries])

    result = LBC().run(workspace, queries)

    print(f"\nskyline: {len(result)} objects (no object is closer to all "
          "three locations than any of these)")
    for point in result:
        distances = ", ".join(f"{d * 1000:7.1f} m" for d in point.vector)
        print(f"  object {point.obj.object_id:4d}: [{distances}]")

    s = result.stats
    print(
        f"\ncost: {s.nodes_settled} junctions expanded, "
        f"{s.network_pages} network pages, {s.candidate_count} candidates, "
        f"{s.total_response_s * 1000:.1f} ms "
        f"(first result after {s.initial_response_s * 1000:.1f} ms)"
    )


if __name__ == "__main__":
    main()
