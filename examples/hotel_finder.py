"""Hotel finder: skyline over network distances *and* price.

The paper's running example: "find hotels which are cheap and close to
the University, the Botanic Garden and the China Town".  Price is a
static non-spatial attribute — the extension discussed at the end of
Section 4.3 — which simply joins the distance vector as an extra
minimisation dimension.  All three algorithms support it; this example
uses LBC and cross-checks with CE.

Run with::

    python examples/hotel_finder.py
"""

import random

from repro import (
    CE,
    LBC,
    ObjectSet,
    SpatialObject,
    Workspace,
    delaunay_road_network,
    select_query_points,
)


def main() -> None:
    network = delaunay_road_network(node_count=1500, edge_node_ratio=1.3, seed=11)

    # 120 hotels on random road segments, each with a nightly price.
    rng = random.Random(5)
    edge_ids = sorted(network.edge_ids())
    hotels = []
    for hotel_id in range(120):
        edge = network.edge(rng.choice(edge_ids))
        location = network.location_on_edge(
            edge.edge_id, edge.length * rng.uniform(0.05, 0.95)
        )
        price = round(rng.uniform(60.0, 380.0), 2)
        hotels.append(
            SpatialObject(object_id=hotel_id, location=location, attributes=(price,))
        )
    objects = ObjectSet.build(network, hotels)
    workspace = Workspace.build(network, objects)

    # Three landmarks the traveller wants to stay close to.
    landmarks = select_query_points(network, 3, region_fraction=0.15, seed=21)
    names = ["University", "Botanic Garden", "China Town"]

    result = LBC().run(workspace, landmarks)
    check = CE().run(workspace, landmarks)
    assert result.same_answer(check), "CE and LBC must agree"

    print(f"{len(result)} Pareto-optimal hotels (distance x 3, price):\n")
    header = "".join(f"{name:>16s}" for name in names) + f"{'price':>10s}"
    print(f"{'hotel':>6s}{header}")
    for point in sorted(result, key=lambda p: p.vector[-1]):
        *distances, price = point.vector
        cells = "".join(f"{d * 1000:13.0f} m " for d in distances)
        print(f"{point.obj.object_id:6d}{cells}{price:9.2f}$")

    cheapest = min(result, key=lambda p: p.vector[-1])
    closest = min(result, key=lambda p: sum(p.vector[:-1]))
    print(
        f"\ncheapest skyline hotel: #{cheapest.obj.object_id} at "
        f"${cheapest.vector[-1]:.2f}"
    )
    print(
        f"best-located skyline hotel: #{closest.obj.object_id} "
        f"({sum(closest.vector[:-1]) * 1000:.0f} m total to the landmarks)"
    )


if __name__ == "__main__":
    main()
