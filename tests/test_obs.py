"""The telemetry subsystem: metrics, tracing, slow-query log.

Unit coverage for :mod:`repro.obs` plus the integration contracts the
rest of the stack relies on:

* exact reconciliation — a traced query's per-span counter sums equal
  its ``QueryStats`` totals *and* the workspace's independent physical
  counters (no drift, no double counting);
* ``/statsz`` exposes every documented field with a numeric value;
* ``/metricsz`` renders parseable Prometheus text with zero duplicate
  metric families and the serving-path families present.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.core import CE, EDC, LBC, LBCRoundRobin, Workspace
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    MetricRegistry,
    SlowQueryLog,
    Span,
    Tracer,
    format_trace,
    parse_prometheus_text,
    tracing,
)
from repro.service.service import QueryService

from conftest import build_random_network, place_random_objects, random_locations


# ----------------------------------------------------------------------
# Metric registry
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_only_goes_up(self):
        registry = MetricRegistry()
        counter = registry.counter("repro_test_total", "help").labels()
        counter.inc()
        counter.inc(2.5)
        with pytest.raises(ValueError):
            counter.inc(-1.0)
        samples = registry.collect()["repro_test_total"]
        assert samples == [("repro_test_total", {}, 3.5)]

    def test_gauge_set_inc_dec(self):
        registry = MetricRegistry()
        gauge = registry.gauge("repro_depth", "help").labels()
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert registry.collect()["repro_depth"] == [("repro_depth", {}, 4.0)]

    def test_labeled_family_children(self):
        registry = MetricRegistry()
        family = registry.counter("repro_reads_total", "", labels=("pool",))
        family.labels(pool="network").inc(3)
        family.labels(pool="index").inc(1)
        samples = registry.collect()["repro_reads_total"]
        assert ("repro_reads_total", {"pool": "index"}, 1.0) in samples
        assert ("repro_reads_total", {"pool": "network"}, 3.0) in samples
        with pytest.raises(ValueError):
            family.labels(wrong="x")

    def test_callback_children_read_at_scrape_time(self):
        registry = MetricRegistry()
        state = {"value": 1.0}
        registry.register_callback(
            "repro_live", lambda: state["value"], kind="gauge"
        )
        assert registry.collect()["repro_live"][0][2] == 1.0
        state["value"] = 9.0
        assert registry.collect()["repro_live"][0][2] == 9.0

    def test_callback_children_reject_writes(self):
        registry = MetricRegistry()
        family = registry.register_callback("repro_cb_total", lambda: 1.0,
                                            kind="counter")
        with pytest.raises(TypeError):
            family.labels().inc()

    def test_histogram_buckets_cumulative(self):
        registry = MetricRegistry()
        hist = registry.histogram(
            "repro_lat_seconds", "", buckets=(0.1, 1.0)
        ).labels()
        for value in (0.05, 0.5, 0.7, 5.0):
            hist.observe(value)
        counts, total, count = hist.snapshot()
        assert count == 4
        assert total == pytest.approx(6.25)
        # Cumulative: le=0.1 -> 1, le=1.0 -> 3, le=+Inf -> 4.
        assert counts == [1, 3, 4]

    def test_histogram_renders_bucket_sum_count(self):
        registry = MetricRegistry()
        registry.histogram("repro_h", "", buckets=(1.0,)).labels().observe(0.5)
        text = registry.render()
        assert 'repro_h_bucket{le="1"} 1' in text
        assert 'repro_h_bucket{le="+Inf"} 1' in text
        assert "repro_h_sum 0.5" in text
        assert "repro_h_count 1" in text

    def test_kind_conflict_rejected(self):
        registry = MetricRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(ValueError):
            registry.gauge("repro_x_total")

    def test_render_parse_round_trip(self):
        registry = MetricRegistry()
        registry.counter("repro_a_total", "a counter").labels().inc(2)
        family = registry.gauge("repro_b", "a gauge", labels=("pool",))
        family.labels(pool="net").set(1.5)
        registry.histogram("repro_c_seconds", "a histogram",
                           buckets=(0.5,)).labels().observe(0.25)
        parsed = parse_prometheus_text(registry.render())
        assert parsed["repro_a_total"]["type"] == "counter"
        assert parsed["repro_a_total"]["samples"] == [
            ("repro_a_total", {}, 2.0)
        ]
        assert parsed["repro_b"]["samples"] == [
            ("repro_b", {"pool": "net"}, 1.5)
        ]
        bucket_samples = [
            s for s in parsed["repro_c_seconds"]["samples"]
            if s[0] == "repro_c_seconds_bucket"
        ]
        assert [s[1]["le"] for s in bucket_samples] == ["0.5", "+Inf"]

    def test_parser_rejects_duplicate_family(self):
        text = (
            "# HELP repro_x help\n# TYPE repro_x counter\nrepro_x 1\n"
            "# HELP repro_x help\n# TYPE repro_x counter\nrepro_x 2\n"
        )
        with pytest.raises(ValueError, match="duplicate family"):
            parse_prometheus_text(text)

    def test_parser_rejects_stray_sample(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("repro_unknown 1\n")


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------
class TestTracing:
    def test_record_is_noop_without_active_span(self):
        tracing.record("orphan_counter", 5)
        assert tracing.current_span() is None

    def test_span_nesting_and_totals(self):
        with tracing.span("root") as root:
            tracing.record("pages", 1)
            with tracing.span("child"):
                tracing.record("pages", 2)
                tracing.record("settles", 7)
            with tracing.span("child"):
                tracing.record("pages", 4)
        assert root.own("pages") == 1
        assert root.total("pages") == 7
        assert root.totals() == {"pages": 7.0, "settles": 7.0}
        assert [c.name for c in root.children] == ["child", "child"]
        assert all(c.trace_id == root.trace_id for c in root.children)
        assert root.end_perf is not None

    def test_children_visible_before_exit(self):
        # The first-result probe reads totals while children are open.
        with tracing.span("root") as root:
            with tracing.span("inner"):
                tracing.record("pages", 3)
                assert root.total("pages") == 3

    def test_suppressed_detaches_ambient_span(self):
        with tracing.span("root") as root:
            with tracing.suppressed():
                tracing.record("pages", 100)
                with tracing.span("shadow"):
                    tracing.record("pages", 1)
        assert root.total("pages") == 0
        assert root.children == []

    def test_activate_reparents_across_contexts(self):
        root = Span("request.LBC")
        with tracing.activate(root):
            with tracing.span("query.LBC"):
                tracing.record("pages", 2)
        root.finish()
        assert root.total("pages") == 2
        assert root.children[0].parent_id == root.span_id
        # activate(None) is a harmless no-op context.
        with tracing.activate(None):
            assert tracing.current_span() is None

    def test_tracer_retention_and_save(self, tmp_path):
        tracer = Tracer(retention=2)
        for i in range(3):
            with tracing.span(f"q{i}") as root:
                tracing.record("pages", i)
            tracer.finish(root)
        kept = tracer.traces()
        assert [s.name for s in kept] == ["q1", "q2"]
        paths = tracer.save(str(tmp_path))
        assert len(paths) == 2
        loaded = Tracer.load(paths[-1])
        assert loaded.name == "q2"
        assert loaded.total("pages") == 2
        payload = json.loads(open(paths[-1]).read())
        assert payload["trace_id"] == kept[-1].trace_id

    def test_format_trace_aggregates_siblings(self):
        with tracing.span("query.LBC", algorithm="LBC") as root:
            for _ in range(3):
                with tracing.span("lbc.resolve"):
                    tracing.record("nodes_settled", 2)
                    tracing.record("network_pages", 1)
        text = format_trace(root)
        assert f"trace {root.trace_id}" in text
        assert "lbc.resolve ×3" in text
        assert "nodes_settled=6" in text
        assert "network_pages=3" in text

    def test_span_path_walks_ancestry(self):
        with tracing.span("query.LBC") as root:
            with tracing.span("lbc.resolve") as leaf:
                assert leaf.path() == ("query.LBC", "lbc.resolve")
        assert root.path() == ("query.LBC",)

    def test_thread_mirror_tracks_innermost_span(self):
        import threading

        ident = threading.get_ident()
        assert tracing.active_span_of_thread(ident) is None
        with tracing.span("query.LBC"):
            with tracing.span("lbc.resolve") as inner:
                assert tracing.active_span_of_thread(ident) is inner
            outer = tracing.active_span_of_thread(ident)
            assert outer is not None and outer.name == "query.LBC"
        assert tracing.active_span_of_thread(ident) is None

    def test_thread_mirror_restored_by_suppressed_and_activate(self):
        import threading

        ident = threading.get_ident()
        with tracing.span("query.LBC") as root:
            with tracing.suppressed():
                assert tracing.active_span_of_thread(ident) is None
            assert tracing.active_span_of_thread(ident) is root
        detached = Span("request.CE")
        with tracing.activate(detached):
            assert tracing.active_span_of_thread(ident) is detached
        assert tracing.active_span_of_thread(ident) is None

    def test_prune_folds_children_into_totals(self):
        with tracing.span("experiment.run") as root:
            with tracing.span("query.LBC"):
                tracing.record("pages", 5)
            root.prune()
            assert root.children == []
            assert root.total("pages") == 5
            with tracing.span("query.CE"):
                tracing.record("pages", 2)
        # Totals survive a prune plus later, unpruned children.
        assert root.total("pages") == 7
        assert [c.name for c in root.children] == ["query.CE"]


# ----------------------------------------------------------------------
# Slow-query log
# ----------------------------------------------------------------------
class TestSlowQueryLog:
    def test_threshold_filters(self):
        log = SlowQueryLog(threshold_s=0.5)
        assert not log.offer("r1", "LBC", 0.1)
        assert log.offer("r2", "LBC", 0.9)
        assert log.slow_count == 1
        assert log.records()[0].request_id == "r2"

    def test_reservoir_bounds_memory(self):
        log = SlowQueryLog(threshold_s=0.0, capacity=8, seed=42)
        for i in range(1000):
            log.offer(f"r{i}", "CE", 1.0 + i * 1e-6)
        assert log.slow_count == 1000
        assert len(log.records()) == 8

    def test_records_sorted_slowest_first(self):
        log = SlowQueryLog(threshold_s=0.0, capacity=16)
        for latency in (0.2, 0.9, 0.5):
            log.offer("r", "CE", latency)
        assert [r.latency_s for r in log.records()] == [0.9, 0.5, 0.2]

    def test_to_dict_is_json_serialisable(self):
        log = SlowQueryLog(threshold_s=0.0)
        log.offer("r1", "LBC", 1.0, query_nodes=(3, 5),
                  trace_id="abc", counters={"network_pages": 4.0})
        payload = json.loads(json.dumps(log.to_dict()))
        assert payload["slow_count"] == 1
        assert payload["records"][0]["counters"]["network_pages"] == 4.0

    def test_dual_clock_fields(self):
        # latency_s (queue wait + execution, monotonic) and
        # span_duration_s (execution only, span clock) are distinct;
        # wall_time is a wall-clock stamp for log correlation only.
        log = SlowQueryLog(threshold_s=0.0)
        log.offer("r1", "LBC", 0.8, span_duration_s=0.3)
        record = log.records()[0]
        assert record.latency_s == 0.8
        assert record.span_duration_s == 0.3
        assert record.latency_s >= record.span_duration_s
        assert record.wall_time > 1e9  # epoch seconds, not monotonic
        payload = record.to_dict()
        assert payload["span_duration_s"] == 0.3


# ----------------------------------------------------------------------
# Exact reconciliation: spans vs QueryStats vs physical counters
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def traced_workspace() -> Workspace:
    network = build_random_network(80, 60, seed=9)
    objects = place_random_objects(network, 40, seed=10, attribute_count=1)
    return Workspace.build(network, objects, paged=True)


@pytest.mark.parametrize("algorithm_cls", [CE, EDC, LBC, LBCRoundRobin])
def test_trace_reconciles_with_stats_and_physical_counters(
    traced_workspace, algorithm_cls
):
    workspace = traced_workspace
    queries = random_locations(workspace.network, 3, seed=21)
    workspace.reset_io(cold=True)
    net_before = workspace.network_pages_read()
    idx_before = workspace.index_pages_read()
    mid_before = workspace.middle_pages_read()
    settled_before = workspace.engine.nodes_settled()

    result = algorithm_cls().run(workspace, queries)
    stats, trace = result.stats, result.trace

    assert trace is not None
    assert stats.trace_id == trace.trace_id
    totals = trace.totals()

    # Span sums == the stats row (the stats *are* the span view).
    assert totals.get("nodes_settled", 0) == stats.nodes_settled
    assert totals.get("network_pages", 0) == stats.network_pages
    assert totals.get("index_pages", 0) == stats.index_pages
    assert totals.get("middle_pages", 0) == stats.middle_pages
    assert totals.get("distance_computations", 0) == stats.distance_computations

    # Span sums == the independent physical deltas (no drift).
    assert stats.network_pages == workspace.network_pages_read() - net_before
    assert stats.index_pages == workspace.index_pages_read() - idx_before
    assert stats.middle_pages == workspace.middle_pages_read() - mid_before
    if algorithm_cls is not CE:  # CE settles via per-query INE expanders
        assert (
            stats.nodes_settled
            == workspace.engine.nodes_settled() - settled_before
        )

    # A paged run that settled nodes must have touched network pages.
    assert stats.nodes_settled > 0
    assert stats.network_pages > 0
    assert all(math.isfinite(v) for v in totals.values())


def test_untraced_direct_expansion_unaffected(traced_workspace):
    """record() outside a span is a no-op: raw expanders keep working."""
    workspace = traced_workspace
    queries = random_locations(workspace.network, 2, seed=33)
    result = LBC().run(workspace, queries)
    baseline = {p.obj.object_id for p in result}
    # The same query again — memoised, still traced, same answer.
    repeat = LBC().run(workspace, queries)
    assert {p.obj.object_id for p in repeat} == baseline


# ----------------------------------------------------------------------
# Service integration: /statsz schema and /metricsz exposition
# ----------------------------------------------------------------------
STATSZ_NUMERIC_FIELDS = {
    ("uptime_s",),
    ("started_unix",),
    ("workers",),
    ("queue", "depth"),
    ("queue", "limit"),
    ("queue", "shed"),
    ("queue", "active_keys"),
    ("requests", "submitted"),
    ("requests", "completed"),
    ("requests", "failed"),
    ("requests", "timed_out"),
    ("requests", "deduped"),
    ("requests", "mutations"),
    ("latency_s", "count"),
    ("latency_s", "mean_s"),
    ("latency_s", "p50_s"),
    ("latency_s", "p95_s"),
    ("latency_s", "p99_s"),
    ("batches", "executed"),
    ("batches", "requests_batched"),
    ("batches", "mean_batch_size"),
    ("engine_nodes_settled",),
    ("buffers", "network_physical_reads"),
    ("buffers", "index_physical_reads"),
    ("buffers", "middle_physical_reads"),
    ("slow_queries", "threshold_s"),
    ("slow_queries", "count"),
    ("slow_queries", "retained"),
    ("workspace_version",),
}

SERVICE_FAMILIES = {
    "repro_service_requests_total",
    "repro_service_queue_depth",
    "repro_service_request_latency_seconds",
    "repro_service_batch_size",
    "repro_service_slow_queries_total",
    "repro_buffer_reads_total",
    "repro_buffer_hit_ratio",
    "repro_engine_memo_events_total",
    "repro_engine_nodes_settled_total",
}


@pytest.fixture
def small_service():
    network = build_random_network(50, 35, seed=5)
    objects = place_random_objects(network, 25, seed=6, attribute_count=1)
    workspace = Workspace.build(network, objects, paged=True)
    service = QueryService(
        workspace, workers=2, batch_window_s=0.0, slow_threshold_s=0.0
    )
    try:
        yield service
    finally:
        service.close()


def test_statsz_schema_every_field_numeric(small_service):
    queries = random_locations(small_service.workspace.network, 2, seed=77)
    small_service.query("LBC", queries)
    stats = small_service.stats_dict()
    for path in STATSZ_NUMERIC_FIELDS:
        node = stats
        for key in path:
            assert key in node, f"missing /statsz field {'.'.join(path)}"
            node = node[key]
        assert isinstance(node, (int, float)) and not isinstance(node, bool), (
            f"/statsz field {'.'.join(path)} is {type(node).__name__}"
        )
    assert isinstance(stats["queue"]["paused"], bool)
    assert isinstance(stats["algorithms"], list)


def test_metricsz_parses_with_no_duplicate_families(small_service):
    network = small_service.workspace.network
    for seed in range(3):
        queries = random_locations(network, 2, seed=seed)
        small_service.query("LBC", queries)
    text = small_service.metrics.render()
    parsed = parse_prometheus_text(text)  # raises on duplicate families
    assert SERVICE_FAMILIES <= set(parsed)

    def sample_value(family, **labels):
        for name, got, value in parsed[family]["samples"]:
            if name == family and got == labels:
                return value
        raise AssertionError(f"no sample {family}{labels}")

    assert sample_value("repro_service_requests_total", outcome="completed") == 3
    assert sample_value("repro_service_requests_total", outcome="submitted") == 3
    assert sample_value("repro_service_queue_depth") == 0
    # Engine hit/miss and buffer traffic flowed through the callbacks.
    assert sample_value("repro_engine_memo_events_total", event="misses") > 0
    assert (
        sample_value("repro_buffer_reads_total", pool="network", mode="logical")
        > 0
    )
    ratio = sample_value("repro_buffer_hit_ratio", pool="network")
    assert 0.0 <= ratio <= 1.0
    # Latency histogram: count equals completed requests, buckets are
    # cumulative up to +Inf.
    lat = parsed["repro_service_request_latency_seconds"]
    count = [v for n, _, v in lat["samples"]
             if n == "repro_service_request_latency_seconds_count"]
    assert count == [3.0]
    inf_bucket = [
        v for n, labels, v in lat["samples"]
        if n.endswith("_bucket") and labels["le"] == "+Inf"
    ]
    assert inf_bucket == [3.0]
    assert len(DEFAULT_LATENCY_BUCKETS) > 0


def test_request_spans_cover_query_work(small_service):
    queries = random_locations(small_service.workspace.network, 2, seed=11)
    result = small_service.query("CE", queries)
    trace = small_service.tracer.last()
    assert trace is not None
    assert trace.name == "request.CE"
    assert trace.attributes["outcome"] == "ok"
    children = [c.name for c in trace.children]
    assert "query.CE" in children
    # The request span's subtree carries the query's counters.
    assert trace.total("nodes_settled") == result.stats.nodes_settled
    assert trace.total("network_pages") == result.stats.network_pages


def test_slow_query_log_captures_trace_ids(small_service):
    queries = random_locations(small_service.workspace.network, 2, seed=13)
    small_service.query("LBC", queries)  # threshold 0.0 -> always slow
    records = small_service.slow_queries.records()
    assert records
    record = records[0]
    assert record.algorithm == "LBC"
    assert record.trace_id
    assert record.counters.get("nodes_settled", 0) > 0
    # The service records both clocks: total latency from enqueue and
    # the request span's own execution time.
    assert record.span_duration_s > 0.0
    assert record.latency_s >= record.span_duration_s
