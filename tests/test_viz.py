"""Tests for the SVG rendering module."""

import xml.etree.ElementTree as ET

import pytest

from repro.core import LBC, Workspace
from repro.network import RoadNetwork, route_to
from repro.viz import NetworkRenderer, render_query, save_svg

from conftest import build_random_network, place_random_objects, random_locations

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg_text):
    return ET.fromstring(svg_text)


@pytest.fixture(scope="module")
def scene():
    network = build_random_network(40, 25, seed=501)
    objects = place_random_objects(network, 20, seed=502)
    workspace = Workspace.build(network, objects, paged=False)
    queries = random_locations(network, 3, seed=503)
    result = LBC().run(workspace, queries)
    return network, workspace, queries, result


class TestNetworkRenderer:
    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            NetworkRenderer(RoadNetwork())

    def test_bad_canvas_rejected(self, scene):
        network, *_ = scene
        with pytest.raises(ValueError):
            NetworkRenderer(network, width=10, height=10, padding=24)

    def test_output_is_valid_xml(self, scene):
        network, *_ = scene
        root = parse(NetworkRenderer(network).to_svg())
        assert root.tag == f"{SVG_NS}svg"

    def test_edges_drawn(self, scene):
        network, *_ = scene
        root = parse(NetworkRenderer(network).to_svg())
        lines = root.findall(f".//{SVG_NS}line") + root.findall(
            f".//{SVG_NS}polyline"
        )
        assert len(lines) == network.edge_count

    def test_nodes_layer(self, scene):
        network, *_ = scene
        svg = NetworkRenderer(network).add_nodes().to_svg()
        root = parse(svg)
        circles = root.findall(f".//{SVG_NS}circle")
        assert len(circles) == network.node_count

    def test_coordinates_inside_canvas(self, scene):
        network, *_ = scene
        renderer = NetworkRenderer(network, width=400, height=300, padding=20)
        root = parse(renderer.add_nodes().to_svg())
        for circle in root.findall(f".//{SVG_NS}circle"):
            assert 0 <= float(circle.get("cx")) <= 400
            assert 0 <= float(circle.get("cy")) <= 300

    def test_polyline_geometry_rendered(self):
        from repro.geometry import Point, Polyline

        net = RoadNetwork()
        net.add_node(0, Point(0, 0))
        net.add_node(1, Point(1, 0))
        net.add_edge(
            0, 1, geometry=Polyline((Point(0, 0), Point(0.5, 0.3), Point(1, 0)))
        )
        root = parse(NetworkRenderer(net).to_svg())
        polylines = root.findall(f".//{SVG_NS}polyline")
        assert len(polylines) == 1
        assert len(polylines[0].get("points").split()) == 3

    def test_title_escaped(self, scene):
        network, *_ = scene
        svg = NetworkRenderer(network).add_title("<skyline> & more").to_svg()
        assert "&lt;skyline&gt; &amp; more" in svg
        parse(svg)  # still valid XML

    def test_route_layer(self, scene):
        network, _, queries, _ = scene
        distance, route = route_to(network, queries[0], queries[1])
        svg = NetworkRenderer(network).add_route(route).to_svg()
        root = parse(svg)
        routes = [
            el
            for el in root.findall(f".//{SVG_NS}polyline")
            if el.get("class") == "route"
        ]
        assert len(routes) == 1
        assert len(routes[0].get("points").split()) == len(route)

    def test_trivial_route_skipped(self, scene):
        network, _, queries, _ = scene
        svg = NetworkRenderer(network).add_route([queries[0]]).to_svg()
        root = parse(svg)
        assert not [
            el
            for el in root.findall(f".//{SVG_NS}polyline")
            if el.get("class") == "route"
        ]

    def test_wavefront_layer(self, scene):
        network, _, queries, _ = scene
        from repro.network import DijkstraExpander

        expander = DijkstraExpander(network, queries[0])
        for _ in range(15):
            expander.expand_next()
        svg = NetworkRenderer(network).add_wavefront(expander.settled).to_svg()
        root = parse(svg)
        groups = [
            g
            for g in root.findall(f".//{SVG_NS}g")
            if g.get("class") == "wavefront"
        ]
        assert len(groups) == 1
        assert len(groups[0]) == len(expander.settled)


class TestRenderQuery:
    def test_full_scene(self, scene):
        _, workspace, queries, result = scene
        svg = render_query(workspace, queries, result)
        root = parse(svg)
        object_groups = [
            g for g in root.findall(f".//{SVG_NS}g") if g.get("class") == "objects"
        ]
        skyline_groups = [
            g for g in root.findall(f".//{SVG_NS}g") if g.get("class") == "skyline"
        ]
        query_groups = [
            g for g in root.findall(f".//{SVG_NS}g") if g.get("class") == "queries"
        ]
        assert len(object_groups[0]) == len(workspace.objects)
        assert len(skyline_groups[0]) == len(result)
        assert len(query_groups[0]) == len(queries)

    def test_auto_title_mentions_algorithm(self, scene):
        _, workspace, queries, result = scene
        svg = render_query(workspace, queries, result)
        assert "LBC" in svg

    def test_without_result(self, scene):
        _, workspace, queries, _ = scene
        svg = render_query(workspace, queries)
        parse(svg)

    def test_save_svg(self, scene, tmp_path):
        _, workspace, queries, result = scene
        path = tmp_path / "scene.svg"
        save_svg(render_query(workspace, queries, result), path)
        parse(path.read_text())
