"""The paper's *middle layer*: partially materialised object↔edge mapping.

Section 3: "If an object ``p`` is on a network edge ``e`` between two
adjacent nodes ``v, v'``, the distances ``d(v, p)`` and ``d(v', p)`` are
pre-computed, and the id of ``e`` is stored in the middle layer with the
id of ``p`` and the two pre-computed distances.  This middle layer can
be indexed using a B+-tree on edge ids."

The middle layer decouples the network model from any specific object
set (unlike the hard-coded linkage of [26]) while avoiding the online
geometric mapping cost of [22].  Wavefront algorithms probe it once per
visited edge; each probe is a B+-tree search whose page accesses are
charged to the layer's pager.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.index.bptree import DEFAULT_ORDER, BPlusTree
from repro.network.graph import RoadNetwork
from repro.network.objects import ObjectSet, SpatialObject
from repro.storage.binding import NodePager


@dataclass(frozen=True, slots=True)
class ObjectPlacement:
    """One middle-layer record: an object with its edge-end distances."""

    obj: SpatialObject
    edge_id: int
    dist_from_u: float
    dist_from_v: float

    def distance_from(self, node_id: int, network: RoadNetwork) -> float:
        """Pre-computed along-edge distance from an endpoint to the object."""
        edge = network.edge(self.edge_id)
        if node_id == edge.u:
            return self.dist_from_u
        if node_id == edge.v:
            return self.dist_from_v
        raise ValueError(f"node {node_id} is not an end of edge {self.edge_id}")


def placements_for(network: RoadNetwork, obj: SpatialObject) -> list[ObjectPlacement]:
    """The middle-layer records one object contributes.

    Edge-resident objects yield one record; node-resident objects yield
    one per incident edge with a zero offset from that junction.
    """
    loc = obj.location
    if loc.edge_id is not None:
        edge = network.edge(loc.edge_id)
        return [
            ObjectPlacement(
                obj=obj,
                edge_id=loc.edge_id,
                dist_from_u=loc.offset,
                dist_from_v=edge.length - loc.offset,
            )
        ]
    assert loc.node_id is not None
    placements = []
    # Build-time placement walk, not a query-path traversal: the page
    # charge is levied when the middle layer itself is read.
    for _, edge_id in network.neighbors(loc.node_id):  # repro: ignore[REPRO-PAGE02]
        edge = network.edge(edge_id)
        at_u = loc.node_id == edge.u
        placements.append(
            ObjectPlacement(
                obj=obj,
                edge_id=edge_id,
                dist_from_u=0.0 if at_u else edge.length,
                dist_from_v=edge.length if at_u else 0.0,
            )
        )
    return placements


class MiddleLayer:
    """B+-tree-indexed mapping from edge ids to the objects on them.

    Node-resident objects are attached to every incident edge with a
    zero offset from that node, so a wavefront discovers them as soon as
    it settles the junction.
    """

    def __init__(
        self,
        network: RoadNetwork,
        placements: Iterable[ObjectPlacement],
        order: int = DEFAULT_ORDER,
        pager: NodePager | None = None,
    ) -> None:
        self._network = network
        self._pager = pager
        self._index: BPlusTree[int, ObjectPlacement] = BPlusTree.bulk_load(
            ((p.edge_id, p) for p in placements), order=order, pager=pager
        )
        self.probe_count = 0

    @classmethod
    def build(
        cls,
        objects: ObjectSet,
        order: int = DEFAULT_ORDER,
        pager: NodePager | None = None,
    ) -> "MiddleLayer":
        """Materialise the layer from an object set."""
        network = objects.network
        placements: list[ObjectPlacement] = []
        for obj in objects:
            placements.extend(placements_for(network, obj))
        return cls(network, placements, order=order, pager=pager)

    def objects_on(self, edge_id: int) -> list[ObjectPlacement]:
        """Middle-layer probe for one edge (charged as a B+-tree search)."""
        self.probe_count += 1
        return self._index.search(edge_id)

    def add_object(self, obj) -> None:
        """Materialise placements for a newly added object."""
        for placement in placements_for(self._network, obj):
            self._index.insert(placement.edge_id, placement)

    def remove_object(self, obj) -> int:
        """Drop every placement of an object; returns how many."""
        removed = 0
        for placement in placements_for(self._network, obj):
            for existing in self._index.search(placement.edge_id):
                if existing.obj.object_id == obj.object_id:
                    removed += self._index.delete(placement.edge_id, existing)
        return removed

    def has_objects(self, edge_id: int) -> bool:
        """Cheap existence check, also via the B+-tree."""
        self.probe_count += 1
        return self._index.contains(edge_id)

    @property
    def placement_count(self) -> int:
        """Total records (a node object appears once per incident edge)."""
        return len(self._index)

    @property
    def stats(self):
        """The pager's I/O stats, or None when unpaged."""
        return self._pager.stats if self._pager is not None else None


class InMemoryPlacements:
    """A placement source backed by plain dictionaries (no paging).

    Behaviourally identical to :class:`MiddleLayer` — including the
    attachment of node-resident objects to every incident edge — but
    without simulated I/O.  Used by unit tests and by callers that only
    want answers, not cost accounting.
    """

    def __init__(self, objects: ObjectSet) -> None:
        network = objects.network
        self._network = network
        self._by_edge: dict[int, list[ObjectPlacement]] = {}
        for obj in objects:
            loc = obj.location
            if loc.edge_id is not None:
                edge = network.edge(loc.edge_id)
                self._by_edge.setdefault(loc.edge_id, []).append(
                    ObjectPlacement(
                        obj=obj,
                        edge_id=loc.edge_id,
                        dist_from_u=loc.offset,
                        dist_from_v=edge.length - loc.offset,
                    )
                )
            else:
                assert loc.node_id is not None
                # Registration-time walk (index construction); charged
                # via middle-layer pages on read, not here.
                incident = network.neighbors(  # repro: ignore[REPRO-PAGE02]
                    loc.node_id
                )
                for _, edge_id in incident:
                    edge = network.edge(edge_id)
                    at_u = loc.node_id == edge.u
                    self._by_edge.setdefault(edge_id, []).append(
                        ObjectPlacement(
                            obj=obj,
                            edge_id=edge_id,
                            dist_from_u=0.0 if at_u else edge.length,
                            dist_from_v=edge.length if at_u else 0.0,
                        )
                    )
        self.probe_count = 0

    def objects_on(self, edge_id: int) -> list[ObjectPlacement]:
        """Placement records for one edge (possibly empty)."""
        self.probe_count += 1
        return self._by_edge.get(edge_id, [])

    def add_object(self, obj) -> None:
        """Register placements for a newly added object."""
        for placement in placements_for(self._network, obj):
            self._by_edge.setdefault(placement.edge_id, []).append(placement)

    def remove_object(self, obj) -> int:
        """Drop every placement of an object; returns how many."""
        removed = 0
        for placement in placements_for(self._network, obj):
            bucket = self._by_edge.get(placement.edge_id, [])
            before = len(bucket)
            bucket[:] = [
                p for p in bucket if p.obj.object_id != obj.object_id
            ]
            removed += before - len(bucket)
            if not bucket:
                self._by_edge.pop(placement.edge_id, None)
        return removed
