"""Behavioural tests for CE, EDC(-inc), LBC and the naive baseline.

Each algorithm gets its own scenario tests; the heavy cross-algorithm
equivalence sweeps live in test_integration.py and the hypothesis
suite in test_property_algorithms.py.
"""


import pytest

from repro.core import (
    CE,
    EDC,
    EDCIncremental,
    LBC,
    LBCLazy,
    LBCRoundRobin,
    NaiveSkyline,
    Workspace,
)
from repro.network import ObjectSet, SpatialObject

from conftest import build_random_network, place_random_objects, random_locations


@pytest.fixture(scope="module")
def workload():
    network = build_random_network(70, 50, seed=7, detour_max=0.8)
    objects = place_random_objects(network, 50, seed=8)
    workspace = Workspace.build(network, objects, paged=False)
    queries = random_locations(network, 3, seed=9)
    reference = NaiveSkyline().run(workspace, queries)
    return network, workspace, queries, reference


def _lbc_noplb():
    return LBC(use_lower_bounds=False)


ALGORITHMS = [CE, EDC, EDCIncremental, LBC, LBCLazy, LBCRoundRobin, _lbc_noplb]


class TestAllAlgorithms:
    @pytest.mark.parametrize("algorithm_cls", ALGORITHMS)
    def test_matches_naive(self, workload, algorithm_cls):
        _, workspace, queries, reference = workload
        result = algorithm_cls().run(workspace, queries)
        assert result.same_answer(reference)

    @pytest.mark.parametrize("algorithm_cls", ALGORITHMS)
    def test_single_query_point(self, workload, algorithm_cls):
        network, workspace, queries, _ = workload
        single = [queries[0]]
        reference = NaiveSkyline().run(workspace, single)
        result = algorithm_cls().run(workspace, single)
        assert result.same_answer(reference)

    @pytest.mark.parametrize("algorithm_cls", ALGORITHMS)
    def test_duplicate_query_points(self, workload, algorithm_cls):
        """The same location twice: a degenerate but legal query."""
        _, workspace, queries, _ = workload
        doubled = [queries[0], queries[0]]
        reference = NaiveSkyline().run(workspace, doubled)
        result = algorithm_cls().run(workspace, doubled)
        assert result.same_answer(reference)

    @pytest.mark.parametrize("algorithm_cls", ALGORITHMS)
    def test_query_on_object_location(self, algorithm_cls):
        """A query point exactly on an object: distance 0 dominates."""
        network = build_random_network(40, 25, seed=17)
        objects = place_random_objects(network, 20, seed=18)
        workspace = Workspace.build(network, objects, paged=False)
        target = objects.objects[0]
        queries = [target.location]
        result = algorithm_cls().run(workspace, queries)
        assert result.object_ids() == [target.object_id]
        assert result.points[0].vector[0] == pytest.approx(0.0)

    @pytest.mark.parametrize("algorithm_cls", ALGORITHMS)
    def test_empty_result_impossible_with_objects(self, workload, algorithm_cls):
        _, workspace, queries, _ = workload
        assert len(algorithm_cls().run(workspace, queries)) >= 1

    @pytest.mark.parametrize("algorithm_cls", ALGORITHMS)
    def test_vectors_have_query_then_attribute_dims(self, algorithm_cls):
        network = build_random_network(40, 25, seed=27)
        objects = place_random_objects(network, 25, seed=28, attribute_count=2)
        workspace = Workspace.build(network, objects, paged=False)
        queries = random_locations(network, 2, seed=29)
        result = algorithm_cls().run(workspace, queries)
        for point in result:
            assert len(point.vector) == 4
            assert point.vector[2:] == point.obj.attributes

    @pytest.mark.parametrize("algorithm_cls", ALGORITHMS)
    def test_empty_query_list_rejected(self, workload, algorithm_cls):
        _, workspace, _, _ = workload
        with pytest.raises(ValueError):
            algorithm_cls().run(workspace, [])


class TestSkylineSemantics:
    def test_skyline_members_mutually_non_dominated(self, workload):
        from repro.skyline import dominates

        _, workspace, queries, reference = workload
        vectors = [p.vector for p in reference]
        for a in vectors:
            for b in vectors:
                if a is not b:
                    assert not dominates(a, b)

    def test_non_members_dominated(self, workload):
        from repro.network import network_distances
        from repro.skyline import dominates

        network, workspace, queries, reference = workload
        member_ids = set(reference.object_ids())
        vectors = [p.vector for p in reference]
        # Spot-check a few non-members.
        checked = 0
        for obj in workspace.objects:
            if obj.object_id in member_ids:
                continue
            distances = [
                network_distances(network, q, [obj.location])[0]
                for q in queries
            ]
            vector = tuple(distances) + obj.attributes
            assert any(dominates(v, vector) for v in vectors)
            checked += 1
            if checked >= 5:
                break


class TestCESpecifics:
    def test_initial_response_before_total(self, workload):
        _, workspace, queries, _ = workload
        stats = CE().run(workspace, queries).stats
        assert stats.initial_response_s <= stats.total_response_s + 1e-9

    def test_candidate_count_reported(self, workload):
        _, workspace, queries, _ = workload
        stats = CE().run(workspace, queries).stats
        assert 1 <= stats.candidate_count <= len(workspace.objects)

    def test_attribute_only_survivor_found(self):
        """An object remote from all query points but uniquely cheap
        must appear in the skyline (the virtual-expander fix)."""
        network = build_random_network(60, 35, seed=37)
        base = place_random_objects(network, 30, seed=38, attribute_count=1)
        # Force one object to have the global minimum attribute.
        cheap = min(base.objects, key=lambda o: o.attributes[0])
        workspace = Workspace.build(network, base, paged=False)
        queries = random_locations(network, 3, seed=39)
        result = CE().run(workspace, queries)
        assert cheap.object_id in result.object_ids()

    def test_disconnected_queries_fall_back(self):
        from repro.geometry import Point
        from repro.network import RoadNetwork

        net = RoadNetwork()
        for i, xy in enumerate([(0, 0), (0.1, 0), (0.8, 0.8), (0.9, 0.8)]):
            net.add_node(i, Point(*xy))
        e1 = net.add_edge(0, 1)
        e2 = net.add_edge(2, 3)
        objects = ObjectSet.build(
            net,
            [
                SpatialObject(0, net.location_on_edge(e1.edge_id, e1.length / 2)),
                SpatialObject(1, net.location_on_edge(e2.edge_id, e2.length / 2)),
            ],
        )
        ws = Workspace.build(net, objects, paged=False)
        queries = [net.location_at_node(0), net.location_at_node(2)]
        reference = NaiveSkyline().run(ws, queries)
        result = CE().run(ws, queries)
        assert result.same_answer(reference)
        # Both objects survive: each unreachable from one query point.
        assert result.object_ids() == [0, 1]


class TestEDCSpecifics:
    def test_closure_counter_absent_on_normal_workloads(self, workload):
        _, workspace, queries, _ = workload
        stats = EDC().run(workspace, queries).stats
        # The closure patch normally finds nothing.
        assert stats.extras.get("closure_candidates", 0.0) >= 0.0

    def test_closure_rescues_published_edc_blind_spot(self):
        """The constructed counterexample from the module docstring:
        a detour-heavy Euclidean skyline point hides a true skyline
        member outside every hypercube."""
        from repro.geometry import Point
        from repro.network import RoadNetwork

        net = RoadNetwork()
        # q1 --(detour 5)-- e; o sits slightly farther Euclidean but on
        # direct roads.
        net.add_node(0, Point(0.0, 0.0))    # q1
        net.add_node(1, Point(0.0, 1.0))    # q2
        net.add_node(2, Point(0.0, 0.45))   # junction carrying e
        net.add_node(3, Point(0.3, 0.5))    # junction carrying o
        e_q1 = net.add_edge(0, 2, length=5.0)   # huge detour q1 -> e side
        net.add_edge(1, 2, length=0.55)
        net.add_edge(0, 3, length=0.6)
        net.add_edge(1, 3, length=0.6)
        eid = net.add_edge(2, 3, length=0.31)
        objects = ObjectSet.build(
            net,
            [
                SpatialObject(0, net.location_on_edge(e_q1.edge_id, 4.999)),
                SpatialObject(1, net.location_on_edge(eid.edge_id, 0.3)),
            ],
        )
        ws = Workspace.build(net, objects, paged=False)
        queries = [net.location_at_node(0), net.location_at_node(1)]
        reference = NaiveSkyline().run(ws, queries)
        for algorithm in (EDC(), EDCIncremental(), CE(), LBC()):
            assert algorithm.run(ws, queries).same_answer(reference)

    def test_incremental_and_batch_agree(self, workload):
        _, workspace, queries, _ = workload
        batch = EDC().run(workspace, queries)
        incremental = EDCIncremental().run(workspace, queries)
        assert batch.same_answer(incremental)


class TestLBCSpecifics:
    def test_source_index_changes_order_not_set(self, workload):
        _, workspace, queries, _ = workload
        first = LBC(source_index=0).run(workspace, queries)
        last = LBC(source_index=len(queries) - 1).run(workspace, queries)
        assert first.same_answer(last)

    def test_bad_source_index_rejected(self, workload):
        _, workspace, queries, _ = workload
        with pytest.raises(ValueError):
            LBC(source_index=10).run(workspace, queries)

    def test_first_point_is_source_network_nn(self, workload):
        """LBC's first reported point minimises the source dimension."""
        _, workspace, queries, _ = workload
        result = LBC(source_index=0).run(workspace, queries)
        source_dim = [p.vector[0] for p in result.points]
        assert source_dim[0] == pytest.approx(min(source_dim))

    def test_reports_progressively_by_source_distance(self, workload):
        """Discovery order is non-decreasing in the source dimension
        (modulo tie-eviction, absent on random float workloads)."""
        _, workspace, queries, _ = workload
        result = LBC(source_index=0).run(workspace, queries)
        source_dim = [p.vector[0] for p in result.points]
        assert source_dim == sorted(source_dim)

    def test_lb_expansions_tracked(self, workload):
        _, workspace, queries, _ = workload
        stats = LBC().run(workspace, queries).stats
        assert stats.lb_expansions >= 0
        assert stats.distance_computations > 0


class TestNaiveSpecifics:
    def test_candidates_are_everything(self, workload):
        _, workspace, queries, _ = workload
        stats = NaiveSkyline().run(workspace, queries).stats
        assert stats.candidate_count == len(workspace.objects)

    def test_single_object(self):
        network = build_random_network(20, 10, seed=47)
        objects = place_random_objects(network, 1, seed=48)
        ws = Workspace.build(network, objects, paged=False)
        queries = random_locations(network, 2, seed=49)
        result = NaiveSkyline().run(ws, queries)
        assert result.object_ids() == [0]


class TestCEStrategies:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            CE(strategy="fastest")

    def test_min_radius_matches_round_robin(self, workload):
        _, workspace, queries, reference = workload
        result = CE(strategy="min_radius").run(workspace, queries)
        assert result.same_answer(reference)
        assert result.stats.algorithm == "CE-min-radius"

    def test_min_radius_with_attributes(self):
        network = build_random_network(50, 30, seed=57)
        objects = place_random_objects(network, 30, seed=58, attribute_count=1)
        workspace = Workspace.build(network, objects, paged=False)
        queries = random_locations(network, 3, seed=59)
        reference = NaiveSkyline().run(workspace, queries)
        assert CE(strategy="min_radius").run(workspace, queries).same_answer(
            reference
        )

    def test_min_radius_balances_radii(self):
        """With unequal object densities the balanced strategy keeps the
        wavefront radii closer together than round-robin does."""
        network = build_random_network(80, 50, seed=61)
        objects = place_random_objects(network, 50, seed=62)
        workspace = Workspace.build(network, objects, paged=False)
        queries = random_locations(network, 3, seed=63)
        # Radii comparison is heuristic; just assert both run and agree.
        a = CE(strategy="round_robin").run(workspace, queries)
        b = CE(strategy="min_radius").run(workspace, queries)
        assert a.same_answer(b)
