"""Tests for the multi-source BBS Euclidean skyline over the R-tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import MBR, Point
from repro.index import RTree
from repro.network.graph import NetworkLocation
from repro.network.objects import SpatialObject
from repro.skyline import (
    euclidean_skyline,
    euclidean_vector,
    incremental_euclidean_skyline,
    mbr_lower_bound_vector,
    skyline_of,
)

coordinate = st.floats(min_value=0, max_value=10, allow_nan=False)
point_strategy = st.builds(Point, coordinate, coordinate)


def as_objects(points, attributes=None):
    objs = []
    for i, p in enumerate(points):
        attrs = (attributes[i],) if attributes is not None else ()
        objs.append(
            SpatialObject(i, NetworkLocation(point=p, node_id=i), attrs)
        )
    return objs


def build_rtree(objs, max_entries=5):
    tree = RTree(max_entries=max_entries)
    for obj in objs:
        tree.insert_point(obj.point, obj)
    return tree


class TestVectors:
    def test_euclidean_vector(self):
        v = euclidean_vector(Point(0, 0), [Point(3, 4), Point(0, 1)], (7.5,))
        assert v == (5.0, 1.0, 7.5)

    def test_mbr_lower_bound_vector(self):
        r = MBR(0, 0, 1, 1)
        v = mbr_lower_bound_vector(r, [Point(3, 0.5)], attribute_count=2)
        assert v == (2.0, 0.0, 0.0)

    def test_mbr_vector_zero_inside(self):
        r = MBR(0, 0, 2, 2)
        assert mbr_lower_bound_vector(r, [Point(1, 1)]) == (0.0,)


class TestEuclideanSkyline:
    def test_empty_tree(self):
        tree = RTree()
        assert euclidean_skyline(tree, [Point(0, 0)]) == []

    def test_single_query_point_returns_nn_only(self):
        rng = random.Random(0)
        points = [Point(rng.random(), rng.random()) for _ in range(50)]
        objs = as_objects(points)
        tree = build_rtree(objs)
        q = Point(0.5, 0.5)
        sky = euclidean_skyline(tree, [q])
        # With one dimension the skyline is exactly the minimum(s).
        best = min(p.distance_to(q) for p in points)
        assert all(vec[0] == pytest.approx(best) for _, vec in sky)

    def test_matches_brute_force(self):
        rng = random.Random(1)
        points = [Point(rng.random(), rng.random()) for _ in range(120)]
        queries = [Point(0.1, 0.2), Point(0.9, 0.3), Point(0.4, 0.9)]
        objs = as_objects(points)
        tree = build_rtree(objs)
        got = sorted(o.object_id for o, _ in euclidean_skyline(tree, queries))
        vecs = [euclidean_vector(p, queries) for p in points]
        assert got == sorted(skyline_of(vecs))

    def test_streams_in_aggregate_order(self):
        rng = random.Random(2)
        points = [Point(rng.random(), rng.random()) for _ in range(80)]
        queries = [Point(0.2, 0.8), Point(0.7, 0.1)]
        tree = build_rtree(as_objects(points))
        sums = [sum(v) for _, v in incremental_euclidean_skyline(tree, queries)]
        assert sums == sorted(sums)

    def test_with_static_attributes(self):
        rng = random.Random(3)
        points = [Point(rng.random(), rng.random()) for _ in range(60)]
        prices = [rng.random() * 100 for _ in range(60)]
        objs = as_objects(points, prices)
        tree = build_rtree(objs)
        queries = [Point(0.5, 0.5)]
        got = sorted(
            o.object_id
            for o, _ in euclidean_skyline(tree, queries, attribute_count=1)
        )
        vecs = [
            euclidean_vector(p, queries, (price,))
            for p, price in zip(points, prices)
        ]
        assert got == sorted(skyline_of(vecs))

    def test_extra_prune_excludes_region(self):
        points = [Point(0.1, 0.1), Point(0.9, 0.9)]
        tree = build_rtree(as_objects(points))
        queries = [Point(0.0, 0.0)]
        everything = list(incremental_euclidean_skyline(tree, queries))
        pruned = list(
            incremental_euclidean_skyline(
                tree, queries, extra_prune=lambda vec: True
            )
        )
        assert everything != []
        assert pruned == []

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(point_strategy, min_size=1, max_size=60),
        st.lists(point_strategy, min_size=1, max_size=3),
    )
    def test_property_matches_brute_force(self, points, queries):
        tree = build_rtree(as_objects(points))
        got = sorted(o.object_id for o, _ in euclidean_skyline(tree, queries))
        vecs = [euclidean_vector(p, queries) for p in points]
        assert got == sorted(skyline_of(vecs))
