"""In-process HTTP transport tests for the serving layer.

A real :class:`ServiceHTTPServer` bound to an ephemeral port, driven
with ``urllib`` — no mocking, the exact stack ``repro-serve`` runs.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from conftest import build_random_network, place_random_objects
from repro.core import LBC, Workspace
from repro.service import QueryService, ServiceHTTPServer


@pytest.fixture(scope="module")
def server():
    network = build_random_network(120, 90, seed=41, detour_max=0.6)
    objects = place_random_objects(network, 40, seed=42, attribute_count=2)
    workspace = Workspace.build(network, objects, distance_backend="astar")
    service = QueryService(workspace, workers=2)
    http_server = ServiceHTTPServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=http_server.serve_forever, daemon=True)
    thread.start()
    try:
        yield http_server
    finally:
        http_server.shutdown()
        http_server.server_close()
        service.close()
        thread.join(timeout=10)


def get(server, path):
    try:
        with urllib.request.urlopen(server.url + path, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def post(server, path, body, headers=None):
    request = urllib.request.Request(
        server.url + path,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json", **(headers or {})},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), exc.headers


class TestRoutes:
    def test_healthz_reports_readiness(self, server):
        status, payload = get(server, "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["version"]
        assert payload["uptime_s"] >= 0.0
        assert payload["inflight"] == 0
        assert payload["queue"].keys() == {"depth", "limit"}
        assert payload["workers"].keys() == {"total", "busy", "saturation"}
        assert payload["workers"]["total"] == 2
        assert 0.0 <= payload["workers"]["saturation"] <= 1.0

    def test_statsz_has_the_advertised_shape(self, server):
        status, payload = get(server, "/statsz")
        assert status == 200
        assert payload["queue"].keys() >= {"depth", "limit", "shed"}
        assert payload["latency_s"].keys() >= {"p50_s", "p95_s", "p99_s"}
        assert "engine" in payload and "requests" in payload
        assert "batches" in payload

    def test_unknown_path_is_404(self, server):
        status, payload = get(server, "/nope")
        assert status == 404

    def test_query_matches_direct_run(self, server):
        workspace = server.service.workspace
        status, payload, _ = post(
            server,
            "/query",
            {"algorithm": "LBC", "query_nodes": [3, 40, 77]},
        )
        assert status == 200
        queries = [workspace.network.location_at_node(n) for n in (3, 40, 77)]
        direct = LBC().run(workspace, queries)
        got = {
            (entry["object_id"], tuple(entry["vector"]))
            for entry in payload["skyline"]
        }
        want = {(p.object_id, tuple(p.vector)) for p in direct}
        assert got == want
        assert payload["stats"]["algorithm"] == "LBC"

    def test_on_edge_query_points_accepted(self, server):
        edge_id = sorted(server.service.workspace.network.edge_ids())[0]
        status, payload, _ = post(
            server,
            "/query",
            {"query_points": [{"edge": edge_id, "offset": 0.0}, {"node": 5}]},
        )
        assert status == 200
        assert payload["skyline"]

    @pytest.mark.parametrize(
        "body",
        [
            {"algorithm": "nope", "query_nodes": [1, 2]},
            {"algorithm": "LBC", "query_nodes": [10**9]},
            {"algorithm": "LBC", "query_nodes": "3"},
            {"algorithm": "LBC"},
            {"algorithm": "LBC", "query_points": [{"offset": 1.0}]},
        ],
    )
    def test_bad_queries_are_400(self, server, body):
        status, payload, _ = post(server, "/query", body)
        assert status == 400
        assert "error" in payload

    def test_malformed_json_is_400(self, server):
        request = urllib.request.Request(
            server.url + "/query", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(request, timeout=30)
        assert exc_info.value.code == 400

    def test_mutate_bumps_version_and_changes_answers(self, server):
        workspace = server.service.workspace
        network = workspace.network
        version_before = workspace.version
        edge_id = sorted(network.edge_ids())[3]
        new_length = network.edge(edge_id).length * 5.0
        status, payload, _ = post(
            server,
            "/mutate",
            {"op": "update_edge", "edge_id": edge_id, "length": new_length},
        )
        assert status == 200
        assert payload["workspace_version"] == version_before + 1
        assert network.edge(edge_id).length == pytest.approx(new_length)
        # Fresh query answers match a direct run on the mutated state.
        status, payload, _ = post(
            server, "/query", {"query_nodes": [3, 40, 77]}
        )
        assert status == 200
        queries = [network.location_at_node(n) for n in (3, 40, 77)]
        direct = LBC().run(workspace, queries)
        assert {e["object_id"] for e in payload["skyline"]} == {
            p.object_id for p in direct
        }

    def test_mutate_add_and_remove_object(self, server):
        workspace = server.service.workspace
        count_before = len(workspace.objects)
        status, _, _ = post(
            server,
            "/mutate",
            {
                "op": "add_object",
                "object_id": 999_001,
                "node": 7,
                "attributes": [0.5, 0.5],
            },
        )
        assert status == 200
        assert len(workspace.objects) == count_before + 1
        status, _, _ = post(
            server, "/mutate", {"op": "remove_object", "object_id": 999_001}
        )
        assert status == 200
        assert len(workspace.objects) == count_before

    def test_mutate_unknown_op_is_400(self, server):
        status, payload, _ = post(server, "/mutate", {"op": "defragment"})
        assert status == 400
        assert "unknown op" in payload["error"]

    def test_sloz_reports_objectives(self, server):
        status, payload = get(server, "/sloz")
        assert status == 200
        names = {o["name"] for o in payload["objectives"]}
        assert names == {"latency", "availability"}
        for objective in payload["objectives"]:
            assert 0.0 < objective["target"] < 1.0
            assert objective["windows"]
            for window in objective["windows"]:
                assert window.keys() >= {
                    "long_s", "short_s", "max_burn",
                    "long_burn", "short_burn", "violating",
                }
        # The fixture's traffic is healthy; nothing should be burning.
        assert payload["violating"] is False

    def test_debugz_shows_live_state(self, server):
        status, payload = get(server, "/debugz")
        assert status == 200
        assert payload.keys() >= {
            "inflight", "queue", "workers", "active_by_thread",
            "flight_recorder", "events", "watchdog",
        }
        assert payload["queue"]["limit"] == server.service.queue_limit
        assert payload["workers"]["total"] == 2
        assert payload["flight_recorder"]["ring_capacity"] >= 1


class TestInsightz:
    def test_insightz_serves_live_cohort_digests(self, server):
        # Drive at least one query so a cohort exists.
        status, payload, _ = post(
            server,
            "/query",
            {"algorithm": "LBC", "query_nodes": [0, 1]},
        )
        assert status == 200
        status, payload = get(server, "/insightz")
        assert status == 200
        assert payload["schema"] == "repro-insight-live"
        assert payload["alpha"] > 0.0
        assert payload["observed"] >= 1
        assert payload["cohorts"]
        cohort = next(iter(payload["cohorts"].values()))
        assert cohort["count"] >= 1
        assert {"p50", "p90", "p99", "mean", "max"} <= set(
            cohort["latency_s"]
        )
        assert {"nodes_settled", "page_misses"} <= set(cohort["counters"])

    def test_insight_and_event_log_gauges_reach_metricsz(self, server):
        from repro.obs.metrics import parse_prometheus_text

        with urllib.request.urlopen(
            server.url + "/metricsz", timeout=30
        ) as response:
            families = parse_prometheus_text(response.read().decode())
        assert "repro_insight_latency_seconds" in families
        assert "repro_insight_queries_total" in families
        samples = families["repro_insight_queries_total"]["samples"]
        assert samples, "at least one cohort should have been bridged"
        assert all("cohort" in labels for _, labels, _ in samples)
        latency = families["repro_insight_latency_seconds"]["samples"]
        quantiles = {labels["quantile"] for _, labels, _ in latency}
        assert quantiles == {"0.5", "0.9", "0.99"}
        # Event-log health: the server fixture has no event log, so the
        # queue-depth gauge is absent here; it is covered by the insight
        # E2E test with an event-logging service.


class TestTraceIdPropagation:
    def test_trace_id_honored_and_echoed(self, server):
        status, payload, headers = post(
            server,
            "/query",
            {"algorithm": "LBC", "query_nodes": [3, 40]},
            headers={"X-Repro-Trace-Id": "client-trace-0042"},
        )
        assert status == 200
        assert payload["trace_id"] == "client-trace-0042"
        assert headers["X-Repro-Trace-Id"] == "client-trace-0042"
        # The retained trace tree carries the client's id end to end.
        trace_ids = {
            root.trace_id for root in server.service.tracer.traces()
        }
        assert "client-trace-0042" in trace_ids

    def test_trace_id_echoed_on_errors_too(self, server):
        status, payload, headers = post(
            server,
            "/query",
            {"algorithm": "nope", "query_nodes": [3]},
            headers={"X-Repro-Trace-Id": "client-trace-err"},
        )
        assert status == 400
        assert headers["X-Repro-Trace-Id"] == "client-trace-err"

    def test_invalid_trace_id_is_400(self, server):
        status, payload, _ = post(
            server,
            "/query",
            {"algorithm": "LBC", "query_nodes": [3]},
            headers={"X-Repro-Trace-Id": "bad id with spaces!"},
        )
        assert status == 400
        assert "X-Repro-Trace-Id" in payload["error"]

    def test_generated_trace_id_returned_without_header(self, server):
        status, payload, _ = post(
            server, "/query", {"algorithm": "LBC", "query_nodes": [3, 40]}
        )
        assert status == 200
        assert payload["trace_id"]


class TestNo500s:
    def test_no_500s_were_served(self, server):
        assert server.error_responses == 0
