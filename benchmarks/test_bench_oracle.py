"""The preprocessed-state claim: an oracle index collapses query cost.

The quick suite's ``query/LBC/au/q4/preprocessed`` workload answers the
same query point as ``query/LBC/au/q4/cold`` but with a hub-label index
built before the measured repeats.  The tentpole claim of the oracle
layer is that the preprocessed state does **at least 5× less** work on
the settled-node + page-miss axis than the cold online run — the index
replaces graph wavefronts with O(|label|) merge scans whose records are
spatially packed into a handful of pages.

These assertions are exact (counters, not timings), so they run in the
CI test job with ``--benchmark-disable`` alongside the other gate
assertions.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import _run_query_workload
from repro.bench.suite import QueryWorkload
from repro.experiments.harness import WorkloadCache

SPEEDUP_FLOOR = 5


def _workload(workload_id: str, **overrides) -> QueryWorkload:
    base = dict(
        workload_id=workload_id,
        algorithm="LBC",
        network="AU",
        scale=0.05,
        omega=0.5,
        query_count=4,
        repeats=1,
    )
    base.update(overrides)
    return QueryWorkload(**base)


def _work_total(counters: dict[str, int]) -> int:
    """Settled nodes plus every physical page miss, oracle included.

    ``total_pages`` already folds in ``oracle_pages``; adding the
    oracle's own settled nodes keeps the comparison honest for the
    ``ch`` kind, whose lookups do settle (upward-graph) nodes.
    """
    return (
        counters["nodes_settled"]
        + counters["oracle_nodes_settled"]
        + counters["total_pages"]
    )


@pytest.fixture(scope="module")
def cache() -> WorkloadCache:
    return WorkloadCache()


class TestPreprocessedState:
    def test_hublabel_beats_cold_by_5x(self, cache):
        cold, _ = _run_query_workload(_workload("query/LBC/au/q4/cold"), cache)
        warm_index, _ = _run_query_workload(
            _workload(
                "query/LBC/au/q4/preprocessed",
                distance_backend="hublabel",
                preprocessed=True,
            ),
            cache,
        )
        assert warm_index["skyline_count"] == cold["skyline_count"]
        assert warm_index["oracle_fallbacks"] == 0
        # The whole point of preprocessing: online search never runs.
        assert warm_index["nodes_settled"] == 0
        assert warm_index["network_pages"] == 0
        assert _work_total(cold) >= SPEEDUP_FLOOR * _work_total(warm_index)

    def test_oracle_counters_are_deterministic(self, cache):
        # Two repeats through the runner raise CounterDrift on any
        # mismatch; reaching the assertion means the oracle's page and
        # scan counters reproduced exactly.
        counters, _ = _run_query_workload(
            _workload(
                "query/LBC/au/q4/preprocessed",
                distance_backend="hublabel",
                preprocessed=True,
                repeats=2,
            ),
            cache,
        )
        assert counters["oracle_label_entries"] > 0
        assert counters["oracle_pages"] > 0
