"""Visualise how much network each algorithm touches.

Renders SVGs openable in any browser: the CE footprint (Dijkstra
wavefronts around every query point), the LBC footprint (A* cones plus
lower-bound probes), and the final skyline.  The footprint difference
IS the paper's result — seeing it beats reading Figure 5.

Run with::

    python examples/visualize_search.py [outdir]
"""

import sys
from pathlib import Path

from repro import CE, LBC, Workspace, build_preset, extract_objects
from repro.datasets import select_query_points
from repro.viz import NetworkRenderer, render_query, save_svg


class RecordingStore:
    """Wraps the network store and records every junction touched."""

    def __init__(self, inner):
        self._inner = inner
        self.touched: set[int] = set()

    def touch_node(self, node_id):
        self.touched.add(node_id)
        self._inner.touch_node(node_id)

    def __getattr__(self, name):
        return getattr(self._inner, name)


def footprint_of(workspace, algorithm, queries) -> set[int]:
    """Run ``algorithm`` and return the junctions it touched."""
    recorder = RecordingStore(workspace.store)
    original = workspace.store
    workspace.store = recorder
    try:
        workspace.reset_io(cold=True)
        algorithm.run(workspace, queries)
    finally:
        workspace.store = original
    return recorder.touched


def main() -> None:
    outdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    outdir.mkdir(parents=True, exist_ok=True)

    network = build_preset("NA", scale=0.10)
    objects = extract_objects(network, omega=0.5, seed=1)
    workspace = Workspace.build(network, objects)
    queries = select_query_points(network, 4, seed=100)

    result = LBC().run(workspace, queries)
    assert CE().run(workspace, queries).same_answer(result)

    from repro.core import LBCLazy

    footprints = {
        "ce": footprint_of(workspace, CE(), queries),
        "lbc": footprint_of(workspace, LBC(), queries),
        "lbc-lazy": footprint_of(workspace, LBCLazy(), queries),
    }

    for name in footprints:
        renderer = NetworkRenderer(network)
        renderer.add_wavefront(footprints[name])
        renderer.add_objects(workspace.objects)
        renderer.add_queries(queries)
        renderer.add_skyline(result)
        renderer.add_title(
            f"{name.upper()}: {len(footprints[name])} junctions touched, "
            f"{len(result)} skyline points"
        )
        path = outdir / f"footprint_{name.replace(chr(45), chr(95))}.svg"
        save_svg(renderer.to_svg(), path)
        print(f"wrote {path} ({len(footprints[name])} junctions shaded)")

    answer_path = outdir / "skyline.svg"
    save_svg(render_query(workspace, queries, result), answer_path)
    print(f"wrote {answer_path}")

    ce_n = len(footprints["ce"])
    for name in ("lbc", "lbc-lazy"):
        n = len(footprints[name])
        if n:
            print(f"CE touches {ce_n / n:.1f}x the junctions of {name.upper()}")


if __name__ == "__main__":
    main()
