"""Unit tests for repro.geometry.point."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import (
    ORIGIN,
    Point,
    bounding_coordinates,
    centroid,
    euclidean,
    total_path_length,
)

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
points = st.builds(Point, finite, finite)


class TestPointBasics:
    def test_distance_to_pythagoras(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_distance_to_self_is_zero(self):
        p = Point(1.5, -2.5)
        assert p.distance_to(p) == 0.0

    def test_squared_distance_matches_distance(self):
        a, b = Point(1, 2), Point(4, 6)
        assert a.squared_distance_to(b) == pytest.approx(a.distance_to(b) ** 2)

    def test_manhattan_distance(self):
        assert Point(0, 0).manhattan_distance_to(Point(3, -4)) == 7.0

    def test_midpoint(self):
        assert Point(0, 0).midpoint(Point(2, 4)) == Point(1, 2)

    def test_translated(self):
        assert Point(1, 1).translated(2, -3) == Point(3, -2)

    def test_lerp_endpoints_and_middle(self):
        a, b = Point(0, 0), Point(10, 20)
        assert a.lerp(b, 0.0) == a
        assert a.lerp(b, 1.0) == b
        assert a.lerp(b, 0.5) == Point(5, 10)

    def test_as_tuple_and_iter(self):
        p = Point(1.0, 2.0)
        assert p.as_tuple() == (1.0, 2.0)
        assert tuple(p) == (1.0, 2.0)

    def test_subtraction_gives_components(self):
        assert Point(5, 7) - Point(2, 3) == (3, 4)

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Point(0, 0).x = 1.0

    def test_hashable_as_dict_key(self):
        d = {Point(1, 2): "a", Point(1, 2): "b"}
        assert d == {Point(1, 2): "b"}

    def test_origin_constant(self):
        assert ORIGIN == Point(0.0, 0.0)

    def test_euclidean_function_matches_method(self):
        a, b = Point(1, 2), Point(-3, 5)
        assert euclidean(a, b) == a.distance_to(b)


class TestPointAggregates:
    def test_centroid_of_single_point(self):
        assert centroid([Point(3, 4)]) == Point(3, 4)

    def test_centroid_of_square_corners(self):
        pts = [Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)]
        assert centroid(pts) == Point(0.5, 0.5)

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])

    def test_bounding_coordinates(self):
        pts = [Point(1, 5), Point(-2, 3), Point(4, -1)]
        assert bounding_coordinates(pts) == (-2, -1, 4, 5)

    def test_bounding_coordinates_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_coordinates([])

    def test_total_path_length_of_l_shape(self):
        pts = [Point(0, 0), Point(3, 0), Point(3, 4)]
        assert total_path_length(pts) == 7.0

    def test_total_path_length_single_point(self):
        assert total_path_length([Point(1, 1)]) == 0.0


class TestPointProperties:
    @given(points, points)
    def test_distance_symmetric(self, a, b):
        assert a.distance_to(b) == b.distance_to(a)

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        direct = a.distance_to(c)
        via = a.distance_to(b) + b.distance_to(c)
        assert direct <= via + 1e-7 * max(1.0, direct)

    @given(points, points)
    def test_midpoint_equidistant(self, a, b):
        m = a.midpoint(b)
        assert math.isclose(
            a.distance_to(m), b.distance_to(m), rel_tol=1e-9, abs_tol=1e-6
        )

    @given(points, points, st.floats(min_value=0, max_value=1))
    def test_lerp_stays_on_segment(self, a, b, t):
        p = a.lerp(b, t)
        length = a.distance_to(b)
        assert a.distance_to(p) + p.distance_to(b) == pytest.approx(
            length, rel=1e-7, abs=1e-6
        )
