"""The queryable oracle handle the distance engine consults.

:class:`DistanceOracle` wraps an :class:`~repro.oracle.index.
OracleIndex` with the location semantics every other distance path in
the repo uses: a :class:`~repro.network.graph.NetworkLocation` is a
junction or an on-edge point, so

``d(a, b) = min(direct same-edge walk,
min over seed pairs of d_a + d_nodes(u, w) + d_b)``

where the seeds come from :meth:`RoadNetwork.seed_frontier` — exactly
the decomposition :class:`~repro.network.dijkstra.DijkstraExpander`
resolves online, which is what makes oracle answers drop-in exact.

Cost accounting per node-pair lookup:

* ``hublabel`` — both labels are read (one page touch each through the
  :class:`~repro.oracle.store.OracleStore`) and the merge scan charges
  ``oracle_label_entries``;
* ``ch`` — every node the bidirectional upward search settles reads
  its shortcut record (page touch) and charges
  ``oracle_nodes_settled``.

A handle can be marked **stale** after a network mutation: stale
handles refuse to answer (the engine then records ``oracle_fallbacks``
and resolves online), so a persisted index can never serve distances
of a graph that no longer exists.
"""

from __future__ import annotations

import math

from repro.network.graph import NetworkLocation, RoadNetwork
from repro.obs import tracing
from repro.oracle.ch import ch_node_distance
from repro.oracle.hublabel import hub_label_distance
from repro.oracle.index import OracleIndex
from repro.oracle.store import OracleStore

INFINITY = math.inf


class DistanceOracle:
    """Query-side view of one preprocessed index."""

    __slots__ = ("index", "kind", "network", "store", "stale", "lookups")

    def __init__(
        self,
        index: OracleIndex,
        network: RoadNetwork,
        store: OracleStore | None = None,
    ) -> None:
        self.index = index
        self.kind = index.kind
        self.network = network
        self.store = store
        self.stale = False
        self.lookups = 0

    def mark_stale(self) -> None:
        """Refuse further answers (the backing graph mutated)."""
        self.stale = True

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def node_distance(self, source: int, target: int) -> float:
        """Exact junction-to-junction distance (inf when disconnected)."""
        if self.kind == "hublabel":
            assert self.index.labels is not None
            if self.store is not None:
                self.store.touch(source)
                self.store.touch(target)
            best, scanned = hub_label_distance(
                self.index.labels[source], self.index.labels[target]
            )
            tracing.record("oracle_label_entries", scanned)
            return best
        store = self.store

        def on_settle(node: int) -> None:
            tracing.record("oracle_nodes_settled")
            if store is not None:
                store.touch(node)

        return ch_node_distance(
            self.index.upward, source, target, on_settle=on_settle
        )

    def distance(self, a: NetworkLocation, b: NetworkLocation) -> float:
        """Exact network distance between two locations."""
        self.lookups += 1
        best = INFINITY
        direct = self.network.direct_edge_distance(a, b)
        if direct is not None:
            best = direct
        for u, to_u in self.network.seed_frontier(a):
            for w, to_w in self.network.seed_frontier(b):
                candidate = to_u + self.node_distance(u, w) + to_w
                if candidate < best:
                    best = candidate
        return best

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def reset_io(self, cold: bool = True) -> None:
        """Zero the store's counters; ``cold`` also empties its buffer."""
        if self.store is not None:
            self.store.reset(cold=cold)
