"""Seeded telemetry-vocabulary violations."""

from repro.obs import tracing


def run():
    tracing.record("nodes_setled")  # EXPECT: REPRO-TELE01
    with tracing.span("warmup.phase"):  # EXPECT: REPRO-TELE02
        return None


def profile():
    # A profiler-style span name nobody registered in obs/names.py.
    with tracing.span("profiler.sample"):  # EXPECT: REPRO-TELE02
        tracing.record("samples_taken")  # EXPECT: REPRO-TELE01


def analyze():
    # Insight-plane names are vocabulary too; these are not in it.
    with tracing.span("insight.bogus"):  # EXPECT: REPRO-TELE02
        return None


def register(registry):
    registry.counter("repro_bogus_total", "a family nobody scrapes")  # EXPECT: REPRO-TELE03
    registry.gauge("repro_insight_bogus_seconds", "unregistered")  # EXPECT: REPRO-TELE03
