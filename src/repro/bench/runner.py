"""Suite execution and ``BENCH_*.json`` emission.

The runner's contract splits every benchmark's record in two:

* ``counters`` — deterministic cost figures (pages read per pool,
  nodes settled, distance computations, memo hits, result sizes) read
  off the per-query tracing span totals via
  :class:`~repro.core.stats.QueryStats`.  The runner *verifies*
  determinism as it goes: every timing repeat re-runs the workload and
  any counter drift between repeats raises :class:`CounterDrift`
  rather than silently averaging — a nondeterministic benchmark is a
  bug, not a noisy measurement.
* ``timing_s`` — wall-time min/mean/p50/max over the repeats.
  Advisory only: the comparator warns on timing movement and never
  fails on it.

Warm points measure the *second* run after a cold reset (engine memo,
wavefront pool and buffers populated by an unmeasured warming run), so
"warm" is a pinned state rather than "whatever the previous workload
left behind".
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import subprocess
import time
from dataclasses import replace

from repro.core import CE, EDC, LBC, Workspace
from repro.core.stats import QueryStats
from repro.datasets import build_preset, extract_objects, select_query_points
from repro.experiments.harness import ExperimentConfig, WorkloadCache
from repro.bench.suite import (
    QueryWorkload,
    ServiceWorkload,
    SUITE_VERSION,
    Workload,
    suite_workloads,
)

ARTIFACT_SCHEMA = "repro-bench"
ARTIFACT_SCHEMA_VERSION = 1

ALGORITHMS = {"CE": CE, "EDC": EDC, "LBC": LBC}

#: The deterministic counter keys every benchmark record carries.
COUNTER_KEYS = (
    "nodes_settled",
    "network_pages",
    "index_pages",
    "middle_pages",
    "total_pages",
    "distance_computations",
    "lb_expansions",
    "engine_hits",
    "engine_misses",
    "skyline_count",
    "candidate_count",
    "oracle_pages",
    "oracle_nodes_settled",
    "oracle_label_entries",
    "oracle_fallbacks",
)


class CounterDrift(AssertionError):
    """A workload's counters differed between two repeats."""

    def __init__(self, workload_id: str, first: dict, second: dict) -> None:
        diffs = {
            key: (first.get(key), second.get(key))
            for key in sorted(set(first) | set(second))
            if first.get(key) != second.get(key)
        }
        super().__init__(
            f"nondeterministic counters in {workload_id}: {diffs}"
        )
        self.workload_id = workload_id
        self.diffs = diffs


def _counters_of(stats: QueryStats) -> dict[str, int]:
    counters = {key: int(getattr(stats, key)) for key in COUNTER_KEYS}
    return counters


def _merge_counters(rows: list[dict[str, int]]) -> dict[str, int]:
    out: dict[str, int] = {key: 0 for key in COUNTER_KEYS}
    for row in rows:
        for key, value in row.items():
            out[key] = out.get(key, 0) + value
    return out


def _timing_summary(samples: list[float]) -> dict[str, float]:
    return {
        "repeats": len(samples),
        "min": round(min(samples), 6),
        "mean": round(statistics.fmean(samples), 6),
        "p50": round(statistics.median(samples), 6),
        "max": round(max(samples), 6),
    }


def _run_query_workload(
    workload: QueryWorkload, cache: WorkloadCache
) -> tuple[dict[str, int], list[float]]:
    config = ExperimentConfig(
        network=workload.network,
        scale=workload.scale,
        omega=workload.omega,
        query_count=workload.query_count,
        query_seed=workload.query_seed,
        distance_backend=workload.distance_backend,
    )
    workspace = cache.workspace(config)
    queries = select_query_points(
        workspace.network,
        workload.query_count,
        region_fraction=config.region_fraction,
        seed=workload.query_seed,
    )
    algorithm = ALGORITHMS[workload.algorithm]()
    if workload.preprocessed:
        # Build the oracle index once, before any measured repeat: the
        # repeats then pay only query-time oracle cost (its page store
        # still resets cold with everything else below).
        workspace.engine.ensure_oracle()
    counters: dict[str, int] | None = None
    timings: list[float] = []
    for _ in range(max(1, workload.repeats)):
        workspace.reset_io(cold=True)
        if workload.warm:
            algorithm.run(workspace, queries)  # unmeasured warming run
        started = time.perf_counter()
        result = algorithm.run(workspace, queries)
        timings.append(time.perf_counter() - started)
        repeat_counters = _counters_of(result.stats)
        if counters is None:
            counters = repeat_counters
        elif counters != repeat_counters:
            raise CounterDrift(workload.workload_id, counters, repeat_counters)
    assert counters is not None
    return counters, timings


def _run_service_workload(
    workload: ServiceWorkload,
) -> tuple[dict[str, int], list[float]]:
    # The serving workload builds its own workspace (never the shared
    # cache): a QueryService registers its metric families on the
    # workspace registry, and two services over one workspace would
    # collide there.
    from repro.service.service import QueryService

    network = build_preset(workload.network, scale=workload.scale)
    objects = extract_objects(network, omega=workload.omega, seed=1)
    counters: dict[str, int] | None = None
    timings: list[float] = []
    for _ in range(max(1, workload.repeats)):
        workspace = Workspace.build(
            network,
            objects,
            paged=True,
            distance_backend=workload.distance_backend,
        )
        rows: list[dict[str, int]] = []
        with QueryService(
            workspace, workers=1, batch_window_s=0.0, max_batch=1
        ) as service:
            started = time.perf_counter()
            for index in range(workload.requests):
                queries = select_query_points(
                    network,
                    workload.query_count,
                    region_fraction=0.10,
                    seed=workload.query_seed + index,
                )
                result = service.query(workload.algorithm, queries)
                rows.append(_counters_of(result.stats))
            timings.append(time.perf_counter() - started)
        repeat_counters = _merge_counters(rows)
        repeat_counters["requests"] = workload.requests
        if counters is None:
            counters = repeat_counters
        elif counters != repeat_counters:
            raise CounterDrift(workload.workload_id, counters, repeat_counters)
    assert counters is not None
    return counters, timings


def run_workload(
    workload: Workload, cache: WorkloadCache
) -> dict:
    """Execute one workload; returns its artifact record."""
    if isinstance(workload, QueryWorkload):
        counters, timings = _run_query_workload(workload, cache)
    else:
        counters, timings = _run_service_workload(workload)
    return {
        "id": workload.workload_id,
        "kind": workload.kind,
        "params": workload.params(),
        "counters": counters,
        "timing_s": _timing_summary(timings),
    }


def current_revision() -> str:
    """Identify this source tree: env override, then git, then unknown."""
    rev = os.environ.get("REPRO_BENCH_REV")
    if rev:
        return rev
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def default_artifact_name(revision: str | None = None) -> str:
    return f"BENCH_{revision or current_revision()}.json"


def run_suite(
    suite: str,
    repeats: int | None = None,
    revision: str | None = None,
    progress=None,
) -> dict:
    """Run a named suite and return the artifact dictionary.

    ``repeats`` overrides every workload's timing-repeat count (the CI
    quick gate uses 1: counters don't need repetition to be exact, and
    its timings are advisory anyway).  ``progress`` is an optional
    ``callable(str)`` for line-by-line status output.
    """
    workloads = suite_workloads(suite)
    cache = WorkloadCache()
    records = []
    for workload in workloads:
        if repeats is not None:
            workload = _with_repeats(workload, repeats)
        record = run_workload(workload, cache)
        if progress is not None:
            timing = record["timing_s"]
            progress(
                f"{record['id']}: pages={record['counters']['total_pages']} "
                f"nodes={record['counters']['nodes_settled']} "
                f"p50={timing['p50']:.4f}s"
            )
        records.append(record)
    return {
        "schema": ARTIFACT_SCHEMA,
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "suite": suite,
        "suite_version": SUITE_VERSION,
        "revision": revision or current_revision(),
        "created_unix": round(time.time(), 3),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "benchmarks": records,
    }


def _with_repeats(workload: Workload, repeats: int) -> Workload:
    return replace(workload, repeats=repeats)


def write_artifact(artifact: dict, path: str) -> str:
    """Write the artifact as stable, human-diffable JSON."""
    with open(path, "w") as handle:
        json.dump(artifact, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path
