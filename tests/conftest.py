"""Shared builders and fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.geometry import Point
from repro.network import ObjectSet, RoadNetwork, SpatialObject


def build_random_network(
    node_count: int,
    extra_edges: int,
    seed: int,
    detour_max: float = 1.0,
) -> RoadNetwork:
    """A connected random network: a shuffled chain plus random chords.

    ``detour_max`` adds up to that much relative length on top of each
    chord (0 = lengths equal straight-line distance).
    """
    rng = random.Random(seed)
    network = RoadNetwork()
    points = [Point(rng.random(), rng.random()) for _ in range(node_count)]
    for i, p in enumerate(points):
        network.add_node(i, p)
    order = list(range(node_count))
    rng.shuffle(order)
    for a, b in zip(order, order[1:]):
        chord = points[a].distance_to(points[b])
        network.add_edge(a, b, length=chord * (1.0 + rng.random() * detour_max))
    for _ in range(extra_edges):
        a, b = rng.sample(range(node_count), 2)
        chord = points[a].distance_to(points[b])
        network.add_edge(a, b, length=chord * (1.0 + rng.random() * detour_max))
    return network


def place_random_objects(
    network: RoadNetwork,
    count: int,
    seed: int,
    attribute_count: int = 0,
    first_id: int = 0,
) -> ObjectSet:
    """Objects at random offsets on random edges, optional attributes."""
    rng = random.Random(seed)
    edge_ids = sorted(network.edge_ids())
    objects = []
    for i in range(count):
        edge = network.edge(rng.choice(edge_ids))
        offset = edge.length * rng.uniform(0.01, 0.99)
        location = network.location_on_edge(edge.edge_id, offset)
        attributes = tuple(rng.random() for _ in range(attribute_count))
        objects.append(SpatialObject(first_id + i, location, attributes))
    return ObjectSet.build(network, objects)


def random_locations(network: RoadNetwork, count: int, seed: int):
    """A mix of node and on-edge locations for query points."""
    rng = random.Random(seed)
    node_ids = sorted(network.node_ids())
    edge_ids = sorted(network.edge_ids())
    locations = []
    for _ in range(count):
        if rng.random() < 0.5 or not edge_ids:
            locations.append(network.location_at_node(rng.choice(node_ids)))
        else:
            edge = network.edge(rng.choice(edge_ids))
            offset = edge.length * rng.uniform(0.05, 0.95)
            locations.append(network.location_on_edge(edge.edge_id, offset))
    return locations


@pytest.fixture
def tiny_network() -> RoadNetwork:
    """A hand-built 6-node network with known shortest paths.

    Layout (unit square)::

        3 --- 4 --- 5          node 0 at (0, 0), node 5 at (1, 1)
        |     |     |          vertical edges length 0.5
        0 --- 1 --- 2          horizontal edges length 0.5
    """
    network = RoadNetwork()
    coordinates = [
        (0.0, 0.0), (0.5, 0.0), (1.0, 0.0),
        (0.0, 0.5), (0.5, 0.5), (1.0, 0.5),
    ]
    for i, (x, y) in enumerate(coordinates):
        network.add_node(i, Point(x, y))
    for u, v in [(0, 1), (1, 2), (3, 4), (4, 5), (0, 3), (1, 4), (2, 5)]:
        network.add_edge(u, v)
    return network


@pytest.fixture
def medium_network() -> RoadNetwork:
    """A 60-node random connected network with detours."""
    return build_random_network(60, 45, seed=1234, detour_max=0.8)
