"""``python -m repro.insight`` — same entry as ``repro insight``."""

from repro.insight.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
