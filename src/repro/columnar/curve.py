"""Hilbert space-filling curve: cell index and bulk sort order.

The curve serves two build-time consumers: the network store clusters
adjacency pages along it (:mod:`repro.network.storage`, which imports
the index from here), and the R-tree's column bulk load packs leaves in
curve order so spatially close objects share nodes.
"""

from __future__ import annotations


def hilbert_index(x: int, y: int, order: int) -> int:
    """Index of cell ``(x, y)`` on a Hilbert curve of ``2^order`` cells/side.

    The classic bit-twiddling d2xy inverse; used only at build time to
    pick a locality-preserving ordering, so clarity beats speed.
    """
    rx = ry = 0
    d = 0
    s = 1 << (order - 1)
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        # Rotate the quadrant.
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        s >>= 1
    return d


def hilbert_sort_indices(xs, ys, count: int, order: int = 10) -> list[int]:
    """Indices ``0..count-1`` sorted by Hilbert index of ``(xs[i], ys[i])``.

    Coordinates are snapped onto the ``2^order``-cell grid spanning
    their bounding box; ties (same cell) break by original index, so
    the permutation is deterministic.
    """
    if count <= 0:
        return []
    min_x = max_x = xs[0]
    min_y = max_y = ys[0]
    i = 1
    while i < count:
        x = xs[i]
        y = ys[i]
        if x < min_x:
            min_x = x
        elif x > max_x:
            max_x = x
        if y < min_y:
            min_y = y
        elif y > max_y:
            max_y = y
        i += 1
    side = (1 << order) - 1
    span_x = (max_x - min_x) or 1.0
    span_y = (max_y - min_y) or 1.0
    keys = [0] * count
    i = 0
    while i < count:
        gx = int((xs[i] - min_x) / span_x * side)
        gy = int((ys[i] - min_y) / span_y * side)
        keys[i] = hilbert_index(gx, gy, order)
        i += 1
    return sorted(range(count), key=keys.__getitem__)
