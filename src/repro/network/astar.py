"""Resumable A* search with explicit path-distance lower bounds.

Section 3 and Section 4.3 of the paper lean on three A* properties:

1. With the Euclidean heuristic (admissible and consistent because every
   edge is at least as long as the straight line between its endpoints),
   nodes are settled with exact distances, so a per-query-point expander
   can keep a hash table of settled nodes and reuse it across many
   destinations ("each query point keeps a hash table to store the
   intermediate nodes visited, together with their network distances",
   Section 6.1, after [26]).
2. At any moment, the minimum of ``g(v) + dE(v, destination)`` over the
   frontier is a lower bound on the still-unknown network distance —
   the **path distance lower bound** ``plb`` (Section 4.3).  It starts
   at the Euclidean source–destination distance and only grows, reaching
   the exact network distance at termination.
3. The search can be advanced *one node at a time*, which is how LBC
   buys partial distance computation: it expands the query point whose
   current ``plb`` to the candidate is smallest, and stops as soon as
   dominance is decided.

:class:`AStarExpander` owns the persistent state (settled distances and
frontier ``g`` values); :class:`LowerBoundSearch` is one retargeted
search over that state.  Only one search per expander may be active at
a time — a new search invalidates the previous one, because they share
the underlying frontier.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.index.heap import AddressableHeap
from repro.network.graph import NetworkLocation, RoadNetwork
from repro.network.storage import NetworkStore
from repro.obs import tracing

INFINITY = math.inf

HeuristicFn = Callable[[int, NetworkLocation], float]
"""A consistent lower bound: (node id, target location) -> distance."""

_VIRTUAL_GOAL = -1
"""Heap key for the pseudo-node standing in for an on-edge destination.

Real node ids are non-negative; the virtual goal hangs off the
destination edge's endpoints with the object's edge-end offsets as
weights, and has a zero heuristic.
"""


class AStarExpander:
    """Persistent A* state for one source location.

    ``heuristic`` optionally replaces the Euclidean distance estimate:
    it receives ``(node_id, target_location)`` and must return a
    *consistent* lower bound of the network distance from the node to
    the target (``h(x) <= w(x, y) + h(y)`` for every edge).  The
    landmark heuristic in :mod:`repro.network.landmarks` is the shipped
    alternative — tighter than Euclidean on high-detour networks, which
    strengthens LBC's path-distance lower bounds.  An inconsistent
    heuristic silently breaks the settled-distance reuse; there is no
    runtime check (it would cost more than the search).
    """

    __slots__ = (
        "_epoch",
        "frontier",
        "heuristic",
        "network",
        "nodes_settled",
        "relaxations",
        "settled",
        "source",
        "store",
    )

    def __init__(
        self,
        network: RoadNetwork,
        source: NetworkLocation,
        store: NetworkStore | None = None,
        heuristic: "HeuristicFn | None" = None,
    ) -> None:
        self.network = network
        self.source = source
        self.store = store
        self.heuristic = heuristic
        self.settled: dict[int, float] = {}
        self.frontier: dict[int, float] = {}
        self.nodes_settled = 0
        self.relaxations = 0
        self._epoch = 0
        for node, dist in network.seed_frontier(source):
            existing = self.frontier.get(node)
            if existing is None or dist < existing:
                self.frontier[node] = dist

    def search_toward(self, target: NetworkLocation) -> "LowerBoundSearch":
        """Begin (or restart) a search; invalidates any previous search."""
        self._epoch += 1
        return LowerBoundSearch(self, target, self._epoch)

    def distance_to(self, target: NetworkLocation) -> float:
        """Exact network distance to ``target`` (inf when unreachable)."""
        return self.search_toward(target).run_to_completion()

    def heuristic_to(self, target: NetworkLocation) -> float:
        """The initial lower bound: straight-line source-target distance."""
        return self.source.point.distance_to(target.point)


class LowerBoundSearch:
    """One incremental A* search from an expander toward one target."""

    __slots__ = (
        "_epoch",
        "_expander",
        "_goal_edge",
        "_goal_node",
        "_h",
        "_h_cache",
        "_heap",
        "_plb",
        "distance",
        "done",
        "expansions",
        "target",
    )

    def __init__(
        self, expander: AStarExpander, target: NetworkLocation, epoch: int
    ) -> None:
        self._expander = expander
        self._epoch = epoch
        self.target = target
        network = expander.network

        if target.node_id is not None:
            self._goal_node: int | None = target.node_id
            self._goal_edge = None
        else:
            assert target.edge_id is not None
            self._goal_node = None
            self._goal_edge = network.edge(target.edge_id)

        target_point = target.point
        self._h_cache: dict[int, float] = {}
        custom = expander.heuristic

        def h(node: int) -> float:
            value = self._h_cache.get(node)
            if value is None:
                value = network.node_point(node).distance_to(target_point)
                if custom is not None:
                    value = max(value, custom(node, target))
                self._h_cache[node] = value
            return value

        self._h = h
        self.done = False
        self.distance = INFINITY
        self.expansions = 0
        # The paper's initial path-distance lower bound: the Euclidean
        # source-target distance.  _finish() overwrites it with the
        # exact distance for searches that conclude immediately.
        self._plb = expander.heuristic_to(target)
        self._heap: AddressableHeap[int] = AddressableHeap()

        # Fast path: a settled node target, or an edge target with both
        # endpoints settled, has an exact distance already — every path
        # to it passes one of those settled points.  No frontier re-key
        # is needed, which is the common case once an expander has grown
        # past the candidate region.
        if self._goal_node is not None:
            settled = expander.settled.get(self._goal_node)
            if settled is not None:
                self._finish(settled)
                return
        else:
            assert self._goal_edge is not None
            settled_u = expander.settled.get(self._goal_edge.u)
            settled_v = expander.settled.get(self._goal_edge.v)
            if settled_u is not None and settled_v is not None:
                goal_cost = min(
                    settled_u + target.offset,
                    settled_v + (self._goal_edge.length - target.offset),
                )
                direct = network.direct_edge_distance(expander.source, target)
                if direct is not None:
                    goal_cost = min(goal_cost, direct)
                self._finish(goal_cost)
                return

        # Re-key the live frontier under this target's heuristic.
        self._heap = AddressableHeap.from_items(
            [(node, g + h(node)) for node, g in expander.frontier.items()]
        )

        if self._goal_edge is not None:
            goal_cost = self._goal_candidate_from_settled()
            direct = network.direct_edge_distance(expander.source, target)
            if direct is not None:
                goal_cost = min(goal_cost, direct)
            if goal_cost < INFINITY or self._heap:
                self._heap.push(_VIRTUAL_GOAL, goal_cost)
            else:
                self._finish(INFINITY)

        if not self.done and self._heap:
            self._plb = max(self._plb, self._heap.min_priority())
        if not self.done and not self._heap:
            self._finish(INFINITY)

    def _goal_candidate_from_settled(self) -> float:
        assert self._goal_edge is not None and self.target.edge_id is not None
        expander = self._expander
        edge = self._goal_edge
        offset = self.target.offset
        best = INFINITY
        settled_u = expander.settled.get(edge.u)
        if settled_u is not None:
            best = min(best, settled_u + offset)
        settled_v = expander.settled.get(edge.v)
        if settled_v is not None:
            best = min(best, settled_v + (edge.length - offset))
        return best

    def _finish(self, distance: float) -> None:
        self.done = True
        self.distance = distance
        self._plb = distance

    # ------------------------------------------------------------------
    # Incremental interface
    # ------------------------------------------------------------------
    @property
    def plb(self) -> float:
        """The current path-distance lower bound.

        Monotonically non-decreasing across :meth:`expand_step` calls;
        equal to the exact network distance once :attr:`done`.
        """
        return self._plb

    def _check_live(self) -> None:
        if self._epoch != self._expander._epoch:
            raise RuntimeError(
                "stale LowerBoundSearch: a newer search was started on the "
                "same expander"
            )

    def expand_step(self) -> float:
        """Settle one node (or conclude); returns the updated ``plb``."""
        self._check_live()
        if self.done:
            return self._plb
        expander = self._expander
        network = expander.network

        if not self._heap:
            self._finish(INFINITY)
            return self._plb

        item, key = self._heap.pop()
        self._plb = max(self._plb, key)
        self.expansions += 1

        if item == _VIRTUAL_GOAL:
            self._finish(key)
            return self._plb

        node = item
        g = expander.frontier.pop(node)
        expander.settled[node] = g
        expander.nodes_settled += 1
        tracing.record("nodes_settled")
        if expander.store is not None:
            expander.store.touch_node(node)

        goal_edge = self._goal_edge
        for neighbor, edge_id in network.neighbors(node):
            edge = network.edge(edge_id)
            if goal_edge is not None and edge_id == goal_edge.edge_id:
                if node == goal_edge.u:
                    along = self.target.offset
                else:
                    along = goal_edge.length - self.target.offset
                self._heap.push_or_decrease(_VIRTUAL_GOAL, g + along)
            if neighbor in expander.settled:
                continue
            expander.relaxations += 1
            new_g = g + edge.length
            old_g = expander.frontier.get(neighbor)
            if old_g is None or new_g < old_g:
                expander.frontier[neighbor] = new_g
                self._heap.update(neighbor, new_g + self._h(neighbor))

        if self._goal_node is not None and node == self._goal_node:
            self._finish(g)
            return self._plb

        if self._heap:
            self._plb = max(self._plb, self._heap.min_priority())
        else:
            goal = INFINITY
            if self._goal_edge is not None:
                goal = self._goal_candidate_from_settled()
                direct = network.direct_edge_distance(expander.source, self.target)
                if direct is not None:
                    goal = min(goal, direct)
            self._finish(goal)
        return self._plb

    def run_to_completion(self) -> float:
        """Expand until the exact distance is known; returns it."""
        while not self.done:
            self.expand_step()
        return self.distance
