"""``repro.analysis`` — the repo's own static-analysis framework.

A from-scratch, stdlib-only (``ast`` + ``symtable`` + ``tokenize``)
linter that enforces the architectural and concurrency invariants the
test suite cannot see: import layering, page-accounting discipline,
lock discipline, lock ordering, and the telemetry vocabulary.  Run it
as ``repro lint`` or ``python -m repro.analysis``.

Five rule families (catalogue in ``docs/architecture.md``):

* ``REPRO-ARCH01..03`` — import-layering DAG + cycle detection
  (:mod:`repro.analysis.importgraph`);
* ``REPRO-PAGE01..03`` — page-accounting discipline
  (:mod:`repro.analysis.rules`);
* ``REPRO-LOCK01..03`` — lock discipline (:mod:`repro.analysis.rules`);
* ``REPRO-ORDER01`` — lock-order / deadlock-cycle analysis
  (:mod:`repro.analysis.lockorder`);
* ``REPRO-TELE01..03`` — telemetry vocabulary
  (:mod:`repro.analysis.rules`).

Findings are suppressed per line with ``# repro: ignore[RULE-ID]``
(:mod:`repro.analysis.suppressions`) or absorbed by a reviewed
baseline file (:mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

import os
from fnmatch import fnmatchcase
from typing import Iterable, Sequence

from repro.analysis import baseline as baseline_mod
from repro.analysis import suppressions as suppress_mod

# Importing these modules registers their rules.
from repro.analysis import importgraph as _importgraph  # noqa: F401
from repro.analysis import lockorder as _lockorder  # noqa: F401
from repro.analysis.reporters import LintResult, render_json, render_text
from repro.analysis.rules import RULES, Rule, all_rules
from repro.analysis.walker import Finding, ModuleInfo, load_module

__all__ = [
    "Finding",
    "LintResult",
    "ModuleInfo",
    "RULES",
    "Rule",
    "all_rules",
    "discover_files",
    "load_module",
    "render_json",
    "render_text",
    "run_lint",
]

_SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".ruff_cache", ".pytest_cache", "fixtures"}
)


def discover_files(paths: Sequence[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files.

    ``tests/fixtures`` trees are skipped during directory walks (they
    contain deliberate violations) but can still be linted by passing
    a fixture path explicitly — which is how the self-tests run.
    """
    out: set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            out.add(os.path.abspath(path))
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = [
                name for name in sorted(dirnames) if name not in _SKIP_DIRS
            ]
            for name in filenames:
                if name.endswith(".py"):
                    out.add(os.path.abspath(os.path.join(dirpath, name)))
    return sorted(out)


def _selected(rule: Rule, select: Iterable[str] | None) -> bool:
    if not select:
        return True
    return any(
        fnmatchcase(rule.id, pattern) or rule.id.startswith(pattern)
        for pattern in select
    )


def run_lint(
    paths: Sequence[str],
    select: Iterable[str] | None = None,
    baseline_path: str | None = None,
) -> LintResult:
    """Lint ``paths`` and return the structured result.

    ``select`` restricts to matching rule ids (exact, prefix, or
    glob).  ``baseline_path`` absorbs previously-recorded findings.
    """
    result = LintResult()
    files = discover_files(paths)
    modules: list[ModuleInfo] = []
    for path in files:
        try:
            modules.append(load_module(path))
        except SyntaxError as exc:
            result.errors.append(
                f"{path}:{exc.lineno or 0}: syntax error: {exc.msg}"
            )
        except OSError as exc:
            result.errors.append(f"{path}: unreadable: {exc}")
    result.files_checked = len(modules)

    rules = [rule for rule in all_rules() if _selected(rule, select)]
    raw: list[Finding] = []
    for rule in rules:
        if rule.scope == "project":
            raw.extend(rule.check_project(modules))
        else:
            for info in modules:
                if rule.applies_to(info):
                    raw.extend(rule.check(info))

    # Per-line suppressions, tracked so stale ones are reported.
    suppressions_by_path = {
        info.path: suppress_mod.collect(info.source) for info in modules
    }
    matched: dict[str, set[int]] = {}
    kept: list[Finding] = []
    for finding in raw:
        table = suppressions_by_path.get(finding.path, {})
        if suppress_mod.is_suppressed(finding, table):
            matched.setdefault(finding.path, set()).add(finding.line)
        else:
            kept.append(finding)
    for path, table in suppressions_by_path.items():
        for line in suppress_mod.unused_suppressions(
            table, matched.get(path, set())
        ):
            result.unused_suppressions.append((path, line))
    result.unused_suppressions.sort()

    lines_by_path = {info.path: info.lines for info in modules}
    if baseline_path:
        try:
            prints = baseline_mod.load(baseline_path)
        except (ValueError, OSError) as exc:
            result.errors.append(f"baseline: {exc}")
            prints = set()
        kept, result.baselined = baseline_mod.filter_new(
            kept, prints, lines_by_path
        )
    result.findings = sorted(kept, key=Finding.sort_key)
    return result
