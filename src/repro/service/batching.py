"""Grouping in-flight queries so co-located requests share wavefronts.

The engine already reuses expansion state *within* one query (pooled
per-source wavefronts, the cross-query memo).  The
:class:`BatchPlanner` extends that reuse *across* requests, the
ParetoPrep observation applied to serving: requests whose query points
overlap are placed in the same :class:`BatchPlan` and executed
back-to-back on the shared engine, source-major, so the second request
resumes the first request's wavefronts instead of rebuilding them.

Within a batch three mechanisms stack:

1. **Dedupe** — requests with the same algorithm and the same *set* of
   query points collapse into one :class:`ExecutionUnit`; followers
   whose query order differs get their answer re-vectorised through
   :meth:`DistanceEngine.vectors` (pure memo hits — the skyline is
   invariant under dimension permutation).
2. **Warm phase** — when several units share sources, the planner runs
   :meth:`DistanceEngine.matrix` over the shared sources first, which
   establishes one pooled wavefront per shared source before any unit
   runs (cheap for co-located points: the wavefronts only need to span
   the shared neighbourhood).
3. **Source-major ordering** — units are ordered so consecutive units
   overlap maximally, keeping shared wavefronts at the hot end of the
   engine's LRU pool.

Batches also double as the service's *conflict-isolation* domain: the
scheduler never runs two batches with overlapping query points
concurrently (see ``QueryService``), which is what makes sharing
pooled expanders across threads safe — see the concurrency contract
in :mod:`repro.engine.engine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as dc_replace

from repro.core.result import SkylinePoint, SkylineResult
from repro.engine import location_key
from repro.network.graph import NetworkLocation
from repro.obs import Span, tracing


@dataclass
class ServiceRequest:
    """One client query as the service tracks it."""

    request_id: int
    algorithm: str
    queries: list[NetworkLocation]
    deadline: float | None = None  # time.monotonic() deadline, None = none
    enqueued_at: float = 0.0  # time.monotonic() at admission
    span: Span | None = None  # root span opened at admission

    def key_set(self) -> frozenset:
        """The request's query points as pool-identity keys."""
        return frozenset(location_key(q) for q in self.queries)


@dataclass
class ExecutionUnit:
    """One algorithm run serving one or more identical requests."""

    canonical: ServiceRequest
    followers: list[ServiceRequest] = field(default_factory=list)

    @property
    def requests(self) -> list[ServiceRequest]:
        return [self.canonical, *self.followers]


@dataclass
class BatchPlan:
    """A set of executions that share (or may share) wavefronts."""

    units: list[ExecutionUnit]

    def key_union(self) -> frozenset:
        """Every query-point key the batch touches (conflict domain)."""
        keys: set = set()
        for unit in self.units:
            keys |= unit.canonical.key_set()
        return frozenset(keys)

    def shared_sources(self) -> list[NetworkLocation]:
        """Query points appearing in two or more units (warm targets)."""
        first: dict[tuple, NetworkLocation] = {}
        unit_counts: dict[tuple, int] = {}
        for unit in self.units:
            for q in unit.canonical.queries:
                first.setdefault(location_key(q), q)
            # Count per unit, not per occurrence inside one request.
            for key in unit.canonical.key_set():
                unit_counts[key] = unit_counts.get(key, 0) + 1
        return [
            first[key] for key, n in sorted(unit_counts.items()) if n >= 2
        ]

    @property
    def request_count(self) -> int:
        return sum(len(unit.requests) for unit in self.units)


class BatchPlanner:
    """Turns a drained slice of the queue into conflict-free batches."""

    def plan(self, requests: list[ServiceRequest]) -> list[BatchPlan]:
        """Group requests into batches of overlapping query points.

        Requests whose key sets are connected (transitively, through
        shared query points) land in the same batch; within a batch,
        identical (algorithm, key-set) requests collapse into one
        execution unit and units are ordered source-major.
        """
        if not requests:
            return []
        # Union-find over requests, merging on shared query-point keys.
        parent = list(range(len(requests)))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        owner_of_key: dict[tuple, int] = {}
        for i, request in enumerate(requests):
            for key in request.key_set():
                if key in owner_of_key:
                    a, b = find(i), find(owner_of_key[key])
                    if a != b:
                        parent[a] = b
                else:
                    owner_of_key[key] = i

        groups: dict[int, list[ServiceRequest]] = {}
        for i, request in enumerate(requests):
            groups.setdefault(find(i), []).append(request)

        plans = []
        for _, members in sorted(groups.items()):
            plans.append(BatchPlan(units=self._units_for(members)))
        return plans

    @staticmethod
    def _units_for(members: list[ServiceRequest]) -> list[ExecutionUnit]:
        units: dict[tuple, ExecutionUnit] = {}
        for request in members:
            signature = (request.algorithm, request.key_set())
            unit = units.get(signature)
            if unit is None:
                units[signature] = ExecutionUnit(canonical=request)
            else:
                unit.followers.append(request)
        # Source-major order: sorting by the sorted key tuple clusters
        # overlapping sets, so consecutive units re-hit hot wavefronts.
        return sorted(
            units.values(),
            key=lambda u: tuple(sorted(u.canonical.key_set())),
        )


def execute_plan(workspace, plan: BatchPlan, algorithms) -> dict:
    """Run one batch under a read snapshot; results per request id.

    ``algorithms`` maps algorithm name to a zero-argument factory (the
    class itself works).  Returns ``{request_id: SkylineResult |
    Exception}`` — a unit whose execution raises fails only its own
    requests, not the whole batch.
    """
    outcomes: dict[int, object] = {}
    with workspace.reading():
        engine = workspace.engine
        shared = plan.shared_sources()
        if engine is not None and len(plan.units) > 1 and len(shared) > 1:
            # Warm phase: one pooled wavefront per shared source,
            # expanded just far enough to reach its co-located peers.
            # Amortised across the whole batch, so its cost is charged
            # to a free-standing span rather than any one request.
            with tracing.suppressed(), tracing.span(
                "batch.warm", sources=len(shared)
            ):
                engine.matrix_block(shared, shared)
        for unit in plan.units:
            request = unit.canonical
            # Re-enter the request's admission span on this worker
            # thread: the algorithm's query.<name> span (and all page /
            # settle counters below it) become its children.
            with tracing.activate(request.span):
                try:
                    algorithm = algorithms[request.algorithm]()
                    result = algorithm.run(workspace, list(request.queries))
                except Exception as exc:  # typed per-unit failure
                    for member in unit.requests:
                        outcomes[member.request_id] = exc
                    continue
                outcomes[request.request_id] = result
                for follower in unit.followers:
                    outcomes[follower.request_id] = _reorder_result(
                        workspace, result, follower
                    )
    return outcomes


def _reorder_result(
    workspace, result: SkylineResult, follower: ServiceRequest
) -> SkylineResult:
    """A follower's view of a deduped result, in its own query order.

    The skyline *set* is order-invariant; only the distance columns of
    each vector permute.  Vectors are refetched through the engine's
    batch API — every distance was settled by the canonical run, so
    this is memo hits, not new expansion.
    """
    engine = workspace.engine
    objects = [p.obj for p in result.points]
    if engine is None or not objects:
        return SkylineResult(
            points=list(result.points),
            stats=result.stats,
            trace=result.trace,
        )
    table = engine.vectors_block(follower.queries, objects)
    points = [
        SkylinePoint(obj=obj, vector=table.row(i))
        for i, obj in enumerate(objects)
    ]
    stats = dc_replace(result.stats)
    stats.extras = dict(result.stats.extras)
    stats.merge_extras(
        {"deduped": int(stats.extras.get("deduped", 0)) + 1}
    )
    return SkylineResult(points=points, stats=stats, trace=result.trace)
