"""Tests for the resumable Dijkstra wavefront and INE object search."""

import math
import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import (
    DijkstraExpander,
    InMemoryPlacements,
    to_networkx,
)

from conftest import build_random_network, place_random_objects, random_locations


class TestNodeDistances:
    def test_tiny_network_distances(self, tiny_network):
        expander = DijkstraExpander(tiny_network, tiny_network.location_at_node(0))
        assert expander.distance_to_node(0) == 0.0
        assert expander.distance_to_node(1) == pytest.approx(0.5)
        assert expander.distance_to_node(5) == pytest.approx(1.5)

    def test_matches_networkx_everywhere(self):
        for seed in range(5):
            network = build_random_network(50, 35, seed=seed, detour_max=1.0)
            graph = to_networkx(network)
            source = seed % network.node_count
            reference = nx.single_source_dijkstra_path_length(
                graph, source, weight="weight"
            )
            expander = DijkstraExpander(
                network, network.location_at_node(source)
            )
            while expander.expand_next() is not None:
                pass
            for node in network.node_ids():
                assert expander.settled.get(node, math.inf) == pytest.approx(
                    reference.get(node, math.inf)
                )

    def test_unreachable_is_infinite(self):
        from repro.geometry import Point
        from repro.network import RoadNetwork

        net = RoadNetwork()
        for i, xy in enumerate([(0, 0), (1, 0), (5, 5), (6, 5)]):
            net.add_node(i, Point(*xy))
        net.add_edge(0, 1)
        net.add_edge(2, 3)
        expander = DijkstraExpander(net, net.location_at_node(0))
        assert expander.distance_to_node(3) == math.inf

    def test_resumable_across_calls(self, medium_network):
        expander = DijkstraExpander(
            medium_network, medium_network.location_at_node(0)
        )
        d1 = expander.distance_to_node(10)
        settled_after_first = expander.nodes_settled
        d2 = expander.distance_to_node(10)  # already settled: no work
        assert d1 == d2
        assert expander.nodes_settled == settled_after_first

    def test_on_edge_source_seeds_both_ends(self, tiny_network):
        edge = next(e for e in tiny_network.edges() if (e.u, e.v) == (0, 1))
        source = tiny_network.location_on_edge(edge.edge_id, 0.2)
        expander = DijkstraExpander(tiny_network, source)
        assert expander.distance_to_node(0) == pytest.approx(0.2)
        assert expander.distance_to_node(1) == pytest.approx(0.3)

    def test_distance_to_on_edge_location(self, tiny_network):
        edge = next(e for e in tiny_network.edges() if (e.u, e.v) == (4, 5))
        target = tiny_network.location_on_edge(edge.edge_id, 0.25)
        expander = DijkstraExpander(tiny_network, tiny_network.location_at_node(0))
        # 0 -> 1 -> 4 (1.0) plus 0.25 along (4,5); or 0 -> 1 -> 2 -> 5 (1.5) + 0.25.
        assert expander.distance_to(target) == pytest.approx(1.25)

    def test_same_edge_direct_distance(self, tiny_network):
        edge = next(iter(tiny_network.edges()))
        a = tiny_network.location_on_edge(edge.edge_id, 0.1)
        b = tiny_network.location_on_edge(edge.edge_id, 0.45)
        expander = DijkstraExpander(tiny_network, a)
        assert expander.distance_to(b) == pytest.approx(0.35)

    def test_path_reconstruction(self, tiny_network):
        expander = DijkstraExpander(tiny_network, tiny_network.location_at_node(0))
        expander.distance_to_node(5)
        path = expander.path_to_node(5)
        assert path[0] == 0
        assert path[-1] == 5
        # Consecutive path nodes must be adjacent.
        for a, b in zip(path, path[1:]):
            assert any(nbr == b for nbr, _ in tiny_network.neighbors(a))

    def test_path_to_unreachable_raises(self):
        from repro.geometry import Point
        from repro.network import RoadNetwork

        net = RoadNetwork()
        net.add_node(0, Point(0, 0))
        net.add_node(1, Point(1, 1))
        expander = DijkstraExpander(net, net.location_at_node(0))
        with pytest.raises(ValueError):
            expander.path_to_node(1)

    def test_frontier_radius_monotone(self, medium_network):
        expander = DijkstraExpander(
            medium_network, medium_network.location_at_node(3)
        )
        last = 0.0
        while True:
            radius = expander.frontier_radius()
            assert radius >= last - 1e-12
            last = radius
            if expander.expand_next() is None:
                break
        assert expander.exhausted


class TestIncrementalNearestObject:
    def test_requires_placements(self, medium_network):
        expander = DijkstraExpander(
            medium_network, medium_network.location_at_node(0)
        )
        with pytest.raises(RuntimeError):
            expander.next_nearest_object()

    def test_emits_all_objects_in_order(self):
        network = build_random_network(60, 40, seed=21, detour_max=0.7)
        objects = place_random_objects(network, 45, seed=22)
        placements = InMemoryPlacements(objects)
        source = random_locations(network, 1, seed=23)[0]
        expander = DijkstraExpander(network, source, placements=placements)
        emitted = list(expander.iter_objects())
        assert len(emitted) == 45
        distances = [d for _, d in emitted]
        assert distances == sorted(distances)

    def test_emitted_distances_are_exact(self):
        network = build_random_network(50, 30, seed=31, detour_max=0.9)
        objects = place_random_objects(network, 25, seed=32)
        placements = InMemoryPlacements(objects)
        source = random_locations(network, 1, seed=33)[0]
        expander = DijkstraExpander(network, source, placements=placements)
        for obj, dist in expander.iter_objects():
            reference = DijkstraExpander(network, source).distance_to(obj.location)
            assert dist == pytest.approx(reference)

    def test_objects_on_source_edge_found_immediately(self):
        network = build_random_network(30, 15, seed=41)
        edge = next(iter(network.edges()))
        objects = place_random_objects(network, 10, seed=42)
        # Put one object on the same edge as the source.
        from repro.network import ObjectSet, SpatialObject

        near = SpatialObject(
            99, network.location_on_edge(edge.edge_id, edge.length * 0.6)
        )
        combined = ObjectSet.build(
            network, list(objects.objects) + [near]
        )
        source = network.location_on_edge(edge.edge_id, edge.length * 0.5)
        expander = DijkstraExpander(
            network, source, placements=InMemoryPlacements(combined)
        )
        first_obj, first_dist = expander.next_nearest_object()
        assert first_obj.object_id == 99
        assert first_dist == pytest.approx(edge.length * 0.1)

    def test_each_object_emitted_once(self):
        network = build_random_network(40, 25, seed=51)
        objects = place_random_objects(network, 30, seed=52)
        expander = DijkstraExpander(
            network,
            network.location_at_node(0),
            placements=InMemoryPlacements(objects),
        )
        ids = [obj.object_id for obj, _ in expander.iter_objects()]
        assert len(ids) == len(set(ids))

    def test_visited_tracking(self):
        network = build_random_network(40, 25, seed=61)
        objects = place_random_objects(network, 20, seed=62)
        expander = DijkstraExpander(
            network,
            network.location_at_node(0),
            placements=InMemoryPlacements(objects),
        )
        obj, dist = expander.next_nearest_object()
        assert expander.has_visited(obj.object_id)
        assert expander.visited_object_count == 1
        assert expander.last_emitted_distance == dist

    def test_node_resident_object_discovered(self, tiny_network):
        from repro.network import ObjectSet, SpatialObject

        objects = ObjectSet.build(
            tiny_network,
            [SpatialObject(0, tiny_network.location_at_node(5))],
        )
        expander = DijkstraExpander(
            tiny_network,
            tiny_network.location_at_node(0),
            placements=InMemoryPlacements(objects),
        )
        obj, dist = expander.next_nearest_object()
        assert obj.object_id == 0
        assert dist == pytest.approx(1.5)


class TestDijkstraProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_matches_networkx_on_random_instances(self, seed):
        network = build_random_network(30, 20, seed=seed, detour_max=1.5)
        graph = to_networkx(network)
        source = seed % 30
        reference = nx.single_source_dijkstra_path_length(
            graph, source, weight="weight"
        )
        expander = DijkstraExpander(network, network.location_at_node(source))
        while expander.expand_next() is not None:
            pass
        for node in network.node_ids():
            assert expander.settled.get(node, math.inf) == pytest.approx(
                reference.get(node, math.inf)
            )


class TestINEProperties:
    @settings(max_examples=12, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_ine_order_and_exactness_random(self, seed):
        """INE emits every object exactly once, in ascending order, with
        distances matching fresh per-object Dijkstra runs."""
        network = build_random_network(35, 25, seed=seed, detour_max=1.2)
        objects = place_random_objects(network, 18, seed=seed + 1)
        placements = InMemoryPlacements(objects)
        source = random_locations(network, 1, seed=seed + 2)[0]
        expander = DijkstraExpander(network, source, placements=placements)
        emitted = list(expander.iter_objects())
        assert sorted(obj.object_id for obj, _ in emitted) == sorted(
            o.object_id for o in objects
        )
        distances = [d for _, d in emitted]
        assert distances == sorted(distances)
        for obj, dist in emitted[:6]:
            fresh = DijkstraExpander(network, source).distance_to(obj.location)
            assert dist == pytest.approx(fresh)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_ine_prefix_consistency(self, seed):
        """Consuming k objects then the rest equals consuming them all:
        the wavefront's pause/resume does not disturb order."""
        network = build_random_network(30, 20, seed=seed, detour_max=0.8)
        objects = place_random_objects(network, 12, seed=seed + 1)
        source = random_locations(network, 1, seed=seed + 2)[0]

        def run(pauses):
            expander = DijkstraExpander(
                network, source, placements=InMemoryPlacements(objects)
            )
            out = []
            while True:
                item = expander.next_nearest_object()
                if item is None:
                    return out
                out.append((item[0].object_id, round(item[1], 9)))

        assert run(pauses=0) == run(pauses=3)
