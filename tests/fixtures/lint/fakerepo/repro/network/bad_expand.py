"""Seeded store-less expander: traversal with no page charge."""


def collect_edges(network, node):
    out = []
    for _, edge_id in network.neighbors(node):  # EXPECT: REPRO-PAGE02
        out.append(edge_id)
    return out
