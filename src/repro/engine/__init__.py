"""repro.engine — the unified network-distance service layer.

Public surface:

* :class:`DistanceEngine` — pooled wavefronts, cross-query distance
  memo, batch APIs; owned by every Workspace as ``workspace.engine``;
* :class:`EngineCounters` — snapshot of hit/miss/eviction counters;
* the backend registry (:data:`BACKEND_NAMES`, :func:`make_backend`)
  with the :class:`DistanceBackend` protocol;
* :class:`DistanceMemo` — the bounded LRU used by the engine.
"""

from repro.engine.backends import (
    BACKEND_NAMES,
    BACKENDS,
    DEFAULT_BACKEND,
    ORACLE_BACKEND_NAMES,
    AStarBackend,
    AStarLandmarksBackend,
    ChBackend,
    DijkstraBackend,
    DistanceBackend,
    HubLabelBackend,
    make_backend,
)
from repro.engine.cache import DEFAULT_MEMO_CAPACITY, DistanceMemo, MemoCounters
from repro.engine.engine import (
    DEFAULT_POOL_CAPACITY,
    DistanceEngine,
    EngineCounters,
    location_key,
)

__all__ = [
    "BACKENDS",
    "BACKEND_NAMES",
    "DEFAULT_BACKEND",
    "DEFAULT_MEMO_CAPACITY",
    "DEFAULT_POOL_CAPACITY",
    "ORACLE_BACKEND_NAMES",
    "AStarBackend",
    "AStarLandmarksBackend",
    "ChBackend",
    "DijkstraBackend",
    "DistanceBackend",
    "DistanceEngine",
    "DistanceMemo",
    "EngineCounters",
    "HubLabelBackend",
    "MemoCounters",
    "location_key",
]
