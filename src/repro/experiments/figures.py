"""One runner per figure of the paper's evaluation (Section 6).

Every runner returns a :class:`FigureSeries`: an x-axis, one y-series
per algorithm, and enough metadata to print a table shaped like the
paper's plot.  The experiment index in DESIGN.md maps figure ids to
these runners; ``python -m repro.experiments`` regenerates everything.

Defaults follow the paper (ω = 50 %, |Q| = 4, network NA); the |Q| and
ω sweeps default to a subsampled grid to keep pure-Python runtimes
reasonable — pass the full ranges to match the paper exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.ce import CollaborativeExpansion
from repro.core.edc import EuclideanDistanceConstraint
from repro.core.lbc import LowerBoundConstraint
from repro.datasets.objects import OMEGA_LEVELS
from repro.datasets.presets import DENSITY_ORDER
from repro.experiments.harness import (
    AggregateStats,
    ExperimentConfig,
    WorkloadCache,
    run_experiment,
)

DEFAULT_Q_SWEEP = (2, 4, 6, 8, 10, 15)
"""Subsample of the paper's |Q| = 1..15 sweep (full range supported)."""

PAPER_ALGORITHMS = (
    CollaborativeExpansion,
    EuclideanDistanceConstraint,
    LowerBoundConstraint,
)


@dataclass
class FigureSeries:
    """The data behind one reproduced figure."""

    figure: str
    title: str
    x_label: str
    y_label: str
    x_values: list = field(default_factory=list)
    series: dict[str, list[float]] = field(default_factory=dict)
    aggregates: dict[tuple, AggregateStats] = field(default_factory=dict)

    def add_point(
        self, x, per_algorithm: dict[str, AggregateStats], metric: str
    ) -> None:
        self.x_values.append(x)
        for name, aggregate in per_algorithm.items():
            self.series.setdefault(name, []).append(aggregate.metric(metric))
            self.aggregates[(x, name)] = aggregate


def _algorithms():
    return [cls() for cls in PAPER_ALGORITHMS]


def _sweep(
    figure: str,
    title: str,
    x_label: str,
    y_label: str,
    metric: str,
    points: Sequence[tuple[object, ExperimentConfig]],
    cache: WorkloadCache | None = None,
) -> FigureSeries:
    out = FigureSeries(
        figure=figure, title=title, x_label=x_label, y_label=y_label
    )
    for x, config in points:
        per_algorithm = run_experiment(config, _algorithms(), cache=cache)
        out.add_point(x, per_algorithm, metric)
    return out


# ----------------------------------------------------------------------
# Figure 4 — candidate ratio |C|/|D|
# ----------------------------------------------------------------------
def run_fig4a(
    base: ExperimentConfig | None = None,
    q_values: Sequence[int] = DEFAULT_Q_SWEEP,
    cache: WorkloadCache | None = None,
) -> FigureSeries:
    """Figure 4(a): candidate ratio vs |Q| (ω = 50 %, NA)."""
    base = base or ExperimentConfig()
    points = [(q, base.with_(query_count=q)) for q in q_values]
    return _sweep(
        "Fig4a", "Candidate ratio vs |Q|", "|Q|", "|C|/|D|",
        "candidate_ratio", points, cache,
    )


def run_fig4b(
    base: ExperimentConfig | None = None,
    omega_values: Sequence[float] = OMEGA_LEVELS,
    cache: WorkloadCache | None = None,
) -> FigureSeries:
    """Figure 4(b): candidate ratio vs object density ω (|Q| = 4, NA)."""
    base = base or ExperimentConfig()
    points = [(omega, base.with_(omega=omega)) for omega in omega_values]
    return _sweep(
        "Fig4b", "Candidate ratio vs ω", "ω", "|C|/|D|",
        "candidate_ratio", points, cache,
    )


def run_fig4c(
    base: ExperimentConfig | None = None,
    networks: Sequence[str] = DENSITY_ORDER,
    cache: WorkloadCache | None = None,
) -> FigureSeries:
    """Figure 4(c): candidate ratio vs network density (|Q|=4, ω=50 %)."""
    base = base or ExperimentConfig()
    points = [(name, base.with_(network=name)) for name in networks]
    return _sweep(
        "Fig4c",
        "Candidate ratio vs network density",
        "network",
        "|C|/|D|",
        "candidate_ratio",
        points,
        cache,
    )


# ----------------------------------------------------------------------
# Figure 5 — disk pages / response times vs network density
# ----------------------------------------------------------------------
def run_fig5(
    base: ExperimentConfig | None = None,
    networks: Sequence[str] = DENSITY_ORDER,
    cache: WorkloadCache | None = None,
) -> tuple[FigureSeries, FigureSeries, FigureSeries]:
    """Figures 5(a)-(c): pages, total and initial response vs density.

    One sweep feeds all three panels (the paper measures them in the
    same runs).
    """
    base = base or ExperimentConfig()
    pages = FigureSeries(
        figure="Fig5a",
        title="Network disk pages vs network density",
        x_label="network",
        y_label="network pages",
    )
    total = FigureSeries(
        figure="Fig5b",
        title="Total response time vs network density",
        x_label="network",
        y_label="seconds (wall + modeled I/O)",
    )
    initial = FigureSeries(
        figure="Fig5c",
        title="Initial response time vs network density",
        x_label="network",
        y_label="seconds (wall + modeled I/O)",
    )
    for name in networks:
        per_algorithm = run_experiment(
            base.with_(network=name), _algorithms(), cache=cache
        )
        pages.add_point(name, per_algorithm, "network_pages")
        total.add_point(name, per_algorithm, "modeled_total_s")
        initial.add_point(name, per_algorithm, "modeled_initial_s")
    return (pages, total, initial)


# ----------------------------------------------------------------------
# Figure 6 — sweeps over |Q| and ω
# ----------------------------------------------------------------------
def run_fig6_q(
    base: ExperimentConfig | None = None,
    q_values: Sequence[int] = DEFAULT_Q_SWEEP,
    cache: WorkloadCache | None = None,
) -> tuple[FigureSeries, FigureSeries, FigureSeries]:
    """Figures 6(a)-(c): pages, total and initial response vs |Q|."""
    base = base or ExperimentConfig()
    pages = FigureSeries(
        figure="Fig6a", title="Network disk pages vs |Q|",
        x_label="|Q|", y_label="network pages",
    )
    total = FigureSeries(
        figure="Fig6b", title="Total response time vs |Q|",
        x_label="|Q|", y_label="seconds (wall + modeled I/O)",
    )
    initial = FigureSeries(
        figure="Fig6c", title="Initial response time vs |Q|",
        x_label="|Q|", y_label="seconds (wall + modeled I/O)",
    )
    for q in q_values:
        per_algorithm = run_experiment(
            base.with_(query_count=q), _algorithms(), cache=cache
        )
        pages.add_point(q, per_algorithm, "network_pages")
        total.add_point(q, per_algorithm, "modeled_total_s")
        initial.add_point(q, per_algorithm, "modeled_initial_s")
    return (pages, total, initial)


def run_fig6_omega(
    base: ExperimentConfig | None = None,
    omega_values: Sequence[float] = OMEGA_LEVELS,
    cache: WorkloadCache | None = None,
) -> tuple[FigureSeries, FigureSeries, FigureSeries]:
    """Figures 6(d)-(f): pages, total and initial response vs ω."""
    base = base or ExperimentConfig()
    pages = FigureSeries(
        figure="Fig6d", title="Network disk pages vs ω",
        x_label="ω", y_label="network pages",
    )
    total = FigureSeries(
        figure="Fig6e", title="Total response time vs ω",
        x_label="ω", y_label="seconds (wall + modeled I/O)",
    )
    initial = FigureSeries(
        figure="Fig6f", title="Initial response time vs ω",
        x_label="ω", y_label="seconds (wall + modeled I/O)",
    )
    for omega in omega_values:
        per_algorithm = run_experiment(
            base.with_(omega=omega), _algorithms(), cache=cache
        )
        pages.add_point(omega, per_algorithm, "network_pages")
        total.add_point(omega, per_algorithm, "modeled_total_s")
        initial.add_point(omega, per_algorithm, "modeled_initial_s")
    return (pages, total, initial)
