"""Per-query statistics — the quantities the paper's figures plot.

Every algorithm run produces one :class:`QueryStats`:

* ``candidate_count``      — |C|, Figures 4(a)-(c) plot |C|/|D|;
* ``network_pages``        — physical reads of the network adjacency
  store, Figures 5(a), 6(a), 6(d);
* ``total_response_s`` / ``initial_response_s`` — Figures 5(b)/(c),
  6(b)/(c), 6(e)/(f);
* plus white-box counters (nodes settled, distance computations,
  lower-bound expansion steps, index pages) used by the analysis tests
  of Section 5's claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field

_EXTRA_VALUE_TYPES = (bool, int, float, str)

SPAN_COUNTER_FIELDS = (
    "nodes_settled",
    "distance_computations",
    "lb_expansions",
    "engine_hits",
    "engine_misses",
    "engine_evictions",
    "network_pages",
    "index_pages",
    "middle_pages",
    "oracle_pages",
    "oracle_nodes_settled",
    "oracle_label_entries",
    "oracle_fallbacks",
)
"""The QueryStats fields filled from root-span counter totals.

The wide-event log (:mod:`repro.obs.events`) emits exactly this block
per query, read off the same object the client response carries — so
events and stats reconcile field-for-field by construction.
"""


@dataclass
class QueryStats:
    """Mutable cost counters for one skyline-query execution."""

    algorithm: str = ""
    query_count: int = 0
    object_count: int = 0

    candidate_count: int = 0
    skyline_count: int = 0

    nodes_settled: int = 0
    distance_computations: int = 0
    lb_expansions: int = 0

    distance_backend: str = ""
    engine_hits: int = 0
    engine_misses: int = 0
    engine_evictions: int = 0

    network_pages: int = 0
    index_pages: int = 0
    middle_pages: int = 0

    oracle_pages: int = 0
    oracle_nodes_settled: int = 0
    oracle_label_entries: int = 0
    oracle_fallbacks: int = 0

    initial_response_s: float = 0.0
    total_response_s: float = 0.0
    initial_network_pages: int = 0
    initial_index_pages: int = 0

    extras: dict[str, float | int | str | bool] = field(default_factory=dict)
    """Algorithm- or service-specific annotations (heterogeneous by
    design: numeric counters, backend names, dedup flags).  Merge
    through :meth:`merge_extras`, which validates keys and value types."""

    trace_id: str = ""
    """Trace id of the query's root span when tracing captured the run."""

    IO_PENALTY_S = 0.010
    """Modeled cost of one physical page read (2007-era disk seek).

    The paper's response times are I/O-bound ("I/O is the overwhelming
    factor", Section 6.4); our substrate is an in-memory simulation, so
    wall-clock alone reflects Python CPU cost.  The modeled times below
    add a per-physical-read penalty, restoring the paper's cost balance.
    """

    @property
    def modeled_total_s(self) -> float:
        """Wall time plus modeled I/O for every physical page read."""
        return self.total_response_s + self.total_pages * self.IO_PENALTY_S

    @property
    def modeled_initial_s(self) -> float:
        """Time to first skyline point, including modeled I/O so far."""
        return self.initial_response_s + (
            (self.initial_network_pages + self.initial_index_pages)
            * self.IO_PENALTY_S
        )

    @property
    def candidate_ratio(self) -> float:
        """|C| / |D| — the y-axis of Figure 4."""
        if self.object_count == 0:
            return 0.0
        return self.candidate_count / self.object_count

    @property
    def total_pages(self) -> int:
        """All simulated physical page reads (network + indexes + layer
        + oracle records)."""
        return (
            self.network_pages
            + self.index_pages
            + self.middle_pages
            + self.oracle_pages
        )

    @property
    def engine_hit_ratio(self) -> float:
        """Distance-memo hits over lookups during this query (0 if none)."""
        lookups = self.engine_hits + self.engine_misses
        if lookups == 0:
            return 0.0
        return self.engine_hits / lookups

    def merge_extras(self, values: dict) -> None:
        """Merge annotation key/values, validating at the boundary.

        Keys must be non-empty strings; values must be scalars
        (bool/int/float/str) — nested structures belong in traces, not
        in row-oriented stats.  Raises ``TypeError``/``ValueError`` so a
        bad producer fails at merge time, not when reporting formats the
        row.
        """
        for key, value in values.items():
            if not isinstance(key, str) or not key:
                raise TypeError(f"extras keys must be non-empty str, got {key!r}")
            if not isinstance(value, _EXTRA_VALUE_TYPES):
                raise TypeError(
                    f"extras[{key!r}] must be a scalar "
                    f"(bool/int/float/str), got {type(value).__name__}"
                )
            self.extras[key] = value

    def counter_fields(self) -> dict[str, int]:
        """The span-derived cost counters as one flat dict.

        This is the ``counters`` block of the query's wide event;
        emitting it from the same object the response carries is what
        makes event-vs-stats reconciliation exact.
        """
        return {name: getattr(self, name) for name in SPAN_COUNTER_FIELDS}

    def as_row(self) -> dict[str, float]:
        """Flat dictionary for tabular reporting."""
        return {
            "algorithm": self.algorithm,
            "|Q|": self.query_count,
            "|D|": self.object_count,
            "|C|": self.candidate_count,
            "|C|/|D|": round(self.candidate_ratio, 4),
            "skyline": self.skyline_count,
            "nodes": self.nodes_settled,
            "dist_calcs": self.distance_computations,
            "backend": self.distance_backend,
            "eng_hits": self.engine_hits,
            "eng_miss": self.engine_misses,
            "eng_evict": self.engine_evictions,
            "net_pages": self.network_pages,
            "idx_pages": self.index_pages,
            "mid_pages": self.middle_pages,
            "orc_pages": self.oracle_pages,
            "orc_nodes": self.oracle_nodes_settled,
            "orc_scans": self.oracle_label_entries,
            "orc_fallb": self.oracle_fallbacks,
            "t_first_s": round(self.initial_response_s, 6),
            "t_total_s": round(self.total_response_s, 6),
        }
