"""repro.oracle — preprocessed distance oracles (CH + hub labels).

The online backends in :mod:`repro.engine.backends` pay a graph search
per distance; this package trades a one-off preprocessing pass for
near-lookup query cost, the "single biggest raw-speed lever" of the
roadmap:

* :mod:`repro.oracle.ch` — a contraction hierarchy: nodes are
  contracted in edge-difference order, shortcuts preserve shortest
  distances, and queries run a bidirectional *upward* Dijkstra whose
  search space is a tiny cone instead of a wavefront disc;
* :mod:`repro.oracle.hublabel` — hub labels extracted from the CH:
  per-node sorted ``(hub, distance)`` lists answering any pair query
  with one merge-intersection, no search at all;
* :mod:`repro.oracle.index` — the built artifact
  (:class:`OracleIndex`), its network signature (so a persisted index
  can refuse a mutated graph) and its JSON file round-trip;
* :mod:`repro.oracle.store` — page-clustered layout of the shortcut /
  label records behind a :class:`~repro.storage.buffer.BufferPool`, so
  oracle reads pay page accounting (``oracle_pages``) and show up in
  heatmaps like every other structure;
* :mod:`repro.oracle.runtime` — :class:`DistanceOracle`, the queryable
  handle the engine consults before falling back to online search.

Layering: the package sits beside ``skyline`` (rank 5) — it imports
``network``/``storage``/``obs`` and is imported by ``engine``, which
registers the ``ch`` and ``hublabel`` backends.
"""

from repro.oracle.ch import ContractionHierarchy, build_contraction_hierarchy
from repro.oracle.hublabel import build_hub_labels, hub_label_distance
from repro.oracle.index import (
    ORACLE_FILE_FORMAT,
    ORACLE_FILE_VERSION,
    OracleIndex,
    OracleIndexError,
    build_oracle_index,
    load_oracle_index,
    network_signature,
    save_oracle_index,
)
from repro.oracle.runtime import DistanceOracle
from repro.oracle.store import OracleStore

ORACLE_KINDS = ("ch", "hublabel")

__all__ = [
    "ORACLE_FILE_FORMAT",
    "ORACLE_FILE_VERSION",
    "ORACLE_KINDS",
    "ContractionHierarchy",
    "DistanceOracle",
    "OracleIndex",
    "OracleIndexError",
    "OracleStore",
    "build_contraction_hierarchy",
    "build_hub_labels",
    "build_oracle_index",
    "hub_label_distance",
    "load_oracle_index",
    "network_signature",
    "save_oracle_index",
]
