"""Plain-text road-network and object-set files, plus binary columns.

The paper's datasets came as node/edge files (Digital Chart of the
World exports).  This module reads and writes that style of format so
users can bring their own networks:

Network file (``.net``), whitespace-separated, ``#`` comments::

    node <id> <x> <y>
    edge <id> <u> <v> <length>

Object file (``.obj``)::

    object <id> <edge_id> <offset> [attr1 attr2 ...]

Loaders validate as they go (unknown nodes, bad lengths, duplicate ids
all raise with line numbers) and writers round-trip exactly.

For continent-scale object sets the text format is hopeless, so the
module also defines a binary **column file** (``.cols``): a 4 KiB JSON
header followed by one contiguous float64 region per column.  The
:class:`ColumnFileWriter` accepts chunked appends (a generator can
stream millions of rows without holding them), and :class:`ColumnFile`
memory-maps the regions and hands out zero-copy ``memoryview('d')``
columns that feed the :mod:`repro.columnar` kernels directly.
"""

from __future__ import annotations

import json
import mmap
import sys
from array import array
from pathlib import Path
from typing import Iterable, Iterator, Sequence, TextIO

from repro.geometry.point import Point
from repro.network.graph import RoadNetwork
from repro.network.objects import ObjectSet, SpatialObject

COLUMN_FILE_MAGIC = "RPCF"
COLUMN_FILE_VERSION = 1
COLUMN_FILE_HEADER_BYTES = 4096


class ColumnFileError(ValueError):
    """Raised for malformed or mismatched column files."""


class NetworkFormatError(ValueError):
    """Raised for malformed network or object files."""

    def __init__(self, path: str, line_number: int, message: str) -> None:
        super().__init__(f"{path}:{line_number}: {message}")
        self.path = path
        self.line_number = line_number


def _content_lines(handle: TextIO) -> Iterable[tuple[int, list[str]]]:
    for line_number, raw in enumerate(handle, start=1):
        line = raw.split("#", 1)[0].strip()
        if line:
            yield (line_number, line.split())


def save_network(network: RoadNetwork, path: str | Path) -> None:
    """Write a network in the text format described above."""
    path = Path(path)
    with path.open("w") as handle:
        handle.write("# road network: nodes then edges\n")
        for node_id in sorted(network.node_ids()):
            p = network.node_point(node_id)
            handle.write(f"node {node_id} {p.x!r} {p.y!r}\n")
        for edge_id in sorted(network.edge_ids()):
            edge = network.edge(edge_id)
            handle.write(
                f"edge {edge.edge_id} {edge.u} {edge.v} {edge.length!r}\n"
            )


def load_network(path: str | Path) -> RoadNetwork:
    """Read a network file, validating record by record."""
    path = Path(path)
    network = RoadNetwork()
    with path.open() as handle:
        for line_number, fields in _content_lines(handle):
            kind = fields[0]
            try:
                if kind == "node":
                    if len(fields) != 4:
                        raise ValueError(
                            f"node takes 3 fields, got {len(fields) - 1}"
                        )
                    network.add_node(
                        int(fields[1]), Point(float(fields[2]), float(fields[3]))
                    )
                elif kind == "edge":
                    if len(fields) != 5:
                        raise ValueError(
                            f"edge takes 4 fields, got {len(fields) - 1}"
                        )
                    network.add_edge(
                        int(fields[2]),
                        int(fields[3]),
                        length=float(fields[4]),
                        edge_id=int(fields[1]),
                    )
                else:
                    raise ValueError(f"unknown record type {kind!r}")
            except (ValueError, KeyError) as exc:
                raise NetworkFormatError(str(path), line_number, str(exc)) from exc
    return network


def save_objects(objects: ObjectSet, path: str | Path) -> None:
    """Write an object set (edge-resident placements with attributes)."""
    path = Path(path)
    with path.open("w") as handle:
        handle.write("# objects: object <id> <edge_id> <offset> [attrs...]\n")
        for obj in sorted(objects, key=lambda o: o.object_id):
            loc = obj.location
            if loc.edge_id is None:
                # Node-resident objects serialise through an incident
                # edge at offset 0 or length.
                network = objects.network
                neighbors = network.neighbors(loc.node_id)
                if not neighbors:
                    raise ValueError(
                        f"object {obj.object_id} sits on isolated node "
                        f"{loc.node_id}; cannot serialise"
                    )
                _, edge_id = neighbors[0]
                edge = network.edge(edge_id)
                offset = 0.0 if edge.u == loc.node_id else edge.length
            else:
                edge_id = loc.edge_id
                offset = loc.offset
            attrs = " ".join(repr(a) for a in obj.attributes)
            suffix = f" {attrs}" if attrs else ""
            handle.write(f"object {obj.object_id} {edge_id} {offset!r}{suffix}\n")


def load_objects(network: RoadNetwork, path: str | Path) -> ObjectSet:
    """Read an object file against an already-loaded network."""
    path = Path(path)
    objects: list[SpatialObject] = []
    with path.open() as handle:
        for line_number, fields in _content_lines(handle):
            if fields[0] != "object":
                raise NetworkFormatError(
                    str(path), line_number, f"unknown record type {fields[0]!r}"
                )
            if len(fields) < 4:
                raise NetworkFormatError(
                    str(path),
                    line_number,
                    f"object takes at least 3 fields, got {len(fields) - 1}",
                )
            try:
                object_id = int(fields[1])
                edge_id = int(fields[2])
                offset = float(fields[3])
                attributes = tuple(float(f) for f in fields[4:])
                location = network.location_on_edge(edge_id, offset)
            except (ValueError, KeyError) as exc:
                raise NetworkFormatError(str(path), line_number, str(exc)) from exc
            objects.append(
                SpatialObject(
                    object_id=object_id, location=location, attributes=attributes
                )
            )
    return ObjectSet.build(network, objects)

# ----------------------------------------------------------------------
# Binary column files
# ----------------------------------------------------------------------
class ColumnFileWriter:
    """Stream float64 columns to disk in fixed-size chunks.

    The row count and column roster are declared up front, so every
    column's byte region is known immediately and chunks can be written
    in any interleaving (``x`` chunk, ``y`` chunk, ``x`` chunk, ...).
    Within one column, writes append sequentially.  ``close`` verifies
    that every column received exactly ``count`` values, so a truncated
    generator cannot produce a silently short file.
    """

    def __init__(
        self, path: str | Path, columns: Sequence[str], count: int
    ) -> None:
        names = list(columns)
        if count < 0:
            raise ColumnFileError(f"negative row count {count}")
        if not names:
            raise ColumnFileError("a column file needs at least one column")
        if len(set(names)) != len(names):
            raise ColumnFileError(f"duplicate column names in {names}")
        header = {
            "magic": COLUMN_FILE_MAGIC,
            "version": COLUMN_FILE_VERSION,
            "count": count,
            "columns": names,
            "byteorder": sys.byteorder,
        }
        blob = json.dumps(header).encode()
        if len(blob) > COLUMN_FILE_HEADER_BYTES:
            raise ColumnFileError(
                f"header of {len(blob)} bytes exceeds the "
                f"{COLUMN_FILE_HEADER_BYTES}-byte region"
            )
        self.path = Path(path)
        self.columns = names
        self.count = count
        self._offsets = {
            name: COLUMN_FILE_HEADER_BYTES + i * count * 8
            for i, name in enumerate(names)
        }
        self._written = {name: 0 for name in names}
        self._handle = self.path.open("wb")
        self._handle.write(blob.ljust(COLUMN_FILE_HEADER_BYTES, b" "))
        self._handle.truncate(COLUMN_FILE_HEADER_BYTES + count * 8 * len(names))

    def write(self, column: str, values) -> None:
        """Append a chunk of floats to one column (order preserved)."""
        if self._handle is None:
            raise ColumnFileError(f"{self.path} is closed")
        if column not in self._offsets:
            raise ColumnFileError(f"unknown column {column!r}")
        chunk = (
            values
            if isinstance(values, array) and values.typecode == "d"
            else array("d", values)
        )
        done = self._written[column]
        if done + len(chunk) > self.count:
            raise ColumnFileError(
                f"column {column!r} overflows: {done} + {len(chunk)} rows "
                f"into a {self.count}-row file"
            )
        self._handle.seek(self._offsets[column] + done * 8)
        chunk.tofile(self._handle)
        self._written[column] = done + len(chunk)

    def close(self) -> None:
        if self._handle is None:
            return
        short = {
            name: done
            for name, done in self._written.items()
            if done != self.count
        }
        self._handle.close()
        self._handle = None
        if short:
            raise ColumnFileError(
                f"{self.path}: columns short of {self.count} rows: {short}"
            )

    def __enter__(self) -> "ColumnFileWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None and self._handle is not None:
            # Error paths must not mask the original exception with a
            # short-column complaint.
            self._handle.close()
            self._handle = None
            return
        self.close()


class ColumnFile:
    """Memory-mapped reader for :class:`ColumnFileWriter` output.

    ``column(name)`` returns a zero-copy ``memoryview`` with format
    ``'d'`` over the column's mmap region — indexable exactly like an
    ``array('d')``, so it feeds the columnar kernels without loading
    the file into Python objects.  Views borrow the mapping: drop them
    before ``close()``.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle = self.path.open("rb")
        try:
            raw = self._handle.read(COLUMN_FILE_HEADER_BYTES)
            if len(raw) < COLUMN_FILE_HEADER_BYTES:
                raise ColumnFileError(f"{self.path}: truncated header")
            try:
                header = json.loads(raw.decode().rstrip())
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ColumnFileError(
                    f"{self.path}: unreadable header: {exc}"
                ) from exc
            if header.get("magic") != COLUMN_FILE_MAGIC:
                raise ColumnFileError(f"{self.path}: not a column file")
            if header.get("version") != COLUMN_FILE_VERSION:
                raise ColumnFileError(
                    f"{self.path}: unsupported version {header.get('version')}"
                )
            if header.get("byteorder") != sys.byteorder:
                raise ColumnFileError(
                    f"{self.path}: written on a {header.get('byteorder')}-endian "
                    f"machine, this one is {sys.byteorder}-endian"
                )
            self.count = int(header["count"])
            self.columns = list(header["columns"])
            expected = COLUMN_FILE_HEADER_BYTES + self.count * 8 * len(self.columns)
            actual = self.path.stat().st_size
            if actual < expected:
                raise ColumnFileError(
                    f"{self.path}: {actual} bytes, need {expected}"
                )
            if self.count:
                self._mmap = mmap.mmap(
                    self._handle.fileno(), 0, access=mmap.ACCESS_READ
                )
                self._view = memoryview(self._mmap)
            else:
                self._mmap = None
                self._view = None
        except Exception:
            self._handle.close()
            raise

    def __len__(self) -> int:
        return self.count

    def column(self, name: str) -> "memoryview":
        """Zero-copy float64 view of one column."""
        if name not in self.columns:
            raise ColumnFileError(f"{self.path}: no column {name!r}")
        if self._view is None:
            return memoryview(array("d"))
        start = COLUMN_FILE_HEADER_BYTES + self.columns.index(name) * self.count * 8
        return self._view[start : start + self.count * 8].cast("d")

    def chunks(
        self, name: str, chunk_size: int = 8192
    ) -> Iterator["memoryview"]:
        """The column as a sequence of bounded views (streaming reads)."""
        if chunk_size < 1:
            raise ColumnFileError(f"chunk_size must be >= 1, got {chunk_size}")
        view = self.column(name)
        start = 0
        while start < len(view):
            yield view[start : start + chunk_size]
            start += chunk_size

    def close(self) -> None:
        if self._view is not None:
            self._view.release()
            self._view = None
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ColumnFile":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
