"""Multi-source BBS: Euclidean skyline over the R-tree.

Section 4.2 of the paper extends Papadias et al.'s Branch-and-Bound
Skyline to multiple query points: the R-tree is browsed best-first with

* ``mindist`` of an object  = sum of its Euclidean distances to every
  query point, and
* ``mindist`` of an MBR     = sum of the per-query minimum distances
  to the rectangle,

and an entry is expanded only if the vector of its per-query (minimum)
distances is not dominated by an already-confirmed skyline point.  The
sum is strictly monotone under dominance, so every dominator of an
object pops before the object itself — which is exactly why comparing
against the confirmed set alone is complete.

The generator form feeds EDC's incremental variant, which consumes one
Euclidean skyline point at a time and injects its own extra pruning.
"""

from __future__ import annotations

from array import array
from typing import Callable, Iterator, Sequence

from repro.columnar import kernels
from repro.columnar.store import CoordinateColumns, VectorTable
from repro.geometry.mbr import MBR
from repro.geometry.point import Point
from repro.index.rtree import RTree
from repro.network.objects import SpatialObject
from repro.obs import tracing
from repro.skyline.dominance import dominates, dominates_lower_bounds


def euclidean_vector(
    point: Point, query_points: Sequence[Point], attributes: Sequence[float] = ()
) -> tuple[float, ...]:
    """A location's vector of Euclidean distances (plus static attrs)."""
    return tuple(point.distance_to(q) for q in query_points) + tuple(attributes)


def euclidean_vectors_block(
    coords: CoordinateColumns,
    query_points: Sequence[Point],
    attributes=None,
    attribute_count: int = 0,
) -> VectorTable:
    """Euclidean distance vectors for a whole coordinate block at once.

    Row ``i`` holds the distances of point ``i`` to every query point,
    followed by its static attributes read from the flat ``attributes``
    buffer (``count * attribute_count`` floats, row-major) when given.
    One :func:`~repro.columnar.kernels.batch_euclidean` sweep per query
    point fills a column in place — no per-object tuples.
    """
    count = len(coords)
    width = len(query_points) + attribute_count
    data = array("d", bytes(8 * count * width))
    with tracing.span("columnar.distances", points=count, queries=len(query_points)):
        for column, q in enumerate(query_points):
            kernels.batch_euclidean(
                coords.xs, coords.ys, count, q.x, q.y, data, column, width
            )
        if attributes is not None:
            # ``attributes`` is row-major as well; column j of the source
            # strides by attribute_count starting at offset j.
            for j in range(attribute_count):
                kernels.fill_column(
                    data,
                    width,
                    len(query_points) + j,
                    attributes,
                    count,
                    src_offset=j,
                    src_stride=attribute_count,
                )
    return VectorTable(width, data)


def mbr_lower_bound_vector(
    mbr: MBR, query_points: Sequence[Point], attribute_count: int = 0
) -> tuple[float, ...]:
    """Per-query mindist vector of an MBR, padded with zero attributes.

    Zero is the universal lower bound for unknown static attributes of
    the objects inside the subtree; with non-negative attribute domains
    this keeps subtree pruning sound.
    """
    return tuple(mbr.mindist(q) for q in query_points) + (0.0,) * attribute_count


def incremental_euclidean_skyline(
    rtree: RTree,
    query_points: Sequence[Point],
    extra_prune: Callable[[tuple[float, ...]], bool] | None = None,
    attribute_count: int = 0,
) -> Iterator[tuple[SpatialObject, tuple[float, ...]]]:
    """Stream the multi-source Euclidean skyline in aggregate-distance order.

    Yields ``(object, vector)`` pairs where ``vector`` is the object's
    Euclidean distance vector (with static attributes appended).
    ``extra_prune`` receives the lower-bound vector of any entry and may
    veto it — EDC's incremental mode uses this to skip entries inside
    already-covered candidate regions.  ``attribute_count`` must state
    how many static attributes the indexed objects carry so that MBR
    lower-bound vectors have matching dimensionality.
    """
    query_list = list(query_points)
    skyline_vectors: list[tuple[float, ...]] = []

    def entry_vector(mbr: MBR, payload: SpatialObject | None) -> tuple[float, ...]:
        if payload is not None:
            return euclidean_vector(payload.point, query_list, payload.attributes)
        return mbr_lower_bound_vector(mbr, query_list, attribute_count)

    def prune(mbr: MBR, payload: SpatialObject | None) -> bool:
        vector = entry_vector(mbr, payload)
        if payload is not None:
            if any(dominates(s, vector) for s in skyline_vectors):
                return True
        else:
            if any(dominates_lower_bounds(s, vector) for s in skyline_vectors):
                return True
        return extra_prune is not None and extra_prune(vector)

    def key(mbr: MBR, payload: SpatialObject | None) -> float:
        return sum(entry_vector(mbr, payload))

    for _, _, payload in rtree.best_first(key, prune):
        obj: SpatialObject = payload
        vector = euclidean_vector(obj.point, query_list, obj.attributes)
        skyline_vectors.append(vector)
        yield (obj, vector)


def euclidean_skyline(
    rtree: RTree,
    query_points: Sequence[Point],
    attribute_count: int = 0,
) -> list[tuple[SpatialObject, tuple[float, ...]]]:
    """The complete multi-source Euclidean skyline (materialised)."""
    return list(
        incremental_euclidean_skyline(
            rtree, query_points, attribute_count=attribute_count
        )
    )
