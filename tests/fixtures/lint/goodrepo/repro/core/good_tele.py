"""Telemetry calls drawn from the registered vocabulary."""

from repro.obs import tracing


def run(name):
    tracing.record("nodes_settled")
    with tracing.span("ce.filter"):
        pass
    # Extension spans minted in obs/names.py are vocabulary too.
    with tracing.span("ann.ce"):
        tracing.record("distance_computations")
    with tracing.span("experiment.run"):
        pass
    with tracing.span(f"query.{name}"):
        return None


def analyze(events):
    # The insight plane's spans are vocabulary like any other.
    with tracing.span("insight.summarize"):
        pass
    with tracing.span("insight.compare"):
        return None


def register(registry):
    registry.counter("repro_service_requests_total", "requests")
    registry.gauge(
        "repro_insight_latency_seconds",
        "live cohort latency digests",
        labels=("cohort", "quantile"),
    )
    registry.counter(
        "repro_insight_queries_total", "queries per cohort", labels=("cohort",)
    )
    registry.register_callback(
        "repro_event_log_queue_depth", lambda: 0.0, kind="gauge"
    )
