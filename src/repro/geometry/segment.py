"""Line segments: projection, interpolation and point-to-segment distance.

Segments model individual road edges (or pieces of polyline edges).  The
operations here are used when snapping data objects onto network edges and
when computing the exact location of an object given its offset from an
edge endpoint.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.point import Point


@dataclass(frozen=True, slots=True)
class Segment:
    """A directed line segment from ``start`` to ``end``."""

    start: Point
    end: Point

    @property
    def length(self) -> float:
        """Euclidean length of the segment."""
        return self.start.distance_to(self.end)

    def point_at(self, offset: float) -> Point:
        """The point at arc-length ``offset`` from ``start``.

        ``offset`` is clamped to ``[0, length]`` so that tiny floating
        point overshoots from accumulated offsets never raise.
        """
        length = self.length
        if length == 0.0:
            return self.start
        t = min(max(offset / length, 0.0), 1.0)
        return self.start.lerp(self.end, t)

    def point_at_fraction(self, t: float) -> Point:
        """The point at parametric position ``t`` in ``[0, 1]``."""
        if not 0.0 <= t <= 1.0:
            raise ValueError(f"fraction {t!r} outside [0, 1]")
        return self.start.lerp(self.end, t)

    def project(self, p: Point) -> tuple[float, Point]:
        """Project ``p`` onto the segment.

        Returns ``(offset, closest)`` where ``offset`` is the arc length
        from ``start`` to the closest point and ``closest`` is that point.
        """
        vx = self.end.x - self.start.x
        vy = self.end.y - self.start.y
        denom = vx * vx + vy * vy
        if denom == 0.0:
            return (0.0, self.start)
        t = ((p.x - self.start.x) * vx + (p.y - self.start.y) * vy) / denom
        t = min(max(t, 0.0), 1.0)
        closest = self.start.lerp(self.end, t)
        return (t * self.length, closest)

    def distance_to_point(self, p: Point) -> float:
        """Minimum Euclidean distance from ``p`` to the segment."""
        _, closest = self.project(p)
        return p.distance_to(closest)

    def reversed(self) -> "Segment":
        """The same segment traversed in the opposite direction."""
        return Segment(self.end, self.start)
