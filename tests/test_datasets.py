"""Tests for the workload generators, presets and query selection."""

import math

import pytest

from repro.datasets import (
    AU,
    CA,
    NA,
    OMEGA_LEVELS,
    PRESETS,
    AttributeSpec,
    build_preset,
    delaunay_road_network,
    estimate_delta,
    extract_n_objects,
    extract_objects,
    grid_network,
    network_density,
    select_query_points,
    select_query_points_on_edges,
)


class TestGridNetwork:
    def test_counts(self):
        net = grid_network(4, 5)
        assert net.node_count == 20
        assert net.edge_count == 4 * 4 + 3 * 5  # horizontal + vertical
        net.validate()

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            grid_network(1, 5)

    def test_detour_scales_lengths(self):
        plain = grid_network(3, 3)
        stretched = grid_network(3, 3, detour=1.5)
        assert stretched.total_length() == pytest.approx(
            plain.total_length() * 1.5
        )

    def test_detour_below_one_rejected(self):
        with pytest.raises(ValueError):
            grid_network(3, 3, detour=0.9)

    def test_drop_fraction_keeps_connected(self):
        net = grid_network(8, 8, drop_fraction=0.3, seed=5)
        assert net.is_connected()
        assert net.edge_count < grid_network(8, 8).edge_count

    def test_bad_drop_fraction_rejected(self):
        with pytest.raises(ValueError):
            grid_network(3, 3, drop_fraction=1.0)

    def test_jitter_moves_nodes(self):
        straight = grid_network(4, 4, seed=0)
        jittered = grid_network(4, 4, jitter=0.3, seed=0)
        moved = sum(
            1
            for v in straight.node_ids()
            if straight.node_point(v) != jittered.node_point(v)
        )
        assert moved > 0
        jittered.validate()


class TestDelaunayNetwork:
    def test_basic_construction(self):
        net = delaunay_road_network(200, edge_node_ratio=1.25, seed=3)
        assert net.node_count == 200
        assert net.edge_count == pytest.approx(250, abs=2)
        assert net.is_connected()
        net.validate()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            delaunay_road_network(2)
        with pytest.raises(ValueError):
            delaunay_road_network(100, edge_node_ratio=0.5)
        with pytest.raises(ValueError):
            delaunay_road_network(100, detour_jitter=(0.5, 1.0))
        with pytest.raises(ValueError):
            delaunay_road_network(100, short_extra_share=1.5)

    def test_deterministic_per_seed(self):
        a = delaunay_road_network(100, seed=9)
        b = delaunay_road_network(100, seed=9)
        assert sorted(a.node_ids()) == sorted(b.node_ids())
        assert a.total_length() == pytest.approx(b.total_length())
        c = delaunay_road_network(100, seed=10)
        assert a.total_length() != pytest.approx(c.total_length())

    def test_patches_still_connected(self):
        net = delaunay_road_network(300, seed=4, patches=3)
        assert net.is_connected()

    def test_short_share_raises_delta(self):
        local = delaunay_road_network(
            500, seed=6, short_extra_share=1.0, edge_node_ratio=1.3
        )
        mixed = delaunay_road_network(
            500, seed=6, short_extra_share=0.0, edge_node_ratio=1.3
        )
        assert estimate_delta(local, sources=4, targets_per_source=30) > (
            estimate_delta(mixed, sources=4, targets_per_source=30)
        )

    def test_network_density(self):
        net = delaunay_road_network(150, seed=7)
        assert network_density(net) == pytest.approx(net.total_length())


class TestPresets:
    def test_all_presets_build_and_connect(self):
        for name in PRESETS:
            net = build_preset(name, scale=0.02)
            assert net.is_connected()
            net.validate()

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError):
            build_preset("XX")

    def test_case_insensitive(self):
        assert build_preset("ca", scale=0.02).node_count == build_preset(
            "CA", scale=0.02
        ).node_count

    def test_edge_node_ratio_matches_paper(self):
        assert CA.edge_node_ratio == pytest.approx(3607 / 3044)
        assert AU.edge_node_ratio == pytest.approx(30289 / 23269)
        assert NA.edge_node_ratio == pytest.approx(103042 / 86318)

    def test_scale_controls_size(self):
        small = build_preset("AU", scale=0.01)
        large = build_preset("AU", scale=0.05)
        assert large.node_count > small.node_count

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            build_preset("CA", scale=0)

    def test_density_ordering(self):
        densities = [
            network_density(build_preset(name, scale=0.05))
            for name in ("CA", "AU", "NA")
        ]
        assert densities == sorted(densities)

    def test_delta_ordering(self):
        """δ must fall as density rises (Section 6.3's driver)."""
        deltas = [
            estimate_delta(
                build_preset(name, scale=0.05), sources=4, targets_per_source=30
            )
            for name in ("CA", "AU", "NA")
        ]
        assert deltas[0] > deltas[1] > deltas[2]


class TestObjectExtraction:
    def test_omega_sets_count(self):
        net = grid_network(10, 10, seed=1)
        objects = extract_objects(net, omega=0.5, seed=2)
        assert len(objects) == round(0.5 * net.edge_count)

    def test_omega_levels_constant(self):
        assert OMEGA_LEVELS == (0.05, 0.20, 0.50, 1.00, 2.00)

    def test_bad_omega_rejected(self):
        net = grid_network(3, 3)
        with pytest.raises(ValueError):
            extract_objects(net, omega=0)

    def test_objects_live_on_edges(self):
        net = grid_network(6, 6, seed=3)
        objects = extract_objects(net, omega=1.0, seed=4)
        for obj in objects:
            assert obj.location.edge_id is not None
            edge = net.edge(obj.location.edge_id)
            assert 0 < obj.location.offset < edge.length

    def test_exact_count_extraction(self):
        net = grid_network(5, 5, seed=5)
        assert len(extract_n_objects(net, 17, seed=6)) == 17

    def test_extraction_deterministic(self):
        net = grid_network(5, 5, seed=5)
        a = extract_n_objects(net, 10, seed=7)
        b = extract_n_objects(net, 10, seed=7)
        assert [o.location.edge_id for o in a] == [o.location.edge_id for o in b]

    def test_attribute_specs(self):
        net = grid_network(5, 5, seed=5)
        spec = AttributeSpec.uniform("price", 50, 100)
        objects = extract_n_objects(net, 20, seed=8, attributes=[spec])
        for obj in objects:
            assert len(obj.attributes) == 1
            assert 50 <= obj.attributes[0] <= 100

    def test_negative_attribute_spec_rejected(self):
        with pytest.raises(ValueError):
            AttributeSpec.uniform("bad", -1, 5)


class TestQuerySelection:
    def test_count_and_membership(self):
        net = grid_network(12, 12, seed=9)
        queries = select_query_points(net, 5, seed=10)
        assert len(queries) == 5
        assert len({q.node_id for q in queries}) == 5
        for q in queries:
            assert net.has_node(q.node_id)

    def test_queries_within_small_region(self):
        net = grid_network(20, 20, seed=11)
        queries = select_query_points(net, 4, region_fraction=0.05, seed=12)
        xs = [q.point.x for q in queries]
        ys = [q.point.y for q in queries]
        # Window side is sqrt(0.05) of the bounding side.
        side = math.sqrt(0.05) * 1.0
        assert max(xs) - min(xs) <= side + 1e-9
        assert max(ys) - min(ys) <= side + 1e-9

    def test_window_grows_when_needed(self):
        net = grid_network(3, 3, seed=13)  # 9 nodes only
        queries = select_query_points(net, 8, region_fraction=0.01, seed=14)
        assert len(queries) == 8

    def test_too_many_queries_rejected(self):
        net = grid_network(2, 2)
        with pytest.raises(ValueError):
            select_query_points(net, 10, seed=15)

    def test_bad_parameters(self):
        net = grid_network(3, 3)
        with pytest.raises(ValueError):
            select_query_points(net, 0)
        with pytest.raises(ValueError):
            select_query_points(net, 2, region_fraction=0)

    def test_deterministic(self):
        net = grid_network(10, 10, seed=16)
        a = select_query_points(net, 4, seed=17)
        b = select_query_points(net, 4, seed=17)
        assert [q.node_id for q in a] == [q.node_id for q in b]

    def test_on_edge_variant(self):
        net = grid_network(10, 10, seed=18)
        queries = select_query_points_on_edges(net, 4, seed=19)
        assert len(queries) == 4
        assert any(q.edge_id is not None for q in queries)
