"""Hub labels extracted from a contraction hierarchy.

A node's label is its pruned upward search space: sorted
``(hub, distance)`` pairs such that for any pair of nodes the true
network distance is the minimum of ``d1 + d2`` over the hubs the two
labels share (the 2-hop cover property).  The CH guarantees the cover:
every shortest path has a peak node that lies in both endpoints' upward
cones.

Labels are built highest rank first, so when node ``v`` is processed
every hub in its search space (all ranked above ``v``) already carries
a *final* label.  An entry ``(h, d)`` is pruned when the label query
``v -> h`` over the entries kept so far answers with a distance no
larger than ``d`` — the entry can then never be the unique witness for
any pair, so dropping it keeps queries exact while shrinking labels
substantially (the pruned-labeling argument of the hub-label
literature).

Queries are a single merge-intersection of two id-sorted lists:
O(|label|) scanned entries, no graph search at all.  The scan count is
what the engine charges to the ``oracle_label_entries`` counter.
"""

from __future__ import annotations

import math

from repro.oracle.ch import ContractionHierarchy, upward_search_space

INFINITY = math.inf

Label = list[tuple[int, float]]
"""``(hub id, distance)`` entries sorted by hub id."""


def hub_label_distance(a: Label, b: Label) -> tuple[float, int]:
    """Merge-intersect two labels: ``(distance, entries scanned)``.

    Distance is ``inf`` when the labels share no hub (nodes in
    different connected components).
    """
    best = INFINITY
    scanned = 0
    i = j = 0
    len_a = len(a)
    len_b = len(b)
    while i < len_a and j < len_b:
        scanned += 1
        hub_a = a[i][0]
        hub_b = b[j][0]
        if hub_a == hub_b:
            total = a[i][1] + b[j][1]
            if total < best:
                best = total
            i += 1
            j += 1
        elif hub_a < hub_b:
            i += 1
        else:
            j += 1
    return best, scanned


def build_hub_labels(ch: ContractionHierarchy) -> dict[int, Label]:
    """Pruned labels for every node, keyed by node id."""
    labels: dict[int, Label] = {}
    # Hub -> distance maps of already-final labels, for the pruning
    # queries below (dict probes instead of merge scans during build).
    final: dict[int, dict[int, float]] = {}
    for v in reversed(ch.order):
        space = upward_search_space(ch.upward, v)
        kept: Label = []
        # Nearer hubs first (ties on id) so each pruning query runs
        # against the entries most likely to witness redundancy.
        for hub, dist in sorted(space.items(), key=lambda e: (e[1], e[0])):
            if hub == v:
                kept.append((hub, dist))
                continue
            hub_map = final[hub]
            best = INFINITY
            for prior_hub, prior_dist in kept:
                via = hub_map.get(prior_hub)
                if via is not None and prior_dist + via < best:
                    best = prior_dist + via
            if best <= dist:
                continue
            kept.append((hub, dist))
        kept.sort()
        labels[v] = kept
        final[v] = dict(kept)
    return labels
