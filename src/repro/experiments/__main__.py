"""Regenerate every figure of the paper and print the tables.

Usage::

    python -m repro.experiments [--trials N] [--scale S] [--quick]

``--quick`` runs a single trial on a smaller grid (a smoke run);
defaults reproduce the full reported tables.
"""

from __future__ import annotations

import argparse

from repro.obs import tracing
from repro.experiments.figures import (
    run_fig4a,
    run_fig4b,
    run_fig4c,
    run_fig5,
    run_fig6_omega,
    run_fig6_q,
)
from repro.experiments.harness import ExperimentConfig, WorkloadCache
from repro.experiments.reporting import format_series


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=5)
    parser.add_argument("--scale", type=float, default=0.10)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument(
        "--csv-dir", help="also write each figure's series as CSV here"
    )
    parser.add_argument(
        "--ablations", action="store_true",
        help="also run the design-choice ablations",
    )
    parser.add_argument(
        "--verify-shapes", action="store_true",
        help="check every measured figure against the paper's shape claims",
    )
    args = parser.parse_args()

    base = ExperimentConfig(trials=1 if args.quick else args.trials, scale=args.scale)
    q_values = (2, 4, 8) if args.quick else (2, 4, 6, 8, 10, 15)
    omega_values = (0.05, 0.5, 2.0) if args.quick else (0.05, 0.2, 0.5, 1.0, 2.0)
    cache = WorkloadCache()

    csv_dir = None
    if args.csv_dir:
        from pathlib import Path

        csv_dir = Path(args.csv_dir)
        csv_dir.mkdir(parents=True, exist_ok=True)

    def emit(series) -> None:
        print(format_series(series), end="\n\n")
        if csv_dir is not None:
            from repro.experiments.reporting import write_series_csv

            write_series_csv(series, csv_dir / f"{series.figure.lower()}.csv")

    produced = {}

    with tracing.span("experiment.run") as run_span:

        def track(series):
            produced[series.figure] = series
            emit(series)
            # Queries measured so far fold into the run span's own
            # totals; dropping their subtrees keeps a full-grid run's
            # memory flat (thousands of per-query span trees otherwise
            # stay live until the end).
            run_span.prune()

        track(run_fig4a(base, q_values, cache))
        track(run_fig4b(base, omega_values, cache))
        track(run_fig4c(base, cache=cache))
        for series in run_fig5(base, cache=cache):
            track(series)
        for series in run_fig6_q(base, q_values, cache):
            track(series)
        for series in run_fig6_omega(base, omega_values, cache):
            track(series)
        if args.verify_shapes:
            from repro.experiments.shapes import verify_all

            checks = verify_all(produced)
            print("shape verification:")
            for check in checks:
                print(f"  {check}")
            failed = sum(1 for c in checks if not c.passed)
            print(f"{len(checks) - failed}/{len(checks)} claims hold\n")
        if args.ablations:
            from repro.experiments.ablations import run_all_ablations

            for series in run_all_ablations(base, cache):
                emit(series)
    print(f"total wall time: {run_span.duration_s:.1f}s")


if __name__ == "__main__":
    main()
