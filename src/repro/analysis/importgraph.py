"""Import-layering enforcement (``REPRO-ARCH01..03``).

The repo's packages form a strict DAG.  Each package has a *rank*;
a module may import (at module scope or deferred) only from packages
of strictly lower rank, its own package, or outside the project.  On
top of the ranks, Tarjan SCC over the module-level import graph
rejects cycles even within a package, and the *standalone* packages
(``obs``, ``concurrency``) may not import any sibling at all — they
are the foundation everything else reports into.

Note one deliberate deviation from the paper-era sketch that listed
``core`` below ``engine``: in this codebase :class:`~repro.core.query.
Workspace` *constructs* the :class:`~repro.engine.engine.
DistanceEngine`, while the engine never reaches up into ``core`` — so
``engine`` ranks below ``core``.  ``docs/architecture.md`` records the
rationale.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.rules import Rule, register
from repro.analysis.walker import Finding, ImportRecord, ModuleInfo

ROOT = "repro"

#: Package -> rank.  Lower imports into higher, never the reverse.
LAYERS: dict[str, int] = {
    "obs": 0,
    "concurrency": 0,
    "insight": 1,  # telemetry analysis over obs exhaust; service and
    # bench both import it, so it sits just above the foundation
    "profiling": 1,  # samples via obs only; never imports sampled code
    "geometry": 1,
    "columnar": 2,  # array-backed data plane: stdlib + obs only
    "storage": 2,
    "index": 3,
    "network": 4,
    "skyline": 5,
    "oracle": 5,  # preprocessed distance indexes over network + storage
    "engine": 6,
    "core": 7,
    "datasets": 8,
    "service": 9,
    "extensions": 10,
    "viz": 10,
    "experiments": 10,
    "analysis": 11,
    "bench": 11,  # drives service + experiments; only the CLI is above
    "cli": 12,
}

#: Foundation packages: no imports from any sibling repro package.
STANDALONE = frozenset({"obs", "concurrency"})


def _package_of(module: str) -> str | None:
    """The layer package of a dotted module name, or None if foreign."""
    parts = module.split(".")
    if parts[0] != ROOT or len(parts) < 2:
        return None
    return parts[1]


def _rank(package: str) -> int | None:
    return LAYERS.get(package)


@register
class ArchLayerViolation(Rule):
    """No imports from an equal-or-higher-ranked foreign package."""

    id = "REPRO-ARCH01"
    summary = (
        "import from a package at an equal or higher layer rank; the "
        "package DAG is obs/concurrency < geometry < columnar/storage "
        "< index < network < skyline < engine < core < datasets < "
        "service < extensions/viz/experiments < analysis < cli"
    )

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        own = info.package
        own_rank = _rank(own)
        if own_rank is None:
            return
        for record in info.imports:
            target = _package_of(record.module)
            if target is None or target == own:
                continue
            target_rank = _rank(target)
            if target_rank is None:
                yield Finding(
                    self.id,
                    info.path,
                    record.line,
                    0,
                    f"import of unranked package repro.{target}; add it "
                    "to repro.analysis.importgraph.LAYERS",
                )
            elif target_rank >= own_rank:
                yield Finding(
                    self.id,
                    info.path,
                    record.line,
                    0,
                    f"{own} (rank {own_rank}) imports repro.{target} "
                    f"(rank {target_rank}); imports must flow strictly "
                    "downward in the layer DAG",
                )


@register
class ArchImportCycle(Rule):
    """No module-level import cycles anywhere in the tree."""

    id = "REPRO-ARCH02"
    summary = (
        "module-level import cycle (Tarjan SCC over the import graph)"
    )
    scope = "project"

    def check_project(
        self, modules: list[ModuleInfo]
    ) -> Iterator[Finding]:
        by_name = {info.module: info for info in modules}
        edges: dict[str, list[tuple[str, ImportRecord]]] = {
            name: [] for name in by_name
        }
        for info in modules:
            for record in info.imports:
                if not record.toplevel:
                    continue
                target = record.module
                # "from repro.core import query" records repro.core;
                # credit the submodule when that is what resolves.
                if target not in by_name:
                    continue
                edges[info.module].append((target, record))
        for component in _tarjan(edges):
            if len(component) < 2:
                continue
            member_set = set(component)
            cycle = " -> ".join(sorted(component))
            for name in sorted(component):
                info = by_name[name]
                witness = next(
                    (
                        record
                        for target, record in edges[name]
                        if target in member_set
                    ),
                    None,
                )
                yield Finding(
                    self.id,
                    info.path,
                    witness.line if witness else 1,
                    0,
                    f"module is part of an import cycle: {cycle}",
                )


@register
class ArchStandaloneLeak(Rule):
    """obs/concurrency import nothing from sibling packages."""

    id = "REPRO-ARCH03"
    summary = (
        "a standalone foundation package (obs, concurrency) imports a "
        "sibling repro package; the foundation must stay dependency-"
        "free so every layer can use it"
    )
    packages = STANDALONE

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        own = info.package
        for record in info.imports:
            target = _package_of(record.module)
            if target is not None and target != own:
                yield Finding(
                    self.id,
                    info.path,
                    record.line,
                    0,
                    f"standalone package {own} imports repro.{target}; "
                    "foundation packages may only use the stdlib and "
                    "their own modules",
                )
            elif record.module == ROOT and own != "":
                yield Finding(
                    self.id,
                    info.path,
                    record.line,
                    0,
                    f"standalone package {own} imports the repro "
                    "top-level package (which re-exports every layer)",
                )


def _tarjan(
    edges: dict[str, list[tuple[str, ImportRecord]]]
) -> list[list[str]]:
    """Strongly connected components, iterative Tarjan."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []
    counter = 0

    for root in edges:
        if root in index:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work.pop()
            if child_index == 0:
                index[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = [target for target, _ in edges.get(node, ())]
            for position in range(child_index, len(children)):
                child = children[position]
                if child not in index:
                    work.append((node, position + 1))
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            if lowlink[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components
