"""Column containers for the columnar data plane.

These are thin, slotted wrappers around flat ``array('d')`` buffers:
they own layout (row-major, fixed width) and boundary materialisation
(:meth:`VectorTable.row` builds the per-object tuple exactly once, when
a result crosses back into the object world), while all comparison
work is delegated to :mod:`repro.columnar.kernels`.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, Sequence

from repro.columnar.kernels import (
    block_skyline,
    is_dominated_by_any_block,
    is_dominated_by_any_block_lb,
)


class VectorTable:
    """A row-major table of fixed-width float vectors in one flat buffer.

    ``data[r * width + d]`` is component ``d`` of row ``r``.  The row
    count is derived (``len(data) // width``), so writers that stream
    raw values via :attr:`data` must append whole rows.
    """

    __slots__ = ("width", "data")

    def __init__(self, width: int, data: array | None = None) -> None:
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        self.width = width
        self.data = array("d") if data is None else data
        if len(self.data) % width:
            raise ValueError(
                f"buffer length {len(self.data)} is not a multiple of "
                f"width {width}"
            )

    @classmethod
    def from_vectors(cls, vectors: Iterable[Sequence[float]]) -> "VectorTable":
        """Build a table from same-width vectors (width inferred)."""
        table: VectorTable | None = None
        for vector in vectors:
            if table is None:
                table = cls(len(vector))
            table.append(vector)
        if table is None:
            raise ValueError("cannot infer width from zero vectors")
        return table

    def __len__(self) -> int:
        return len(self.data) // self.width

    def append(self, vector: Sequence[float]) -> int:
        """Append one row, returning its index."""
        if len(vector) != self.width:
            raise ValueError(
                f"dimension mismatch: {len(vector)} vs {self.width}"
            )
        index = len(self.data) // self.width
        self.data.extend(vector)
        return index

    def row(self, index: int) -> tuple[float, ...]:
        """Materialise row ``index`` as a tuple (the object boundary)."""
        base = index * self.width
        if not 0 <= index < len(self):
            raise IndexError(f"row {index} outside 0..{len(self) - 1}")
        return tuple(self.data[base : base + self.width])

    def rows(self) -> Iterator[tuple[float, ...]]:
        for index in range(len(self)):
            yield self.row(index)

    def clear(self) -> None:
        del self.data[:]

    def view(self) -> memoryview:
        """A zero-copy read view of the flat buffer."""
        return memoryview(self.data)


class CoordinateColumns:
    """Planar coordinates of an object set, one column per axis."""

    __slots__ = ("xs", "ys")

    def __init__(self, xs=None, ys=None) -> None:
        self.xs = array("d") if xs is None else xs
        self.ys = array("d") if ys is None else ys
        if len(self.xs) != len(self.ys):
            raise ValueError(
                f"column length mismatch: {len(self.xs)} xs vs "
                f"{len(self.ys)} ys"
            )

    @classmethod
    def from_points(cls, points: Iterable) -> "CoordinateColumns":
        columns = cls()
        for point in points:
            columns.xs.append(point.x)
            columns.ys.append(point.y)
        return columns

    def __len__(self) -> int:
        return len(self.xs)

    def append(self, x: float, y: float) -> None:
        self.xs.append(x)
        self.ys.append(y)

    def bounds(self) -> tuple[float, float, float, float]:
        """``(min_x, min_y, max_x, max_y)``; ValueError when empty."""
        if not len(self.xs):
            raise ValueError("no coordinates")
        xs = self.xs
        ys = self.ys
        min_x = max_x = xs[0]
        min_y = max_y = ys[0]
        i = 1
        while i < len(xs):
            x = xs[i]
            y = ys[i]
            if x < min_x:
                min_x = x
            elif x > max_x:
                max_x = x
            if y < min_y:
                min_y = y
            elif y > max_y:
                max_y = y
            i += 1
        return (min_x, min_y, max_x, max_y)


class CandidateBlock:
    """A candidate set in columnar form: id handles beside vector rows.

    Algorithms carry candidates as ``(ids[i], vectors row i)`` pairs and
    materialise :class:`~repro.network.objects.SpatialObject` results
    only at the :class:`~repro.core.result.SkylineResult` boundary.
    """

    __slots__ = ("ids", "vectors")

    def __init__(self, width: int) -> None:
        self.ids = array("q")
        self.vectors = VectorTable(width)

    def __len__(self) -> int:
        return len(self.ids)

    def add(self, object_id: int, vector: Sequence[float]) -> int:
        """Append one candidate, returning its row index."""
        index = self.vectors.append(vector)
        self.ids.append(object_id)
        return index

    def skyline(self) -> list[int]:
        """Row indices of the block's skyline (SFS preference order)."""
        return block_skyline(self.vectors.data, len(self.ids), self.vectors.width)


class SkylineBlock:
    """Columnar mirror of a confirmed-skyline vector set.

    The confirmed set is small and changes rarely relative to how often
    it is probed, so the block is rebuilt wholesale after an insertion
    and every probe runs the flat-buffer kernels.  Probes accept any
    indexable vector (tuple, array row via ``offset``), which lets hot
    loops test scratch buffers without materialising tuples.
    """

    __slots__ = ("table",)

    def __init__(self, width: int) -> None:
        self.table = VectorTable(width)

    def __len__(self) -> int:
        return len(self.table)

    def rebuild(self, vectors: Iterable[Sequence[float]]) -> None:
        """Replace the contents with ``vectors`` (e.g. after eviction)."""
        self.table.clear()
        for vector in vectors:
            self.table.append(vector)

    def append(self, vector: Sequence[float]) -> None:
        self.table.append(vector)

    def dominates(self, vector, offset: int = 0) -> bool:
        """Does any confirmed vector dominate ``vector``? (exact)"""
        return is_dominated_by_any_block(
            self.table.data, len(self.table), self.table.width, vector, offset
        )

    def dominates_lb(self, bounds, offset: int = 0) -> bool:
        """Does any confirmed vector provably dominate the true vector
        lower-bounded by ``bounds``? (sound under-approximation)"""
        return is_dominated_by_any_block_lb(
            self.table.data, len(self.table), self.table.width, bounds, offset
        )
