"""Fixture-driven self-tests for the repro.analysis rule families.

Bad fixtures carry ``# EXPECT: RULE-ID[,RULE-ID]`` markers on the
offending lines; the tests assert the linter reports *exactly* those
(rule id, line) pairs — nothing missing, nothing extra.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import RULES, run_lint
from repro.analysis import baseline as baseline_mod

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint"
FAKE = FIXTURES / "fakerepo" / "repro"
GOOD = FIXTURES / "goodrepo" / "repro"


def expected_markers(*paths: Path) -> set[tuple[str, int]]:
    out: set[tuple[str, int]] = set()
    for path in paths:
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if "# EXPECT:" not in line:
                continue
            spec = line.split("# EXPECT:", 1)[1].strip()
            for rule_id in spec.split(","):
                out.add((rule_id.strip(), lineno))
    return out


def reported(*paths: Path, select=None) -> set[tuple[str, int]]:
    result = run_lint([str(path) for path in paths], select=select)
    assert not result.errors, result.errors
    return {(f.rule_id, f.line) for f in result.findings}


BAD_CASES = [
    pytest.param((FAKE / "storage" / "bad_layering.py",), id="arch01"),
    pytest.param(
        (FAKE / "network" / "loop_a.py", FAKE / "network" / "loop_b.py"),
        id="arch02-cycle",
    ),
    pytest.param((FAKE / "obs" / "bad_standalone.py",), id="arch03"),
    pytest.param((FAKE / "core" / "bad_page.py",), id="page01-page03"),
    pytest.param((FAKE / "network" / "bad_expand.py",), id="page02"),
    pytest.param((FAKE / "core" / "bad_lock.py",), id="lock01-lock02"),
    pytest.param((FAKE / "service" / "bad_blocking.py",), id="lock03"),
    pytest.param((FAKE / "service" / "bad_order.py",), id="order01"),
    pytest.param((FAKE / "core" / "bad_tele.py",), id="tele01-03"),
    pytest.param((FAKE / "columnar" / "bad_kernel.py",), id="perf01"),
]


@pytest.mark.parametrize("paths", BAD_CASES)
def test_bad_fixture_reports_exact_findings(paths):
    assert reported(*paths) == expected_markers(*paths)


def test_every_rule_family_has_a_failing_fixture():
    """Each registered family is exercised by at least one bad case."""
    covered = set()
    for param in BAD_CASES:
        for rule_id, _ in expected_markers(*param.values[0]):
            covered.add(rule_id)
    assert covered == set(RULES), sorted(set(RULES) - covered)


def test_good_fixture_tree_is_clean():
    result = run_lint([str(GOOD)])
    assert not result.errors
    assert result.findings == []
    assert result.files_checked >= 10


def test_whole_fakerepo_matches_markers():
    """A directory walk finds every seeded violation exactly once."""
    marked = expected_markers(*sorted(FAKE.rglob("*.py")))
    assert reported(FAKE) == marked


def test_order01_message_names_both_locks():
    result = run_lint([str(FAKE / "service" / "bad_order.py")])
    assert len(result.findings) == 2
    for finding in result.findings:
        assert "BadOrdering._alock" in finding.message
        assert "BadOrdering._block" in finding.message


def test_suppression_comment_silences_rule():
    result = run_lint([str(FAKE / "core" / "suppressed_page.py")])
    assert result.findings == []
    # Both suppressions matched a finding, so none is stale.
    assert result.unused_suppressions == []


def test_unused_suppression_is_warned():
    result = run_lint([str(FAKE / "core" / "unused_ignore.py")])
    assert result.findings == []
    assert [line for _, line in result.unused_suppressions] == [3]


def test_suppression_only_covers_named_rule(tmp_path):
    # Naming the wrong rule id does not excuse the finding (and the
    # mismatched suppression is reported as stale).
    target = _mini_tree(
        tmp_path,
        "def walk(network, node):\n"
        "    return network.neighbors(node)  # repro: ignore[REPRO-LOCK01]\n",
    )
    result = run_lint([str(target)])
    assert [f.rule_id for f in result.findings] == ["REPRO-PAGE01"]
    assert [line for _, line in result.unused_suppressions] == [2]


def _mini_tree(tmp_path: Path, body: str) -> Path:
    (tmp_path / "repro").mkdir()
    (tmp_path / "repro" / "__init__.py").write_text("")
    (tmp_path / "repro" / "core").mkdir()
    (tmp_path / "repro" / "core" / "__init__.py").write_text("")
    target = tmp_path / "repro" / "core" / "sample.py"
    target.write_text(body, encoding="utf-8")
    return target


def test_baseline_roundtrip(tmp_path):
    target = _mini_tree(
        tmp_path,
        "def walk(network, node):\n"
        "    return network.neighbors(node)\n",
    )
    first = run_lint([str(target)])
    assert [f.rule_id for f in first.findings] == ["REPRO-PAGE01"]

    baseline_file = tmp_path / "baseline.json"
    lines = {
        str(target): target.read_text(encoding="utf-8").splitlines()
    }
    count = baseline_mod.save(str(baseline_file), first.findings, lines)
    assert count == 1

    second = run_lint([str(target)], baseline_path=str(baseline_file))
    assert second.findings == []
    assert second.baselined == 1
    assert second.exit_code == 0


def test_baseline_survives_line_shifts_but_not_edits(tmp_path):
    target = _mini_tree(
        tmp_path,
        "def walk(network, node):\n"
        "    return network.neighbors(node)\n",
    )
    first = run_lint([str(target)])
    baseline_file = tmp_path / "baseline.json"
    lines = {
        str(target): target.read_text(encoding="utf-8").splitlines()
    }
    baseline_mod.save(str(baseline_file), first.findings, lines)

    # Prepending lines shifts the finding; the content fingerprint
    # still matches the baseline entry.
    target.write_text(
        "# a new leading comment\n\n"
        "def walk(network, node):\n"
        "    return network.neighbors(node)\n",
        encoding="utf-8",
    )
    shifted = run_lint([str(target)], baseline_path=str(baseline_file))
    assert shifted.findings == []
    assert shifted.baselined == 1

    # Editing the offending line itself invalidates the entry.
    target.write_text(
        "def walk(network, other_node):\n"
        "    return network.neighbors(other_node)\n",
        encoding="utf-8",
    )
    edited = run_lint([str(target)], baseline_path=str(baseline_file))
    assert [f.rule_id for f in edited.findings] == ["REPRO-PAGE01"]
    assert edited.baselined == 0


def test_select_prefix_limits_rules():
    findings = reported(FAKE, select=["REPRO-ARCH"])
    assert findings
    assert all(rule_id.startswith("REPRO-ARCH") for rule_id, _ in findings)


def test_rule_catalogue_is_complete():
    families = {
        "ARCH": 3,
        "PAGE": 3,
        "LOCK": 3,
        "ORDER": 1,
        "TELE": 3,
        "PERF": 1,
    }
    for family, count in families.items():
        members = [r for r in RULES if r.startswith(f"REPRO-{family}")]
        assert len(members) == count, (family, members)
    for rule in RULES.values():
        assert rule.summary
        assert rule.scope in ("module", "project")
