"""Tests for the aggregate nearest-neighbour extension."""

import math

import pytest

from repro.core import Workspace
from repro.extensions import (
    AGGREGATES,
    AggregateNNBaseline,
    AggregateNNLowerBound,
    brute_force_aggregate_nn,
)

from conftest import build_random_network, place_random_objects, random_locations


@pytest.fixture(scope="module")
def workload():
    network = build_random_network(70, 45, seed=71, detour_max=0.7)
    objects = place_random_objects(network, 50, seed=72)
    workspace = Workspace.build(network, objects, paged=False)
    queries = random_locations(network, 3, seed=73)
    return network, workspace, queries


PROCESSORS = [AggregateNNBaseline, AggregateNNLowerBound]


class TestCorrectness:
    @pytest.mark.parametrize("processor_cls", PROCESSORS)
    @pytest.mark.parametrize("aggregate", ["sum", "max"])
    @pytest.mark.parametrize("k", [1, 3, 7])
    def test_matches_brute_force(self, workload, processor_cls, aggregate, k):
        _, workspace, queries = workload
        reference = brute_force_aggregate_nn(
            workspace, queries, k=k, aggregate=aggregate
        )
        got = processor_cls(aggregate).run(workspace, queries, k=k)
        assert [round(a.value, 9) for a in got.answers] == [
            round(a.value, 9) for a in reference.answers
        ]

    @pytest.mark.parametrize("processor_cls", PROCESSORS)
    def test_values_sorted_ascending(self, workload, processor_cls):
        _, workspace, queries = workload
        result = processor_cls("sum").run(workspace, queries, k=5)
        values = [a.value for a in result.answers]
        assert values == sorted(values)

    @pytest.mark.parametrize("processor_cls", PROCESSORS)
    def test_distances_consistent_with_value(self, workload, processor_cls):
        _, workspace, queries = workload
        for aggregate_name, func in AGGREGATES.items():
            result = processor_cls(aggregate_name).run(workspace, queries, k=3)
            for answer in result.answers:
                assert answer.value == pytest.approx(func(answer.distances))

    @pytest.mark.parametrize("processor_cls", PROCESSORS)
    def test_single_query_point_is_plain_nn(self, workload, processor_cls):
        _, workspace, queries = workload
        result = processor_cls("sum").run(workspace, [queries[0]], k=1)
        reference = brute_force_aggregate_nn(workspace, [queries[0]], k=1)
        assert result.object_ids() == reference.object_ids()

    @pytest.mark.parametrize("processor_cls", PROCESSORS)
    def test_k_larger_than_objects(self, processor_cls):
        network = build_random_network(30, 15, seed=81)
        objects = place_random_objects(network, 3, seed=82)
        workspace = Workspace.build(network, objects, paged=False)
        queries = random_locations(network, 2, seed=83)
        result = processor_cls("sum").run(workspace, queries, k=10)
        assert len(result.answers) == 3

    @pytest.mark.parametrize("processor_cls", PROCESSORS)
    def test_bad_k_rejected(self, workload, processor_cls):
        _, workspace, queries = workload
        with pytest.raises(ValueError):
            processor_cls("sum").run(workspace, queries, k=0)

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(ValueError):
            AggregateNNBaseline("median")

    def test_custom_aggregate_callable(self, workload):
        _, workspace, queries = workload

        def weighted(distances):
            return distances[0] * 2 + sum(distances[1:])

        got = AggregateNNLowerBound(weighted).run(workspace, queries, k=2)
        reference = brute_force_aggregate_nn(
            workspace, queries, k=2, aggregate=weighted
        )
        assert [round(a.value, 9) for a in got.answers] == [
            round(a.value, 9) for a in reference.answers
        ]

    @pytest.mark.parametrize("processor_cls", PROCESSORS)
    def test_disconnected_components(self, processor_cls):
        from repro.geometry import Point
        from repro.network import ObjectSet, RoadNetwork, SpatialObject

        net = RoadNetwork()
        for i, xy in enumerate([(0, 0), (0.2, 0), (0.8, 0.8), (0.9, 0.8)]):
            net.add_node(i, Point(*xy))
        e1 = net.add_edge(0, 1)
        e2 = net.add_edge(2, 3)
        objects = ObjectSet.build(
            net,
            [
                SpatialObject(0, net.location_on_edge(e1.edge_id, e1.length / 2)),
                SpatialObject(1, net.location_on_edge(e2.edge_id, e2.length / 2)),
            ],
        )
        ws = Workspace.build(net, objects, paged=False)
        queries = [net.location_at_node(0), net.location_at_node(1)]
        reference = brute_force_aggregate_nn(ws, queries, k=2)
        got = processor_cls("sum").run(ws, queries, k=2)
        assert [round(a.value, 9) if math.isfinite(a.value) else a.value
                for a in got.answers] == [
            round(a.value, 9) if math.isfinite(a.value) else a.value
            for a in reference.answers
        ]


class TestEconomy:
    def test_lower_bound_wins_on_paper_style_workload(self):
        """On the paper's workload shape (preset network, query points in
        a compact region) the plb transfer touches less network than the
        collaborative baseline.  On adversarial spread-out queries with
        heavy detours the Euclidean guide can lose — that is the same
        δ-sensitivity the paper reports for EDC — so the economy claim
        is asserted only for the realistic setting."""
        from repro.datasets import build_preset, extract_objects, select_query_points

        network = build_preset("AU", scale=0.08)
        objects = extract_objects(network, 0.5, seed=1)
        workspace = Workspace.build(network, objects, paged=False)
        queries = select_query_points(network, 4, seed=5)
        for aggregate in ("sum", "max"):
            baseline = AggregateNNBaseline(aggregate).run(workspace, queries, k=3)
            lower = AggregateNNLowerBound(aggregate).run(workspace, queries, k=3)
            assert lower.object_ids() == baseline.object_ids()
            assert lower.nodes_settled <= baseline.nodes_settled
