"""Command-line interface.

Installed as the ``repro`` console script (also runnable as
``python -m repro.cli``).  Subcommands:

* ``generate``   — build a synthetic road network (preset or custom) and
  write it, optionally with an extracted object set;
* ``info``       — structural statistics of a network file;
* ``query``      — run a multi-source skyline query over network/object
  files, print the answer table, optionally render an SVG;
* ``trace``      — run one query with tracing on and print its span
  tree (per-phase timings, page reads, settled nodes); ``--last``
  renders the most recent exported trace or flight record from a
  ``--trace-dir`` instead of running anything;
* ``blackbox``   — render a flight-record dump (recent completed
  traces, in-flight span trees, thread stacks) written by the
  service's flight recorder (:mod:`repro.obs.recorder`);
* ``route``      — shortest path between two junctions;
* ``oracle``     — ``build`` a contraction-hierarchy / hub-label
  distance oracle for a network file, ``verify`` one against online
  Dijkstra on sampled pairs (:mod:`repro.oracle`);
* ``serve``      — long-running concurrent HTTP query server (also
  installed as the ``repro-serve`` console script);
* ``experiment`` — regenerate the paper's figures (thin wrapper around
  ``python -m repro.experiments``);
* ``bench``      — run the versioned benchmark suite, emit/compare
  ``BENCH_<rev>.json`` artifacts (:mod:`repro.bench`; also
  ``python -m repro.bench``);
* ``insight``    — cohort digests, regression detection and slow-event
  listings over wide-event logs and bench artifacts
  (:mod:`repro.insight`; also ``python -m repro.insight``);
* ``profile``    — sampling profiler over a preset workload, with
  per-span self time and collapsed-stack flamegraph export;
* ``heatmap``    — page-access heatmaps per buffer pool (adjacency
  vs R-tree vs B+-tree) for a preset workload;
* ``lint``       — run the repo's own architecture & concurrency
  linter (:mod:`repro.analysis`; also ``python -m repro.analysis``).

Example session::

    repro generate --preset AU --out au.net --objects au.obj --omega 0.5
    repro info au.net
    repro query au.net au.obj --query-nodes 12 857 1411 --algorithm LBC
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core import (
    CE,
    EDC,
    EDCIncremental,
    LBC,
    LBCLazy,
    LBCRoundRobin,
    NaiveSkyline,
    Workspace,
)
from repro.datasets import (
    build_preset,
    delaunay_road_network,
    estimate_delta,
    extract_objects,
    load_network,
    load_objects,
    network_density,
    save_network,
    save_objects,
    select_query_points,
)
from repro.engine import BACKEND_NAMES, DEFAULT_BACKEND

ALGORITHMS = {
    "CE": CE,
    "EDC": EDC,
    "EDC-inc": EDCIncremental,
    "LBC": LBC,
    "LBC-lazy": LBCLazy,
    "LBC-rr": LBCRoundRobin,
    "naive": NaiveSkyline,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-source skyline query processing in road networks",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a synthetic network")
    generate.add_argument("--preset", choices=["CA", "AU", "NA"])
    generate.add_argument("--nodes", type=int, help="custom generator size")
    generate.add_argument("--ratio", type=float, default=1.25, help="|E|/|V|")
    generate.add_argument("--scale", type=float, default=0.10)
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--out", required=True, help="network file to write")
    generate.add_argument("--objects", help="also write an object file here")
    generate.add_argument("--omega", type=float, default=0.5)

    info = sub.add_parser("info", help="statistics of a network file")
    info.add_argument("network")
    info.add_argument("--delta", action="store_true", help="estimate δ (slow)")

    query = sub.add_parser("query", help="run a skyline query")
    query.add_argument("network")
    query.add_argument("objects")
    query.add_argument(
        "--algorithm", choices=sorted(ALGORITHMS), default="LBC"
    )
    group = query.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--query-nodes", type=int, nargs="+", help="junction ids"
    )
    group.add_argument(
        "--random-queries", type=int, help="draw N query junctions"
    )
    query.add_argument("--seed", type=int, default=0)
    query.add_argument(
        "--distance-backend",
        choices=list(BACKEND_NAMES),
        default=DEFAULT_BACKEND,
        help="distance engine backend (default: %(default)s)",
    )
    query.add_argument(
        "--oracle",
        help="attach a prebuilt distance-oracle index file "
        "(see `repro oracle build`)",
    )
    query.add_argument("--svg", help="write a picture of the result")
    query.add_argument("--json", help="write the result as JSON here")
    query.add_argument(
        "--stats", action="store_true", help="print cost statistics"
    )

    trace = sub.add_parser(
        "trace", help="run one query and print its trace as a span tree"
    )
    trace.add_argument("network", nargs="?")
    trace.add_argument("objects", nargs="?")
    trace.add_argument(
        "--algorithm", choices=sorted(ALGORITHMS), default="LBC"
    )
    trace_group = trace.add_mutually_exclusive_group()
    trace_group.add_argument(
        "--query-nodes", type=int, nargs="+", help="junction ids"
    )
    trace_group.add_argument(
        "--random-queries", type=int, help="draw N query junctions"
    )
    trace.add_argument(
        "--last", action="store_true",
        help="render the most recent exported trace or flight record "
        "from --trace-dir instead of running a query",
    )
    trace.add_argument(
        "--trace-dir", default=None,
        help="directory of exported traces / flight records (with --last)",
    )
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument(
        "--distance-backend",
        choices=list(BACKEND_NAMES),
        default=DEFAULT_BACKEND,
    )
    trace.add_argument(
        "--keys", nargs="+",
        help="counters to show per span (default: pages + settled nodes)",
    )
    trace.add_argument("--max-depth", type=int, default=8)
    trace.add_argument("--json", help="also write the trace as JSON here")

    blackbox = sub.add_parser(
        "blackbox",
        help="inspect a flight-record dump (ring, in-flight spans, stacks)",
    )
    blackbox.add_argument(
        "path", nargs="?",
        help="flight-record JSON (default: newest in --dir)",
    )
    blackbox.add_argument(
        "--dir", default=None,
        help="directory of flightrecord-*.json dumps",
    )
    blackbox.add_argument(
        "--keys", nargs="+",
        help="counters to show per span (default: pages + settled nodes)",
    )
    blackbox.add_argument("--max-depth", type=int, default=6)
    blackbox.add_argument(
        "--no-threads", action="store_true",
        help="omit the per-thread stack section",
    )

    route = sub.add_parser("route", help="shortest path between junctions")
    route.add_argument("network")
    route.add_argument("origin", type=int)
    route.add_argument("destination", type=int)

    oracle = sub.add_parser(
        "oracle", help="build / verify preprocessed distance oracles"
    )
    oracle_sub = oracle.add_subparsers(dest="oracle_command", required=True)
    oracle_build = oracle_sub.add_parser(
        "build", help="preprocess a network into an oracle index file"
    )
    oracle_build.add_argument("network")
    oracle_build.add_argument("--out", required=True, help="index file to write")
    oracle_build.add_argument(
        "--kind", choices=["ch", "hublabel"], default="hublabel"
    )
    oracle_build.add_argument(
        "--witness-limit",
        type=int,
        default=64,
        help="witness-search settle limit per contraction (default: 64)",
    )
    oracle_verify = oracle_sub.add_parser(
        "verify",
        help="sample random junction pairs against online Dijkstra",
    )
    oracle_verify.add_argument("network")
    oracle_verify.add_argument("oracle")
    oracle_verify.add_argument("--samples", type=int, default=200)
    oracle_verify.add_argument("--seed", type=int, default=0)
    oracle_verify.add_argument(
        "--tolerance",
        type=float,
        default=1e-9,
        help="max relative error allowed (oracle sums may differ from "
        "online search by float association noise; default: %(default)s)",
    )

    serve = sub.add_parser(
        "serve", help="serve skyline queries over HTTP (repro-serve)"
    )
    from repro.service.http import add_serve_arguments

    add_serve_arguments(serve)

    experiment = sub.add_parser(
        "experiment", help="regenerate the paper's figures"
    )
    experiment.add_argument("--trials", type=int, default=5)
    experiment.add_argument("--scale", type=float, default=0.10)
    experiment.add_argument("--quick", action="store_true")

    bench = sub.add_parser(
        "bench",
        help="run the benchmark suite; emit/compare BENCH_<rev>.json",
        add_help=False,  # --help flows through to the bench parser
    )
    bench.add_argument("rest", nargs=argparse.REMAINDER)

    insight = sub.add_parser(
        "insight",
        help="summarize/compare/top over event logs and bench artifacts",
        add_help=False,  # --help flows through to the insight parser
    )
    insight.add_argument("rest", nargs=argparse.REMAINDER)

    profile = sub.add_parser(
        "profile",
        help="sampling profiler: per-span self time + collapsed stacks",
    )
    _add_workload_arguments(profile)
    profile.add_argument(
        "--interval-ms",
        type=float,
        default=2.0,
        help="sampling interval in milliseconds (default: 2.0)",
    )
    profile.add_argument(
        "--min-samples",
        type=int,
        default=200,
        help="re-run the workload until this many samples are captured",
    )
    profile.add_argument(
        "--collapsed",
        help="write collapsed stacks here (flamegraph.pl / speedscope)",
    )
    profile.add_argument(
        "--top", type=int, default=20, help="rows in the self-time table"
    )

    heatmap = sub.add_parser(
        "heatmap",
        help="page-access heatmaps per buffer pool after a workload",
    )
    _add_workload_arguments(heatmap)
    heatmap.add_argument(
        "--out", help="write the page heats as JSON here"
    )
    heatmap.add_argument(
        "--top", type=int, default=8, help="hottest pages listed per pool"
    )
    heatmap.add_argument(
        "--width", type=int, default=64, help="intensity strip width"
    )

    lint = sub.add_parser(
        "lint",
        help="run the architecture & concurrency linter (repro.analysis)",
        add_help=False,  # --help flows through to the lint parser
    )
    lint.add_argument("rest", nargs=argparse.REMAINDER)

    return parser


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared preset-workload knobs of ``profile`` and ``heatmap``."""
    parser.add_argument(
        "--preset", choices=["CA", "AU", "NA"], default="AU"
    )
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--omega", type=float, default=0.5)
    parser.add_argument(
        "--algorithm", choices=sorted(ALGORITHMS), default="LBC"
    )
    parser.add_argument(
        "--queries", type=int, default=4, help="|Q| query points"
    )
    parser.add_argument("--seed", type=int, default=100)
    parser.add_argument(
        "--distance-backend",
        choices=list(BACKEND_NAMES),
        default=DEFAULT_BACKEND,
    )


def _build_preset_workload(args):
    """Workspace + query points for the profile/heatmap subcommands."""
    network = build_preset(args.preset, scale=args.scale)
    objects = extract_objects(network, omega=args.omega, seed=1)
    workspace = Workspace.build(
        network, objects, paged=True, distance_backend=args.distance_backend
    )
    queries = select_query_points(
        network, args.queries, region_fraction=0.10, seed=args.seed
    )
    return workspace, queries


def _cmd_generate(args) -> int:
    if args.preset:
        network = build_preset(args.preset, scale=args.scale, seed=args.seed)
    elif args.nodes:
        network = delaunay_road_network(
            args.nodes, edge_node_ratio=args.ratio, seed=args.seed
        )
    else:
        print("error: pass --preset or --nodes", file=sys.stderr)
        return 2
    save_network(network, args.out)
    print(
        f"wrote {args.out}: {network.node_count} junctions, "
        f"{network.edge_count} edges"
    )
    if args.objects:
        objects = extract_objects(network, omega=args.omega, seed=args.seed + 1)
        save_objects(objects, args.objects)
        print(f"wrote {args.objects}: {len(objects)} objects (ω={args.omega})")
    return 0


def _cmd_info(args) -> int:
    network = load_network(args.network)
    print(f"junctions:      {network.node_count}")
    print(f"edges:          {network.edge_count}")
    print(f"|E|/|V|:        {network.edge_count / max(1, network.node_count):.3f}")
    print(f"total length:   {network.total_length():.3f}")
    print(f"density:        {network_density(network):.2f}")
    print(f"connected:      {network.is_connected()}")
    print(f"detour factor:  {network.average_detour_factor():.3f}")
    if args.delta:
        delta = estimate_delta(network, sources=6, targets_per_source=40)
        print(f"delta (dN/dE):  {delta:.3f}")
    return 0


def _cmd_query(args) -> int:
    network = load_network(args.network)
    objects = load_objects(network, args.objects)
    workspace = Workspace.build(
        network, objects, distance_backend=args.distance_backend
    )
    if args.oracle:
        from repro.oracle import OracleIndexError, load_oracle_index

        try:
            workspace.engine.attach_oracle(load_oracle_index(args.oracle))
        except OracleIndexError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.query_nodes:
        missing = [n for n in args.query_nodes if not network.has_node(n)]
        if missing:
            print(f"error: unknown junction ids {missing}", file=sys.stderr)
            return 2
        queries = [network.location_at_node(n) for n in args.query_nodes]
    else:
        queries = select_query_points(
            network, args.random_queries, seed=args.seed
        )
        print(
            "query junctions:",
            " ".join(str(q.node_id) for q in queries),
        )
    algorithm = ALGORITHMS[args.algorithm]()
    result = algorithm.run(workspace, queries)

    header = ["object"] + [f"d(q{i})" for i in range(len(queries))]
    if workspace.attribute_count:
        header += [f"attr{j}" for j in range(workspace.attribute_count)]
    print("  ".join(f"{h:>10s}" for h in header))
    for point in result:
        cells = [f"{point.obj.object_id:>10d}"]
        cells += [f"{v:>10.4f}" for v in point.vector]
        print("  ".join(cells))
    print(f"\n{len(result)} skyline points ({algorithm.name})")
    if args.stats:
        s = result.stats
        print(
            f"candidates={s.candidate_count} nodes={s.nodes_settled} "
            f"net_pages={s.network_pages} idx_pages={s.index_pages} "
            f"mid_pages={s.middle_pages} t={s.total_response_s:.4f}s "
            f"t_first={s.initial_response_s:.4f}s"
        )
        info = workspace.engine.cache_info()
        print(
            f"engine: backend={info['backend']} oracle={info['oracle']} "
            f"hits={info['hits']} misses={info['misses']} "
            f"evictions={info['evictions']} "
            f"pool={info['pool_entries']}/{info['pool_capacity']} "
            f"memo={info['memo_entries']}/{info['memo_capacity']}"
        )
        if s.oracle_pages or s.oracle_label_entries or s.oracle_nodes_settled:
            print(
                f"oracle: pages={s.oracle_pages} "
                f"nodes={s.oracle_nodes_settled} "
                f"label_entries={s.oracle_label_entries} "
                f"fallbacks={s.oracle_fallbacks}"
            )
    if args.svg:
        from repro.viz import render_query, save_svg

        save_svg(render_query(workspace, queries, result), args.svg)
        print(f"wrote {args.svg}")
    if args.json:
        import json

        payload = {
            "algorithm": algorithm.name,
            "query_points": [
                {"node": q.node_id, "edge": q.edge_id, "offset": q.offset,
                 "x": q.point.x, "y": q.point.y}
                for q in queries
            ],
            "skyline": [
                {"object_id": p.object_id, "vector": list(p.vector)}
                for p in result
            ],
            "stats": result.stats.as_row(),
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")
    return 0


def _cmd_trace(args) -> int:
    from repro.obs import format_trace

    if args.last:
        return _render_last_trace(args)
    if not args.network or not args.objects:
        print(
            "error: network and objects are required unless --last is given",
            file=sys.stderr,
        )
        return 2
    if args.query_nodes is None and args.random_queries is None:
        print(
            "error: provide --query-nodes or --random-queries "
            "(or use --last)",
            file=sys.stderr,
        )
        return 2
    network = load_network(args.network)
    objects = load_objects(network, args.objects)
    workspace = Workspace.build(
        network, objects, distance_backend=args.distance_backend
    )
    if args.query_nodes:
        missing = [n for n in args.query_nodes if not network.has_node(n)]
        if missing:
            print(f"error: unknown junction ids {missing}", file=sys.stderr)
            return 2
        queries = [network.location_at_node(n) for n in args.query_nodes]
    else:
        queries = select_query_points(
            network, args.random_queries, seed=args.seed
        )
        print(
            "query junctions:",
            " ".join(str(q.node_id) for q in queries),
        )
    algorithm = ALGORITHMS[args.algorithm]()
    result = algorithm.run(workspace, queries)

    root = result.trace
    if args.keys:
        print(format_trace(root, keys=tuple(args.keys), max_depth=args.max_depth))
    else:
        print(format_trace(root, max_depth=args.max_depth))
    s = result.stats
    print(
        f"\n{len(result)} skyline points ({algorithm.name})  "
        f"nodes_settled={s.nodes_settled} net_pages={s.network_pages} "
        f"idx_pages={s.index_pages} mid_pages={s.middle_pages} "
        f"t={s.total_response_s:.4f}s"
    )
    if args.json:
        import json

        with open(args.json, "w") as handle:
            json.dump(root.to_dict(), handle, indent=1)
        print(f"wrote {args.json}")
    return 0


def _render_last_trace(args) -> int:
    """``repro trace --last``: newest trace or flight record on disk."""
    import glob
    import json
    import os

    from repro.obs import Span, format_flight_record, format_trace

    if not args.trace_dir:
        print("error: --last requires --trace-dir", file=sys.stderr)
        return 2
    candidates = [
        path
        for pattern in ("trace-*.json", "flightrecord-*.json")
        for path in glob.glob(os.path.join(args.trace_dir, pattern))
    ]
    if not candidates:
        print(
            f"error: no trace-*.json or flightrecord-*.json under "
            f"{args.trace_dir}",
            file=sys.stderr,
        )
        return 2
    newest = max(candidates, key=os.path.getmtime)
    with open(newest) as handle:
        payload = json.load(handle)
    print(f"{newest}:")
    keys = tuple(args.keys) if args.keys else None
    if "flight_record" in payload:
        extra = {"keys": keys} if keys else {}
        print(
            format_flight_record(
                payload,
                max_depth=args.max_depth,
                include_threads=False,
                **extra,
            )
        )
    elif keys:
        print(
            format_trace(
                Span.from_dict(payload), keys=keys, max_depth=args.max_depth
            )
        )
    else:
        print(format_trace(Span.from_dict(payload), max_depth=args.max_depth))
    return 0


def _cmd_blackbox(args) -> int:
    """``repro blackbox``: render a flight-record dump."""
    from repro.obs import format_flight_record, latest_flight_record
    from repro.obs.recorder import load_flight_record

    path = args.path
    if path is None:
        if not args.dir:
            print(
                "error: give a flight-record path or --dir", file=sys.stderr
            )
            return 2
        path = latest_flight_record(args.dir)
        if path is None:
            print(
                f"error: no flightrecord-*.json under {args.dir}",
                file=sys.stderr,
            )
            return 2
    try:
        payload = load_flight_record(path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"{path}:")
    extra = {"keys": tuple(args.keys)} if args.keys else {}
    print(
        format_flight_record(
            payload,
            max_depth=args.max_depth,
            include_threads=not args.no_threads,
            **extra,
        )
    )
    return 0


def _cmd_route(args) -> int:
    from repro.network import route_to

    network = load_network(args.network)
    for node in (args.origin, args.destination):
        if not network.has_node(node):
            print(f"error: unknown junction id {node}", file=sys.stderr)
            return 2
    try:
        distance, route = route_to(
            network,
            network.location_at_node(args.origin),
            network.location_at_node(args.destination),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    junctions = [str(loc.node_id) for loc in route if loc.node_id is not None]
    print(" -> ".join(junctions))
    print(f"distance: {distance:.4f}")
    return 0


def _cmd_serve(args) -> int:
    from repro.service.http import run_serve

    return run_serve(args)


def _cmd_oracle(args) -> int:
    if args.oracle_command == "build":
        return _cmd_oracle_build(args)
    return _cmd_oracle_verify(args)


def _cmd_oracle_build(args) -> int:
    from repro.oracle import build_oracle_index, save_oracle_index

    network = load_network(args.network)
    index = build_oracle_index(
        network, kind=args.kind, witness_settle_limit=args.witness_limit
    )
    save_oracle_index(index, args.out)
    print(f"wrote {args.out} ({index.kind})")
    print(f"junctions:      {index.node_count}")
    print(f"shortcuts:      {index.shortcut_count}")
    if index.kind == "hublabel":
        print(f"label entries:  {index.label_entry_count}")
        print(f"avg label size: {index.average_label_size:.2f}")
    print(f"build time:     {index.build_seconds:.3f}s")
    return 0


def _cmd_oracle_verify(args) -> int:
    import random

    from repro.engine import DistanceEngine
    from repro.obs import tracing
    from repro.oracle import (
        DistanceOracle,
        load_oracle_index,
        network_signature,
    )

    network = load_network(args.network)
    index = load_oracle_index(args.oracle)
    if index.signature != network_signature(network):
        print(
            "error: oracle index was built on a different network "
            "(signature mismatch)",
            file=sys.stderr,
        )
        return 1
    oracle = DistanceOracle(index, network)
    engine = DistanceEngine(network, backend="dijkstra")
    rng = random.Random(args.seed)
    nodes = sorted(network.node_ids())
    worst = 0.0
    failures = 0
    with tracing.span("oracle.verify", samples=args.samples):
        for _ in range(args.samples):
            a = network.location_at_node(rng.choice(nodes))
            b = network.location_at_node(rng.choice(nodes))
            expected = engine.distance(a, b)
            got = oracle.distance(a, b)
            if got == expected:  # covers exact matches and inf == inf
                continue
            rel = abs(got - expected) / max(abs(expected), 1e-300)
            worst = max(worst, rel)
            if rel > args.tolerance:
                failures += 1
    print(f"verified {args.samples} sampled pairs ({index.kind})")
    print(f"max relative error: {worst:.3e} (tolerance {args.tolerance:.1e})")
    if failures:
        print(f"error: {failures} pair(s) exceeded tolerance", file=sys.stderr)
        return 1
    print("OK")
    return 0


def _cmd_profile(args) -> int:
    from repro.profiling import SamplingProfiler, format_self_time_table

    workspace, queries = _build_preset_workload(args)
    algorithm = ALGORITHMS[args.algorithm]()
    interval_s = args.interval_ms / 1000.0
    profiler = SamplingProfiler(interval_s=interval_s)
    runs = 0
    with profiler:
        # Re-run the workload until enough samples exist for a stable
        # profile; counters are not being measured here, so repetition
        # is free of determinism concerns.
        while profiler.report.total_samples < args.min_samples:
            workspace.reset_io(cold=True)
            algorithm.run(workspace, queries)
            runs += 1
    report = profiler.report
    print(
        f"profiled {runs} run(s) of {algorithm.name} on "
        f"{args.preset}@{args.scale} |Q|={len(queries)}"
    )
    print(format_self_time_table(report, top=args.top))
    if args.collapsed:
        count = report.write_collapsed(args.collapsed)
        print(f"wrote {args.collapsed} ({count} collapsed stacks)")
    return 0


def _cmd_heatmap(args) -> int:
    from repro.storage.heatmap import heat_dict, render_component

    workspace, queries = _build_preset_workload(args)
    algorithm = ALGORITHMS[args.algorithm]()
    workspace.reset_io(cold=True)
    result = algorithm.run(workspace, queries)
    components = {}
    if workspace.store is not None:
        components["network"] = workspace.store.pool.page_accesses()
    if workspace.rtree_pager is not None:
        components["index"] = workspace.rtree_pager.pool.page_accesses()
    if workspace.middle_pager is not None:
        components["middle"] = workspace.middle_pager.pool.page_accesses()
    oracle_store = (
        workspace.engine.oracle_store() if workspace.engine is not None else None
    )
    if oracle_store is not None:
        components["oracle"] = oracle_store.pool.page_accesses()
    print(
        f"{algorithm.name} on {args.preset}@{args.scale} |Q|={len(queries)}: "
        f"{len(result)} skyline points, "
        f"{result.stats.total_pages} physical page reads"
    )
    for name, accesses in components.items():
        print(render_component(name, accesses, top=args.top, width=args.width))
    if args.out:
        import json

        with open(args.out, "w") as handle:
            json.dump(heat_dict(components), handle, indent=1, sort_keys=True)
        print(f"wrote {args.out}")
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis.cli import main as lint_main

    return lint_main(args.rest)


def _cmd_bench(args) -> int:
    from repro.bench.__main__ import main as bench_main

    return bench_main(args.rest)


def _cmd_insight(args) -> int:
    from repro.insight.cli import main as insight_main

    return insight_main(args.rest)


def _cmd_experiment(args) -> int:
    from repro.experiments.__main__ import main as run_experiments

    argv = ["--trials", str(args.trials), "--scale", str(args.scale)]
    if args.quick:
        argv.append("--quick")
    old = sys.argv
    sys.argv = ["repro-experiments", *argv]
    try:
        run_experiments()
    finally:
        sys.argv = old
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # argparse.REMAINDER refuses a leading flag (`repro lint --list-rules`,
    # `repro bench --quick`), so those subcommands are dispatched before
    # parsing.
    if argv and argv[0] == "lint":
        from repro.analysis.cli import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "bench":
        from repro.bench.__main__ import main as bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "insight":
        from repro.insight.cli import main as insight_main

        return insight_main(argv[1:])
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "info": _cmd_info,
        "query": _cmd_query,
        "trace": _cmd_trace,
        "blackbox": _cmd_blackbox,
        "route": _cmd_route,
        "oracle": _cmd_oracle,
        "serve": _cmd_serve,
        "experiment": _cmd_experiment,
        "bench": _cmd_bench,
        "insight": _cmd_insight,
        "profile": _cmd_profile,
        "heatmap": _cmd_heatmap,
        "lint": _cmd_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
