"""Focused tests for core helpers: eviction, explain vectors, EDC stats."""

import pytest

from repro.core import EDC, LBC, NaiveSkyline, Workspace, object_vector
from repro.core.base import insert_skyline_point
from repro.core.result import SkylinePoint
from repro.network import ObjectSet, SpatialObject

from conftest import build_random_network, place_random_objects, random_locations


def _point(network, object_id, vector):
    objects = place_random_objects(network, 1, seed=object_id, first_id=object_id)
    return SkylinePoint(obj=objects.objects[0], vector=vector)


class TestInsertSkylinePoint:
    @pytest.fixture
    def net(self):
        return build_random_network(20, 10, seed=900)

    def test_plain_append(self, net):
        skyline = [_point(net, 0, (1.0, 5.0))]
        insert_skyline_point(skyline, _point(net, 1, (5.0, 1.0)))
        assert [p.object_id for p in skyline] == [0, 1]

    def test_evicts_dominated_member(self, net):
        skyline = [_point(net, 0, (3.0, 3.0))]
        insert_skyline_point(skyline, _point(net, 1, (2.0, 3.0)))
        assert [p.object_id for p in skyline] == [1]

    def test_evicts_multiple(self, net):
        skyline = [
            _point(net, 0, (3.0, 3.0)),
            _point(net, 1, (4.0, 2.5)),
            _point(net, 2, (0.5, 9.0)),
        ]
        insert_skyline_point(skyline, _point(net, 3, (2.0, 2.0)))
        assert sorted(p.object_id for p in skyline) == [2, 3]

    def test_equal_vector_not_evicted(self, net):
        skyline = [_point(net, 0, (1.0, 1.0))]
        insert_skyline_point(skyline, _point(net, 1, (1.0, 1.0)))
        assert sorted(p.object_id for p in skyline) == [0, 1]


class TestObjectVector:
    def test_matches_naive_vectors(self):
        network = build_random_network(40, 25, seed=910)
        objects = place_random_objects(network, 15, seed=911, attribute_count=1)
        workspace = Workspace.build(network, objects, paged=False)
        queries = random_locations(network, 2, seed=912)
        reference = NaiveSkyline().run(workspace, queries)
        for point in reference:
            recomputed = object_vector(workspace, queries, point.object_id)
            assert recomputed == pytest.approx(point.vector)

    def test_includes_attributes(self):
        network = build_random_network(30, 15, seed=920)
        objects = place_random_objects(network, 5, seed=921, attribute_count=2)
        workspace = Workspace.build(network, objects, paged=False)
        queries = random_locations(network, 1, seed=922)
        vector = object_vector(workspace, queries, 0)
        assert len(vector) == 3
        assert vector[1:] == objects.get(0).attributes


class TestEDCClosureAccounting:
    def test_counterexample_records_closure_stats(self):
        """The constructed EDC blind spot must show up in the stats."""
        from repro.geometry import Point
        from repro.network import RoadNetwork

        net = RoadNetwork()
        net.add_node(0, Point(0.0, 0.0))
        net.add_node(1, Point(0.0, 1.0))
        net.add_node(2, Point(0.0, 0.45))
        net.add_node(3, Point(0.3, 0.5))
        e_q1 = net.add_edge(0, 2, length=5.0)
        net.add_edge(1, 2, length=0.55)
        net.add_edge(0, 3, length=0.6)
        net.add_edge(1, 3, length=0.6)
        eid = net.add_edge(2, 3, length=0.31)
        objects = ObjectSet.build(
            net,
            [
                SpatialObject(0, net.location_on_edge(e_q1.edge_id, 4.999)),
                SpatialObject(1, net.location_on_edge(eid.edge_id, 0.3)),
            ],
        )
        ws = Workspace.build(net, objects, paged=False)
        queries = [net.location_at_node(0), net.location_at_node(1)]
        result = EDC().run(ws, queries)
        assert result.stats.extras.get("closure_candidates", 0) >= 1

    def test_closure_silent_on_easy_workload(self):
        network = build_random_network(50, 35, seed=930, detour_max=0.2)
        objects = place_random_objects(network, 25, seed=931)
        workspace = Workspace.build(network, objects, paged=False)
        queries = random_locations(network, 2, seed=932)
        stats = EDC().run(workspace, queries).stats
        # Low detours: the published region almost always suffices.
        assert stats.extras.get("closure_candidates", 0.0) <= stats.candidate_count


class TestWorkspacePolicy:
    def test_bad_policy_rejected_at_build(self):
        network = build_random_network(20, 10, seed=940)
        objects = place_random_objects(network, 5, seed=941)
        with pytest.raises(ValueError):
            Workspace.build(network, objects, buffer_policy="mru")

    def test_policies_do_not_change_answers(self):
        network = build_random_network(50, 30, seed=950)
        objects = place_random_objects(network, 30, seed=951)
        queries = random_locations(network, 3, seed=952)
        answers = []
        for policy in ("lru", "fifo", "clock"):
            workspace = Workspace.build(
                network, objects, buffer_policy=policy, buffer_bytes=32 * 1024
            )
            answers.append(LBC().run(workspace, queries).object_ids())
        assert answers[0] == answers[1] == answers[2]
