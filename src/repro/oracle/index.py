"""The built oracle artifact: signature, statistics, file round-trip.

An :class:`OracleIndex` is everything a :class:`~repro.oracle.runtime.
DistanceOracle` needs at query time — the contraction order, the upward
adjacency (shortcuts included) and, for the ``hublabel`` kind, the
pruned labels — plus a **network signature** binding the index to the
exact graph it was built on.  Distances depend only on topology and
edge lengths, so the signature hashes node ids and ``(endpoints,
length)`` per edge (lengths in ``float.hex`` so the binding is
bit-exact); attaching an index to a mutated network fails fast instead
of silently answering from a stale graph.

Persistence is a single JSON document.  Python's JSON round-trips
float64 exactly (``repr`` shortest-round-trip), the scaled networks
keep the files small, and a human can read the artifact — the same
trade the repo's ``.net``/``.obj`` formats make.  The page-accounting
layout is *not* part of the file: :class:`~repro.oracle.store.
OracleStore` re-packs records at load time exactly as
:class:`~repro.network.storage.NetworkStore` does for adjacency.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field

from repro.network.graph import RoadNetwork
from repro.obs import tracing
from repro.oracle.ch import (
    DEFAULT_WITNESS_SETTLE_LIMIT,
    build_contraction_hierarchy,
)
from repro.oracle.hublabel import build_hub_labels

ORACLE_FILE_FORMAT = "repro-oracle"
ORACLE_FILE_VERSION = 1


class OracleIndexError(ValueError):
    """Malformed, mismatched or wrong-format oracle files/indexes."""


def network_signature(network: RoadNetwork) -> str:
    """A digest of everything network distances depend on.

    Node ids plus per-edge ``(id, endpoints, length)``; coordinates are
    excluded (they never enter a network distance).  Edge lengths hash
    as ``float.hex`` so two graphs match iff distances are bit-equal.
    """
    digest = hashlib.sha1()
    digest.update(f"nodes:{network.node_count}\n".encode())
    for node_id in sorted(network.node_ids()):
        digest.update(f"n {node_id}\n".encode())
    for edge_id in sorted(network.edge_ids()):
        edge = network.edge(edge_id)
        u, v = sorted((edge.u, edge.v))
        digest.update(
            f"e {edge_id} {u} {v} {float(edge.length).hex()}\n".encode()
        )
    return digest.hexdigest()


@dataclass
class OracleIndex:
    """A finished preprocessing artifact (see module docstring)."""

    kind: str
    signature: str
    order: list[int]
    upward: dict[int, list[tuple[int, float]]]
    labels: dict[int, list[tuple[int, float]]] | None = None
    shortcut_count: int = 0
    build_seconds: float = 0.0
    witness_settle_limit: int = DEFAULT_WITNESS_SETTLE_LIMIT
    node_count: int = field(default=0)

    def __post_init__(self) -> None:
        if self.kind not in ("ch", "hublabel"):
            raise OracleIndexError(f"unknown oracle kind {self.kind!r}")
        if self.kind == "hublabel" and self.labels is None:
            raise OracleIndexError("hublabel index carries no labels")
        if not self.node_count:
            self.node_count = len(self.order)

    @property
    def label_entry_count(self) -> int:
        """Total ``(hub, distance)`` entries across all labels."""
        if self.labels is None:
            return 0
        return sum(len(label) for label in self.labels.values())

    @property
    def average_label_size(self) -> float:
        """Mean label length (0.0 for a pure-CH index)."""
        if not self.labels:
            return 0.0
        return self.label_entry_count / len(self.labels)


def build_oracle_index(
    network: RoadNetwork,
    kind: str = "ch",
    witness_settle_limit: int = DEFAULT_WITNESS_SETTLE_LIMIT,
) -> OracleIndex:
    """Run the preprocessing pipeline for one network.

    Opens an ``oracle.build`` span; callers that must keep the build
    off a live query's trace (the lazy backend path) wrap this call in
    :func:`repro.obs.tracing.suppressed`.
    """
    if kind not in ("ch", "hublabel"):
        raise OracleIndexError(f"unknown oracle kind {kind!r}")
    started = time.perf_counter()
    with tracing.span("oracle.build", kind=kind, nodes=network.node_count):
        ch = build_contraction_hierarchy(
            network, witness_settle_limit=witness_settle_limit
        )
        labels = build_hub_labels(ch) if kind == "hublabel" else None
    return OracleIndex(
        kind=kind,
        signature=network_signature(network),
        order=ch.order,
        upward=ch.upward,
        labels=labels,
        shortcut_count=ch.shortcut_count,
        build_seconds=time.perf_counter() - started,
        witness_settle_limit=witness_settle_limit,
    )


def _entries_to_json(entries: dict[int, list[tuple[int, float]]]) -> dict:
    return {
        str(node): [[other, weight] for other, weight in pairs]
        for node, pairs in entries.items()
    }


def _entries_from_json(payload: dict) -> dict[int, list[tuple[int, float]]]:
    return {
        int(node): [(int(other), float(weight)) for other, weight in pairs]
        for node, pairs in payload.items()
    }


def save_oracle_index(index: OracleIndex, path: str) -> str:
    """Write the index as one JSON document; returns ``path``."""
    document = {
        "format": ORACLE_FILE_FORMAT,
        "version": ORACLE_FILE_VERSION,
        "kind": index.kind,
        "signature": index.signature,
        "node_count": index.node_count,
        "shortcut_count": index.shortcut_count,
        "build_seconds": round(index.build_seconds, 6),
        "witness_settle_limit": index.witness_settle_limit,
        "order": index.order,
        "upward": _entries_to_json(index.upward),
        "labels": (
            _entries_to_json(index.labels) if index.labels is not None else None
        ),
    }
    with open(path, "w") as handle:
        json.dump(document, handle, separators=(",", ":"))
        handle.write("\n")
    return path


def load_oracle_index(path: str) -> OracleIndex:
    """Read an index file back, validating format and version."""
    with open(path) as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as exc:
            raise OracleIndexError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(document, dict):
        raise OracleIndexError(f"{path}: not an oracle index document")
    if document.get("format") != ORACLE_FILE_FORMAT:
        raise OracleIndexError(
            f"{path}: format {document.get('format')!r} is not "
            f"{ORACLE_FILE_FORMAT!r}"
        )
    if document.get("version") != ORACLE_FILE_VERSION:
        raise OracleIndexError(
            f"{path}: version {document.get('version')!r} unsupported "
            f"(expected {ORACLE_FILE_VERSION})"
        )
    labels = document.get("labels")
    return OracleIndex(
        kind=document["kind"],
        signature=document["signature"],
        order=[int(node) for node in document["order"]],
        upward=_entries_from_json(document["upward"]),
        labels=_entries_from_json(labels) if labels is not None else None,
        shortcut_count=int(document.get("shortcut_count", 0)),
        build_seconds=float(document.get("build_seconds", 0.0)),
        witness_settle_limit=int(
            document.get("witness_settle_limit", DEFAULT_WITNESS_SETTLE_LIMIT)
        ),
        node_count=int(document.get("node_count", 0)),
    )
