"""Extensions beyond the paper's core contribution.

The paper's conclusion suggests the path-distance lower bound "can be
applied to benefit other types of road network queries"; this package
carries those transfers:

* :mod:`repro.extensions.ann` — aggregate nearest-neighbour queries
  (sum/max group travel), baseline and plb-accelerated.
"""

from repro.extensions.ann import (
    AGGREGATES,
    AggregateNNAnswer,
    AggregateNNBaseline,
    AggregateNNLowerBound,
    AggregateNNResult,
    brute_force_aggregate_nn,
)

__all__ = [
    "AGGREGATES",
    "AggregateNNAnswer",
    "AggregateNNBaseline",
    "AggregateNNLowerBound",
    "AggregateNNResult",
    "brute_force_aggregate_nn",
]
