"""``repro.obs`` — the unified telemetry subsystem.

Every cost signal the paper's evaluation is built on (network page
accesses, nodes settled, memo hits, response times) flows through this
package exactly once, in one of three shapes:

* **Metrics** (:mod:`repro.obs.metrics`) — process-lifetime counters,
  gauges and fixed-bucket histograms, grouped into labeled families in
  a thread-safe :class:`MetricRegistry` and exposed in Prometheus text
  format at ``GET /metricsz``.
* **Tracing spans** (:mod:`repro.obs.tracing`) — a hierarchical span
  tree per query, propagated via :mod:`contextvars` from service
  request admission through batch execution, algorithm phases, engine
  backend calls, and down to individual R-tree/B+-tree node visits and
  buffer-pool misses.  Per-span counters are the *source of truth* for
  :class:`~repro.core.stats.QueryStats`: the per-query totals are read
  off the query's root span, so span sums and stats totals reconcile
  exactly by construction.
* **Slow-query log** (:mod:`repro.obs.slowlog`) — threshold-filtered,
  reservoir-sampled records of the worst requests a service answered.

PR 8 adds the *post-hoc* diagnostics plane on the same substrate:

* **Wide events** (:mod:`repro.obs.events`) — one canonical JSONL
  record per query through a bounded-queue async writer with size
  rotation and exact emitted/written/dropped accounting.
* **Flight recorder** (:mod:`repro.obs.recorder`) — an always-on ring
  of recent completed traces plus triggered black-box dumps (in-flight
  span trees, thread stacks) and a stall watchdog over the in-flight
  query registry.
* **SLO monitor** (:mod:`repro.obs.slo`) — declarative latency and
  availability objectives evaluated as multi-window burn rates over
  histogram snapshots (``GET /sloz``).

Layering: ``obs`` sits below everything (stdlib only); storage, index,
engine, core and service all call *into* it and never the reverse.
"""

from repro.obs.events import (
    EventLog,
    EventReader,
    iter_events,
    read_events,
    wide_event,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricFamily,
    MetricRegistry,
    parse_prometheus_text,
)
from repro.obs.names import (
    COUNTER_KEYS,
    METRIC_FAMILIES,
    SPAN_NAME_PATTERNS,
    SPAN_NAMES,
    is_registered_counter_key,
    is_registered_metric_family,
    is_registered_span_name,
)
from repro.obs.recorder import (
    FlightRecorder,
    InFlightTable,
    StallWatchdog,
    format_flight_record,
    install_signal_dump,
    latest_flight_record,
    load_flight_record,
    thread_stacks,
)
from repro.obs.slo import (
    DEFAULT_WINDOWS,
    BurnWindow,
    Objective,
    SLOMonitor,
    histogram_good_total,
)
from repro.obs.slowlog import SlowQueryLog, SlowQueryRecord
from repro.obs.tracing import (
    Span,
    Tracer,
    activate,
    active_roots,
    active_span_of_thread,
    active_spans,
    current_span,
    format_trace,
    record,
    span,
    suppressed,
)

__all__ = [
    "COUNTER_KEYS",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_WINDOWS",
    "METRIC_FAMILIES",
    "BurnWindow",
    "EventLog",
    "EventReader",
    "FlightRecorder",
    "InFlightTable",
    "MetricFamily",
    "MetricRegistry",
    "Objective",
    "SLOMonitor",
    "SPAN_NAMES",
    "SPAN_NAME_PATTERNS",
    "StallWatchdog",
    "is_registered_counter_key",
    "is_registered_metric_family",
    "is_registered_span_name",
    "SlowQueryLog",
    "SlowQueryRecord",
    "Span",
    "Tracer",
    "activate",
    "active_roots",
    "active_span_of_thread",
    "active_spans",
    "current_span",
    "format_flight_record",
    "format_trace",
    "histogram_good_total",
    "install_signal_dump",
    "iter_events",
    "latest_flight_record",
    "load_flight_record",
    "parse_prometheus_text",
    "record",
    "read_events",
    "span",
    "suppressed",
    "thread_stacks",
    "wide_event",
]
