"""Tests for the Workspace, result types and query stats."""

import math

import pytest

from repro.core import LBC, NaiveSkyline, QueryStats, SkylineResult, Workspace
from repro.core.result import SkylinePoint
from repro.network import ObjectSet

from conftest import build_random_network, place_random_objects, random_locations


@pytest.fixture
def workload():
    network = build_random_network(50, 30, seed=42, detour_max=0.6)
    objects = place_random_objects(network, 40, seed=43)
    return network, objects


class TestWorkspaceBuild:
    def test_paged_has_storage(self, workload):
        network, objects = workload
        ws = Workspace.build(network, objects, paged=True)
        assert ws.store is not None
        assert ws.rtree_pager is not None
        assert ws.middle_pager is not None

    def test_unpaged_has_no_storage(self, workload):
        network, objects = workload
        ws = Workspace.build(network, objects, paged=False)
        assert ws.store is None
        assert ws.network_pages_read() == 0
        assert ws.index_pages_read() == 0
        assert ws.middle_pages_read() == 0

    def test_foreign_object_set_rejected(self, workload):
        network, _ = workload
        other = build_random_network(20, 10, seed=1)
        foreign = place_random_objects(other, 5, seed=2)
        with pytest.raises(ValueError):
            Workspace.build(network, foreign)

    def test_inconsistent_attributes_rejected(self, workload):
        network, _ = workload
        from repro.network import SpatialObject

        edge = next(iter(network.edges()))
        loc = network.location_on_edge(edge.edge_id, edge.length / 2)
        mixed = ObjectSet.build(
            network,
            [SpatialObject(0, loc, (1.0,)), SpatialObject(1, loc)],
        )
        with pytest.raises(ValueError):
            Workspace.build(network, mixed)

    def test_reset_io_zeroes_counters(self, workload):
        network, objects = workload
        ws = Workspace.build(network, objects, paged=True)
        queries = random_locations(network, 2, seed=5)
        NaiveSkyline().run(ws, queries)
        assert ws.network_pages_read() > 0
        ws.reset_io(cold=True)
        assert ws.network_pages_read() == 0

    def test_validate_queries(self, workload):
        network, objects = workload
        ws = Workspace.build(network, objects, paged=False)
        with pytest.raises(ValueError):
            ws.validate_queries([])
        from repro.geometry import Point
        from repro.network import NetworkLocation

        with pytest.raises(KeyError):
            ws.validate_queries(
                [NetworkLocation(point=Point(0, 0), node_id=99999)]
            )

    def test_attribute_count(self, workload):
        network, _ = workload
        objects = place_random_objects(network, 10, seed=6, attribute_count=2)
        ws = Workspace.build(network, objects, paged=False)
        assert ws.attribute_count == 2


class TestSkylineResult:
    def _point(self, network, object_id, vector):
        objects = place_random_objects(network, 1, seed=object_id, first_id=object_id)
        return SkylinePoint(obj=objects.objects[0], vector=vector)

    def test_object_ids_sorted(self, workload):
        network, _ = workload
        r = SkylineResult(
            points=[
                self._point(network, 5, (1.0,)),
                self._point(network, 2, (2.0,)),
            ]
        )
        assert r.object_ids() == [2, 5]
        assert len(r) == 2

    def test_same_answer_tolerates_rounding(self, workload):
        network, _ = workload
        a = SkylineResult(points=[self._point(network, 1, (1.0, 2.0))])
        b = SkylineResult(points=[self._point(network, 1, (1.0 + 1e-12, 2.0))])
        assert a.same_answer(b)

    def test_same_answer_handles_infinities(self, workload):
        network, _ = workload
        a = SkylineResult(points=[self._point(network, 1, (math.inf, 2.0))])
        b = SkylineResult(points=[self._point(network, 1, (math.inf, 2.0))])
        assert a.same_answer(b)

    def test_same_answer_detects_different_sets(self, workload):
        network, _ = workload
        a = SkylineResult(points=[self._point(network, 1, (1.0,))])
        b = SkylineResult(points=[self._point(network, 2, (1.0,))])
        assert not a.same_answer(b)

    def test_same_answer_detects_vector_mismatch(self, workload):
        network, _ = workload
        a = SkylineResult(points=[self._point(network, 1, (1.0,))])
        b = SkylineResult(points=[self._point(network, 1, (1.5,))])
        assert not a.same_answer(b)


class TestQueryStats:
    def test_candidate_ratio(self):
        stats = QueryStats(object_count=200, candidate_count=50)
        assert stats.candidate_ratio == 0.25

    def test_candidate_ratio_empty(self):
        assert QueryStats().candidate_ratio == 0.0

    def test_total_pages(self):
        stats = QueryStats(network_pages=3, index_pages=2, middle_pages=1)
        assert stats.total_pages == 6

    def test_modeled_times_include_io_penalty(self):
        stats = QueryStats(
            total_response_s=0.1,
            network_pages=10,
            initial_response_s=0.05,
            initial_network_pages=4,
        )
        assert stats.modeled_total_s == pytest.approx(0.1 + 10 * stats.IO_PENALTY_S)
        assert stats.modeled_initial_s == pytest.approx(
            0.05 + 4 * stats.IO_PENALTY_S
        )

    def test_as_row_keys(self):
        row = QueryStats(algorithm="LBC").as_row()
        assert row["algorithm"] == "LBC"
        assert "|C|/|D|" in row
        assert "net_pages" in row

    def test_run_populates_stats(self, workload):
        network, objects = workload
        ws = Workspace.build(network, objects, paged=True)
        queries = random_locations(network, 3, seed=7)
        result = LBC().run(ws, queries)
        s = result.stats
        assert s.algorithm == "LBC"
        assert s.query_count == 3
        assert s.object_count == len(objects)
        assert s.skyline_count == len(result)
        assert s.total_response_s > 0
        assert 0 < s.initial_response_s <= s.total_response_s + 1e-9
        assert s.nodes_settled > 0
