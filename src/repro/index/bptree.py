"""A B+-tree with duplicate-key buckets and leaf chaining.

The paper's *middle layer* (Section 3) maps network edges to the data
objects lying on them and is "indexed using a B+-tree on edge ids" so
that, while a wavefront visits an edge, the objects on that edge can be
fetched cheaply.  This module provides that index, built from scratch:

* internal nodes route by separator keys;
* leaves hold ``key -> [values]`` buckets and are chained for range and
  full scans;
* an optional :class:`~repro.storage.binding.NodePager` charges one page
  access per node visited, so middle-layer lookups show up in the I/O
  statistics exactly like the paper's storage scheme.

Keys may be anything totally ordered (edge ids are ints).
"""

from __future__ import annotations

from typing import Any, Generic, Iterable, Iterator, TypeVar

from repro.obs import tracing
from repro.storage.binding import NodePager

K = TypeVar("K")
V = TypeVar("V")

DEFAULT_ORDER = 64
"""Default maximum number of keys per node.

A 4 KiB page holds roughly 64 (edge-id, pointer) pairs once headers and
per-entry object lists are accounted for; tests exercise small orders to
force deep trees.
"""


class _Node:
    """Base class carrying the identity used for page binding."""

    __slots__ = ("keys",)

    def __init__(self) -> None:
        self.keys: list[Any] = []


class _Internal(_Node):
    __slots__ = ("children",)

    def __init__(self) -> None:
        super().__init__()
        self.children: list[_Node] = []


class _Leaf(_Node):
    __slots__ = ("buckets", "next_leaf")

    def __init__(self) -> None:
        super().__init__()
        self.buckets: list[list[Any]] = []
        self.next_leaf: "_Leaf | None" = None


class BPlusTree(Generic[K, V]):
    """An in-memory B+-tree with simulated-disk accounting."""

    def __init__(
        self, order: int = DEFAULT_ORDER, pager: NodePager | None = None
    ) -> None:
        if order < 3:
            raise ValueError(f"order must be at least 3, got {order}")
        self._order = order
        self._pager = pager
        self._root: _Node = _Leaf()
        self._size = 0
        self._key_count = 0
        if pager is not None:
            pager.register(id(self._root))

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def order(self) -> int:
        return self._order

    def __len__(self) -> int:
        """Total number of stored values (not distinct keys)."""
        return self._size

    @property
    def key_count(self) -> int:
        """Number of distinct keys."""
        return self._key_count

    def height(self) -> int:
        """Number of levels (1 for a lone leaf)."""
        height = 1
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
            height += 1
        return height

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _touch(self, node: _Node) -> None:
        if self._pager is not None:
            tracing.record("bptree_nodes")
            self._pager.touch(id(node))

    def _descend_to_leaf(self, key: K) -> _Leaf:
        node = self._root
        self._touch(node)
        while isinstance(node, _Internal):
            index = _bisect_right(node.keys, key)
            node = node.children[index]
            self._touch(node)
        assert isinstance(node, _Leaf)
        return node

    def search(self, key: K) -> list[V]:
        """All values stored under ``key`` (empty list when absent)."""
        leaf = self._descend_to_leaf(key)
        index = _bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return list(leaf.buckets[index])
        return []

    def contains(self, key: K) -> bool:
        """True if at least one value is stored under ``key``."""
        leaf = self._descend_to_leaf(key)
        index = _bisect_left(leaf.keys, key)
        return index < len(leaf.keys) and leaf.keys[index] == key

    def range_search(self, low: K, high: K) -> Iterator[tuple[K, V]]:
        """All ``(key, value)`` pairs with ``low <= key <= high``, in order."""
        if low > high:  # type: ignore[operator]
            return
        leaf: _Leaf | None = self._descend_to_leaf(low)
        index = _bisect_left(leaf.keys, low)
        while leaf is not None:
            while index < len(leaf.keys):
                key = leaf.keys[index]
                if key > high:  # type: ignore[operator]
                    return
                for value in leaf.buckets[index]:
                    yield (key, value)
                index += 1
            leaf = leaf.next_leaf
            if leaf is not None:
                self._touch(leaf)
            index = 0

    def items(self) -> Iterator[tuple[K, V]]:
        """Every ``(key, value)`` pair in key order (full leaf scan)."""
        node = self._root
        self._touch(node)
        while isinstance(node, _Internal):
            node = node.children[0]
            self._touch(node)
        leaf: _Leaf | None = node  # type: ignore[assignment]
        while leaf is not None:
            for key, bucket in zip(leaf.keys, leaf.buckets):
                for value in bucket:
                    yield (key, value)
            leaf = leaf.next_leaf
            if leaf is not None:
                self._touch(leaf)

    def keys(self) -> Iterator[K]:
        """Distinct keys in ascending order."""
        seen_any = False
        last: Any = None
        for key, _ in self.items():
            if not seen_any or key != last:
                yield key
                last = key
                seen_any = True

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, key: K, value: V) -> None:
        """Store ``value`` under ``key`` (duplicates append to the bucket)."""
        split = self._insert_into(self._root, key, value)
        if split is not None:
            separator, right = split
            new_root = _Internal()
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root
            if self._pager is not None:
                self._pager.register(id(new_root))
        self._size += 1

    def insert_many(self, pairs: Iterable[tuple[K, V]]) -> None:
        """Insert many ``(key, value)`` pairs."""
        for key, value in pairs:
            self.insert(key, value)

    def _insert_into(
        self, node: _Node, key: K, value: V
    ) -> tuple[Any, _Node] | None:
        self._touch(node)
        if isinstance(node, _Leaf):
            index = _bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.buckets[index].append(value)
                return None
            node.keys.insert(index, key)
            node.buckets.insert(index, [value])
            self._key_count += 1
            if len(node.keys) > self._order:
                return self._split_leaf(node)
            return None

        assert isinstance(node, _Internal)
        child_index = _bisect_right(node.keys, key)
        split = self._insert_into(node.children[child_index], key, value)
        if split is None:
            return None
        separator, right = split
        node.keys.insert(child_index, separator)
        node.children.insert(child_index + 1, right)
        if len(node.keys) > self._order:
            return self._split_internal(node)
        return None

    def _split_leaf(self, leaf: _Leaf) -> tuple[Any, _Leaf]:
        mid = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[mid:]
        right.buckets = leaf.buckets[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.buckets = leaf.buckets[:mid]
        right.next_leaf = leaf.next_leaf
        leaf.next_leaf = right
        if self._pager is not None:
            self._pager.register(id(right))
        return (right.keys[0], right)

    def _split_internal(self, node: _Internal) -> tuple[Any, _Internal]:
        mid = len(node.keys) // 2
        separator = node.keys[mid]
        right = _Internal()
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        if self._pager is not None:
            self._pager.register(id(right))
        return (separator, right)

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------
    def delete(self, key: K, value: V | None = None) -> int:
        """Remove ``value`` from ``key``'s bucket (or the whole bucket).

        Returns the number of values removed (0 when absent).  Deletion
        is *lazy*: leaves may become under-full and empty keys are
        dropped without merging pages — the strategy production B-trees
        use (reorganisation happens at rebuild time), and the right
        trade-off for this library's mostly-static workloads.  Internal
        separator keys are routing values and remain valid.
        """
        leaf = self._descend_to_leaf(key)
        index = _bisect_left(leaf.keys, key)
        if index >= len(leaf.keys) or leaf.keys[index] != key:
            return 0
        bucket = leaf.buckets[index]
        if value is None:
            removed = len(bucket)
            bucket.clear()
        else:
            before = len(bucket)
            # Remove one matching occurrence, as insert appends one.
            try:
                bucket.remove(value)
            except ValueError:
                return 0
            removed = before - len(bucket)
        if not bucket:
            del leaf.keys[index]
            del leaf.buckets[index]
            self._key_count -= 1
        self._size -= removed
        return removed

    # ------------------------------------------------------------------
    # Bulk loading
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(
        cls,
        pairs: Iterable[tuple[K, V]],
        order: int = DEFAULT_ORDER,
        pager: NodePager | None = None,
    ) -> "BPlusTree[K, V]":
        """Build a tree from (not necessarily sorted) pairs.

        Sorted input is packed leaf by leaf, giving a tree with ~100 %
        leaf occupancy — the natural choice for the middle layer, which
        is built once per dataset.
        """
        tree: BPlusTree[K, V] = cls(order=order, pager=pager)
        grouped: dict[Any, list[V]] = {}
        for key, value in pairs:
            grouped.setdefault(key, []).append(value)
        if not grouped:
            return tree

        fill = max(2, (order + 1) * 3 // 4)
        leaves: list[_Leaf] = []
        current = _Leaf()
        for key in sorted(grouped):
            if len(current.keys) >= fill:
                leaves.append(current)
                nxt = _Leaf()
                current.next_leaf = nxt
                current = nxt
            current.keys.append(key)
            current.buckets.append(grouped[key])
            tree._key_count += 1
            tree._size += len(grouped[key])
        leaves.append(current)

        level: list[_Node] = list(leaves)
        separators = [leaf.keys[0] for leaf in leaves]
        while len(level) > 1:
            parents: list[_Node] = []
            parent_separators: list[Any] = []
            i = 0
            while i < len(level):
                group = level[i : i + fill]
                seps = separators[i : i + fill]
                parent = _Internal()
                parent.children = list(group)
                parent.keys = seps[1:]
                parents.append(parent)
                parent_separators.append(seps[0])
                i += fill
            level = parents
            separators = parent_separators
        tree._root = level[0]
        if pager is not None:
            for node in tree._walk_nodes():
                pager.register(id(node))
        return tree

    # ------------------------------------------------------------------
    # Invariant checking (used by property tests)
    # ------------------------------------------------------------------
    def _walk_nodes(self) -> Iterator[_Node]:
        stack: list[_Node] = [self._root]
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, _Internal):
                stack.extend(node.children)

    def validate(self) -> None:
        """Assert structural invariants, raising AssertionError on breach."""
        leaf_depths: set[int] = set()

        def recurse(node: _Node, depth: int, low: Any, high: Any) -> None:
            if node is not self._root and len(node.keys) > self._order:
                raise AssertionError("node overflow escaped splitting")
            if node.keys != sorted(node.keys):
                raise AssertionError(f"unsorted keys in node: {node.keys}")
            for key in node.keys:
                if low is not None and key < low:
                    raise AssertionError(f"key {key!r} below separator {low!r}")
                if high is not None and key >= high and isinstance(node, _Internal):
                    raise AssertionError(f"separator {key!r} >= bound {high!r}")
                if high is not None and key > high and isinstance(node, _Leaf):
                    raise AssertionError(f"leaf key {key!r} above bound {high!r}")
            if isinstance(node, _Internal):
                if len(node.children) != len(node.keys) + 1:
                    raise AssertionError("internal child/key count mismatch")
                bounds = [low, *node.keys, high]
                for i, child in enumerate(node.children):
                    recurse(child, depth + 1, bounds[i], bounds[i + 1])
            else:
                assert isinstance(node, _Leaf)
                if len(node.buckets) != len(node.keys):
                    raise AssertionError("leaf bucket/key count mismatch")
                leaf_depths.add(depth)

        recurse(self._root, 0, None, None)
        if len(leaf_depths) > 1:
            raise AssertionError(f"leaves at different depths: {leaf_depths}")
        # Leaf chain must visit every key exactly once, in order.
        chained = [key for key, _ in self.items()]
        deduped: list[Any] = []
        for key in chained:
            if not deduped or deduped[-1] != key:
                deduped.append(key)
        if len(deduped) != self._key_count:
            raise AssertionError(
                f"leaf chain has {len(deduped)} distinct keys, "
                f"expected {self._key_count}"
            )
        if deduped != sorted(deduped):
            raise AssertionError("leaf chain out of order")


def _bisect_left(keys: list[Any], key: Any) -> int:
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _bisect_right(keys: list[Any], key: Any) -> int:
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if key < keys[mid]:
            hi = mid
        else:
            lo = mid + 1
    return lo
