"""Smoke tests: every example script runs to completion.

Examples are documentation that executes; these tests keep them from
rotting.  Marked slow (they build real workloads).
"""

import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.slow

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=300):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        proc = run_example("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "skyline:" in proc.stdout
        assert "cost:" in proc.stdout

    def test_hotel_finder(self):
        proc = run_example("hotel_finder.py")
        assert proc.returncode == 0, proc.stderr
        assert "Pareto-optimal hotels" in proc.stdout
        assert "cheapest skyline hotel" in proc.stdout

    def test_meeting_planner(self):
        proc = run_example("meeting_planner.py")
        assert proc.returncode == 0, proc.stderr
        assert "streaming skyline" in proc.stdout
        assert "minimise total walking" in proc.stdout

    def test_algorithm_comparison(self):
        proc = run_example("algorithm_comparison.py", "CA")
        assert proc.returncode == 0, proc.stderr
        assert "LBC" in proc.stdout
        assert "naive" in proc.stdout

    def test_group_trip(self):
        proc = run_example("group_trip.py")
        assert proc.returncode == 0, proc.stderr
        assert "top-3 by total travel" in proc.stdout
        assert "skyline members" in proc.stdout

    def test_visualize_search(self, tmp_path):
        proc = run_example("visualize_search.py", str(tmp_path), timeout=420)
        assert proc.returncode == 0, proc.stderr
        assert (tmp_path / "footprint_ce.svg").exists()
        assert (tmp_path / "footprint_lbc.svg").exists()
        assert (tmp_path / "skyline.svg").exists()
