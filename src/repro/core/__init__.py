"""The paper's contribution: multi-source network skyline processing.

Public API::

    from repro.core import Workspace, CE, EDC, LBC

    workspace = Workspace.build(network, objects)
    result = LBC().run(workspace, query_locations)
    for point in result:
        print(point.obj.object_id, point.vector)

Algorithms:

* :class:`CollaborativeExpansion` (``CE``) — Section 4.1;
* :class:`EuclideanDistanceConstraint` (``EDC``) — Section 4.2, batch;
* :class:`EuclideanDistanceConstraintIncremental` (``EDC-inc``) —
  Section 4.2's progressive variant;
* :class:`LowerBoundConstraint` (``LBC``) — Section 4.3, the paper's
  instance-optimal algorithm;
* :class:`NaiveSkyline` — exhaustive oracle (not in the paper).

All return identical answers; they differ in how much of the network
they touch, which is exactly what the benchmarks measure.
"""

from repro.core.base import SkylineAlgorithm
from repro.core.ce import CollaborativeExpansion
from repro.core.explain import (
    DominanceWitness,
    ObjectExplanation,
    explain_object,
    explain_result,
    object_vector,
)
from repro.core.edc import (
    EuclideanDistanceConstraint,
    EuclideanDistanceConstraintIncremental,
)
from repro.core.lbc import (
    LowerBoundConstraint,
    LowerBoundConstraintLazy,
    LowerBoundConstraintRoundRobin,
)
from repro.core.naive import NaiveSkyline
from repro.core.query import Workspace
from repro.core.result import SkylinePoint, SkylineResult
from repro.core.stats import QueryStats

CE = CollaborativeExpansion
EDC = EuclideanDistanceConstraint
EDCIncremental = EuclideanDistanceConstraintIncremental
LBC = LowerBoundConstraint
LBCRoundRobin = LowerBoundConstraintRoundRobin
LBCLazy = LowerBoundConstraintLazy

ALL_ALGORITHMS = (
    CollaborativeExpansion,
    EuclideanDistanceConstraint,
    EuclideanDistanceConstraintIncremental,
    LowerBoundConstraint,
    LowerBoundConstraintLazy,
    LowerBoundConstraintRoundRobin,
)

__all__ = [
    "ALL_ALGORITHMS",
    "CE",
    "CollaborativeExpansion",
    "DominanceWitness",
    "ObjectExplanation",
    "explain_object",
    "explain_result",
    "object_vector",
    "EDC",
    "EDCIncremental",
    "EuclideanDistanceConstraint",
    "EuclideanDistanceConstraintIncremental",
    "LBC",
    "LBCLazy",
    "LBCRoundRobin",
    "LowerBoundConstraint",
    "LowerBoundConstraintLazy",
    "LowerBoundConstraintRoundRobin",
    "NaiveSkyline",
    "QueryStats",
    "SkylineAlgorithm",
    "SkylinePoint",
    "SkylineResult",
    "Workspace",
]
