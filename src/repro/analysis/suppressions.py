"""Per-line suppression comments.

A finding is suppressed by a comment on the same physical line::

    network.neighbors(node)  # repro: ignore[REPRO-PAGE02] build-time walk

``# repro: ignore[ID1,ID2]`` suppresses the named rules;
``# repro: ignore`` (no bracket) suppresses every rule on the line.
Trailing free text after the bracket is encouraged — a suppression is
a reviewed exception and should say why.

Comments are found with :mod:`tokenize`, not a regex over raw lines,
so a ``# repro: ignore`` inside a string literal never suppresses
anything.
"""

from __future__ import annotations

import io
import re
import tokenize

from repro.analysis.walker import Finding

ALL_RULES = "*"

_PATTERN = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_\-\s,]*)\])?"
)


def collect(source: str) -> dict[int, frozenset[str]]:
    """Map line number -> rule ids suppressed there.

    The sentinel :data:`ALL_RULES` inside the set means the blanket
    form was used.  Unreadable sources yield an empty map (the parse
    error is reported separately).
    """
    out: dict[int, frozenset[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (token.start[0], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenizeError, SyntaxError, IndentationError):
        return out
    for line, text in comments:
        match = _PATTERN.search(text)
        if not match:
            continue
        rules = match.group("rules")
        if rules is None:
            out[line] = frozenset({ALL_RULES})
        else:
            ids = frozenset(
                part.strip() for part in rules.split(",") if part.strip()
            )
            out[line] = ids or frozenset({ALL_RULES})
    return out


def is_suppressed(
    finding: Finding, suppressions: dict[int, frozenset[str]]
) -> bool:
    rules = suppressions.get(finding.line)
    if rules is None:
        return False
    return ALL_RULES in rules or finding.rule_id in rules


def unused_suppressions(
    suppressions: dict[int, frozenset[str]],
    matched_lines: set[int],
) -> list[int]:
    """Lines whose suppression comment matched no finding.

    Reported by the CLI as a warning so stale exceptions get cleaned
    up rather than silently outliving the code they excused.
    """
    return sorted(line for line in suppressions if line not in matched_lines)
