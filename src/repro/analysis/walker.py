"""Per-module facts the lint rules consume.

One :class:`ModuleInfo` is built per linted file: the parsed AST (with
parent back-references), the module's dotted name (derived from the
package structure on disk, so the same loader works for ``src/repro``
and for test fixture trees), an import-alias map for resolving call
targets to fully-qualified names, and the :mod:`symtable` tables used
to distinguish imported names from locals.

Everything here is stdlib-only (``ast`` + ``symtable``); rules never
import the code under analysis.
"""

from __future__ import annotations

import ast
import os
import symtable
from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source position."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule_id)


@dataclass
class ImportRecord:
    """One import statement, resolved to absolute module names."""

    line: int
    module: str
    toplevel: bool  # module-scope import (counts for cycle detection)


@dataclass
class ModuleInfo:
    """Parsed view of one source file."""

    path: str
    module: str  # dotted name, e.g. "repro.core.query"
    source: str
    lines: list[str]
    tree: ast.Module
    table: symtable.SymbolTable | None
    imports: list[ImportRecord] = field(default_factory=list)
    # local alias -> fully qualified origin, e.g.
    #   "tracing" -> "repro.obs.tracing"      (from repro.obs import tracing)
    #   "record"  -> "repro.obs.tracing.record"
    #   "np"      -> "numpy"                  (import numpy as np)
    aliases: dict[str, str] = field(default_factory=dict)

    @property
    def package(self) -> str:
        """First package component under the project root.

        ``repro.core.query`` -> ``core``; the top-level module
        ``repro.cli`` -> ``cli``; ``repro`` itself -> ``""``.
        """
        parts = self.module.split(".")
        return parts[1] if len(parts) > 1 else ""

    @property
    def basename(self) -> str:
        return os.path.basename(self.path)

    def functions(self) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def classes(self) -> Iterator[ast.ClassDef]:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ClassDef):
                yield node

    def resolve(self, node: ast.expr) -> str | None:
        """Fully-qualified dotted name of an expression, if static.

        ``tracing.record`` with ``from repro.obs import tracing`` in
        scope resolves to ``repro.obs.tracing.record``; unresolvable
        shapes (subscripts, calls, locals) return None.
        """
        dotted = dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        origin = self.aliases.get(head, head)
        return f"{origin}.{rest}" if rest else origin


def attach_parents(tree: ast.Module) -> None:
    """Give every node a ``.parent`` back-reference."""
    tree.parent = None  # type: ignore[attr-defined]
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child.parent = node  # type: ignore[attr-defined]


def ancestors(node: ast.AST) -> Iterator[ast.AST]:
    """The node's ancestor chain, innermost first."""
    cursor = getattr(node, "parent", None)
    while cursor is not None:
        yield cursor
        cursor = getattr(cursor, "parent", None)


def enclosing_function(
    node: ast.AST,
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    for up in ancestors(node):
        if isinstance(up, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return up
    return None


def enclosing_class(node: ast.AST) -> ast.ClassDef | None:
    for up in ancestors(node):
        if isinstance(up, ast.ClassDef):
            return up
    return None


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    cursor = node
    while isinstance(cursor, ast.Attribute):
        parts.append(cursor.attr)
        cursor = cursor.value
    if isinstance(cursor, ast.Name):
        parts.append(cursor.id)
        return ".".join(reversed(parts))
    return None


def call_terminal(node: ast.Call) -> str | None:
    """The rightmost name of a call target (``x.y.z()`` -> ``z``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def literal_str(node: ast.expr | None) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def fstring_glob(node: ast.expr) -> str | None:
    """An ``fnmatch`` glob for an f-string's possible values.

    ``f"query.{self.name}"`` -> ``"query.*"``.  Returns None for
    anything that is not a JoinedStr.
    """
    if not isinstance(node, ast.JoinedStr):
        return None
    parts: list[str] = []
    for value in node.values:
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            # Escape glob metacharacters in the literal fragments.
            parts.append(
                value.value.replace("[", "[[]").replace("?", "[?]").replace("*", "[*]")
            )
        else:
            parts.append("*")
    return "".join(parts)


def module_name_for(path: str) -> str:
    """Dotted module name from the package structure on disk.

    Walks up while ``__init__.py`` exists, so
    ``.../src/repro/core/query.py`` -> ``repro.core.query`` wherever
    the tree is rooted (including fixture copies).
    """
    path = os.path.abspath(path)
    parts = [os.path.splitext(os.path.basename(path))[0]]
    cursor = os.path.dirname(path)
    while os.path.isfile(os.path.join(cursor, "__init__.py")):
        parts.append(os.path.basename(cursor))
        cursor = os.path.dirname(cursor)
    if parts[0] == "__init__":
        parts = parts[1:]
    return ".".join(reversed(parts))


def _record_imports(info: ModuleInfo) -> None:
    for node in ast.walk(info.tree):
        toplevel = isinstance(getattr(node, "parent", None), ast.Module)
        if isinstance(node, ast.Import):
            for alias in node.names:
                info.imports.append(
                    ImportRecord(node.lineno, alias.name, toplevel)
                )
                if alias.asname:
                    info.aliases[alias.asname] = alias.name
                else:
                    head = alias.name.partition(".")[0]
                    info.aliases.setdefault(head, head)
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import: resolve against this module
                base = info.module.split(".")
                base = base[: len(base) - node.level]
                module = ".".join(base + ([node.module] if node.module else []))
            else:
                module = node.module or ""
            if not module:
                continue
            info.imports.append(ImportRecord(node.lineno, module, toplevel))
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                info.aliases[local] = f"{module}.{alias.name}"


def load_module(path: str, module: str | None = None) -> ModuleInfo:
    """Parse one file into a :class:`ModuleInfo`.

    Raises SyntaxError for unparseable sources — the driver reports
    those as findings rather than crashing the run.
    """
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    tree = ast.parse(source, filename=path)
    attach_parents(tree)
    try:
        table: symtable.SymbolTable | None = symtable.symtable(
            source, path, "exec"
        )
    except (SyntaxError, ValueError):  # pragma: no cover - parse succeeded
        table = None
    info = ModuleInfo(
        path=path,
        module=module or module_name_for(path),
        source=source,
        lines=source.splitlines(),
        tree=tree,
        table=table,
    )
    _record_imports(info)
    return info


def module_scope_names(info: ModuleInfo) -> set[str]:
    """Names bound at module scope (via :mod:`symtable`).

    Used by rules that must distinguish a module-level lock object
    from an instance attribute of the same name.
    """
    if info.table is None:
        return set()
    return {symbol.get_name() for symbol in info.table.get_symbols()}
