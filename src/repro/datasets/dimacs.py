"""DIMACS shortest-path challenge format (.gr / .co) ingestion.

The 9th DIMACS Implementation Challenge distributed the de-facto
standard public road networks (USA road graphs) as two files:

* a **coordinate file** (``.co``)::

      c comment
      p aux sp co <n>
      v <id> <x> <y>          # ids 1..n, coordinates as integers

* a **graph file** (``.gr``)::

      c comment
      p sp <n> <m>
      a <u> <v> <weight>      # directed arc

Road networks ship each undirected segment as two arcs; the loader
collapses symmetric pairs (keeping the smaller weight when they
disagree) and scales coordinates into the library's unit region so the
Euclidean heuristic stays admissible: weights are rescaled such that
every edge is at least as long as its chord, preserving *relative*
weights exactly (one global factor).
"""

from __future__ import annotations

from pathlib import Path
from typing import TextIO

from repro.geometry.point import Point
from repro.network.graph import RoadNetwork


class DimacsFormatError(ValueError):
    """Raised for malformed DIMACS input."""

    def __init__(self, path: str, line_number: int, message: str) -> None:
        super().__init__(f"{path}:{line_number}: {message}")
        self.path = path
        self.line_number = line_number


def _records(handle: TextIO):
    for line_number, raw in enumerate(handle, start=1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        yield (line_number, line.split())


def load_dimacs(
    graph_path: str | Path,
    coordinate_path: str | Path,
    region_side: float = 1.0,
) -> RoadNetwork:
    """Build a :class:`RoadNetwork` from DIMACS ``.gr``/``.co`` files.

    Node ids are renumbered to 0-based.  Coordinates are scaled into a
    ``region_side``-sized square; arc weights get one global scale
    factor chosen so that every edge length >= its chord (A\\*
    admissibility), leaving all weight *ratios* untouched.
    """
    graph_path = Path(graph_path)
    coordinate_path = Path(coordinate_path)

    raw_coordinates: dict[int, tuple[float, float]] = {}
    with coordinate_path.open() as handle:
        for line_number, fields in _records(handle):
            kind = fields[0]
            if kind == "p":
                continue
            if kind != "v":
                raise DimacsFormatError(
                    str(coordinate_path), line_number,
                    f"unexpected record {kind!r}",
                )
            if len(fields) != 4:
                raise DimacsFormatError(
                    str(coordinate_path), line_number,
                    "v takes 3 fields: id x y",
                )
            raw_coordinates[int(fields[1])] = (float(fields[2]), float(fields[3]))
    if not raw_coordinates:
        raise DimacsFormatError(str(coordinate_path), 0, "no vertices found")

    arcs: dict[tuple[int, int], float] = {}
    with graph_path.open() as handle:
        for line_number, fields in _records(handle):
            kind = fields[0]
            if kind == "p":
                continue
            if kind != "a":
                raise DimacsFormatError(
                    str(graph_path), line_number, f"unexpected record {kind!r}"
                )
            if len(fields) != 4:
                raise DimacsFormatError(
                    str(graph_path), line_number, "a takes 3 fields: u v w"
                )
            u, v, weight = int(fields[1]), int(fields[2]), float(fields[3])
            if u not in raw_coordinates or v not in raw_coordinates:
                raise DimacsFormatError(
                    str(graph_path), line_number,
                    f"arc references unknown vertex ({u}, {v})",
                )
            if u == v:
                continue  # self-loops carry no shortest-path information
            if weight <= 0:
                raise DimacsFormatError(
                    str(graph_path), line_number, f"non-positive weight {weight}"
                )
            key = (min(u, v), max(u, v))
            existing = arcs.get(key)
            if existing is None or weight < existing:
                arcs[key] = weight

    # Scale coordinates into the unit region.
    xs = [c[0] for c in raw_coordinates.values()]
    ys = [c[1] for c in raw_coordinates.values()]
    min_x, max_x = min(xs), max(xs)
    min_y, max_y = min(ys), max(ys)
    span = max(max_x - min_x, max_y - min_y) or 1.0
    scale = region_side / span

    renumber = {old: new for new, old in enumerate(sorted(raw_coordinates))}
    network = RoadNetwork()
    for old_id, (x, y) in raw_coordinates.items():
        network.add_node(
            renumber[old_id],
            Point((x - min_x) * scale, (y - min_y) * scale),
        )

    # One global weight factor making every edge >= its chord.
    factor = 0.0
    for (u, v), weight in arcs.items():
        chord = network.node_point(renumber[u]).distance_to(
            network.node_point(renumber[v])
        )
        if chord > 0:
            factor = max(factor, chord / weight)
    if factor == 0.0:
        factor = 1.0

    for (u, v), weight in sorted(arcs.items()):
        network.add_edge(renumber[u], renumber[v], length=weight * factor)
    return network
